//! Quickstart: verified external memory in a few lines.
//!
//! Builds a hash-tree-protected memory, runs a program-like workload over
//! it, then lets a physical attacker corrupt RAM and shows the very next
//! read raising the integrity exception.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use miv::core::{MemoryBuilder, TamperKind};

fn main() {
    // 1 MiB of protected data, 64-byte chunks → a 4-ary Merkle tree with
    // only the root held on-chip.
    let mut mem = MemoryBuilder::new()
        .data_bytes(1 << 20)
        .cache_blocks(1024)
        .build();
    println!("layout: {}", mem.layout());
    println!(
        "secure on-chip state: {} x 128-bit root digests",
        mem.secure_root().len()
    );

    // Ordinary program activity: write, read back, flush to RAM.
    mem.write(0x4000, b"account balance: 1000 credits").unwrap();
    mem.flush().unwrap();
    let back = mem.read_vec(0x4000, 29).unwrap();
    println!("read back: {:?}", String::from_utf8_lossy(&back));

    let stats = mem.stats();
    println!(
        "engine activity: {} verifications, {} hashes, {} block reads, {} block writes",
        stats.chunk_verifications, stats.hash_computations, stats.block_reads, stats.block_writes
    );

    // The attacker strikes: a single flipped bit in external RAM.
    mem.clear_cache().unwrap();
    let phys = mem.layout().data_phys_addr(0x4000 + 17);
    mem.adversary().tamper(phys, TamperKind::BitFlip { bit: 5 });
    println!("\nadversary flips one bit of the balance in external RAM...");

    match mem.read_vec(0x4000, 29) {
        Ok(data) => unreachable!("tampering went undetected: {data:?}"),
        Err(err) => println!("integrity exception: {err}"),
    }
    println!("the processor aborts the task; its signing key is never used again.");
}
