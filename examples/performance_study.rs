//! A miniature performance study using the cycle-level simulator.
//!
//! Runs three representative workloads under every verification scheme on
//! the Table 1 machine with a 1 MB L2, printing IPC, miss rates and bus
//! traffic — the same methodology as the full `figures` harness
//! (`cargo run -p miv-sim --release --bin figures -- all`), in miniature.
//!
//! ```text
//! cargo run --release --example performance_study
//! ```

use miv::core::Scheme;
use miv::sim::report::{f2, f3, pct, Table};
use miv::sim::{System, SystemConfig, Telemetry};
use miv::trace::Benchmark;

fn main() {
    let warmup = 30_000;
    let measure = 200_000;
    let benches = [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Swim];

    println!("Table 1 machine, 1 MB 4-way L2, 64-B lines");
    println!("{warmup} warm-up + {measure} measured instructions per run\n");

    for bench in benches {
        let mut t = Table::new(vec![
            "scheme".into(),
            "IPC".into(),
            "vs base".into(),
            "L2 data miss".into(),
            "extra loads/miss".into(),
            "bus MB".into(),
            "hash MB".into(),
        ]);
        let mut base_ipc = 0.0;
        for scheme in Scheme::ALL {
            let cfg = SystemConfig::hpca03(scheme, 1 << 20, 64);
            let r = System::for_benchmark(cfg, bench, 42).run(warmup, measure);
            if scheme == Scheme::Base {
                base_ipc = r.ipc;
            }
            t.row(vec![
                scheme.label().into(),
                f3(r.ipc),
                pct(r.normalized_ipc(base_ipc)),
                pct(r.l2_data_miss_rate),
                f2(r.extra_loads_per_miss),
                f2(r.bus_bytes as f64 / 1e6),
                f2(r.hash_bytes as f64 / 1e6),
            ]);
        }
        println!("== {bench} ==\n{}", t.render());
    }

    println!(
        "note: chash tracks base closely; naive pays the full log-depth walk\n\
         on every miss and its bandwidth never recovers with cache size."
    );

    // One instrumented run: attach the telemetry layer, sample every 50k
    // instructions, and print the miv-metrics-v1 document the `mivsim`
    // binary writes with `--metrics-out`.
    println!("\n== telemetry: chash on swim, sampled every 50k instructions ==");
    let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64);
    let mut sys = System::for_benchmark(cfg, Benchmark::Swim, 42);
    let telemetry = Telemetry::new();
    sys.attach_telemetry(&telemetry);
    let (result, samples) = sys.run_sampled(warmup, measure, 50_000);
    let doc = telemetry.metrics_document(&result, &samples);

    let hist = |name: &str| doc.get("histograms").and_then(|h| h.get(name));
    if let Some(walk) = hist("checker.walk_depth") {
        println!(
            "tree walk depth:  p50 {} p90 {} p99 {} over {} misses",
            walk.get("p50").unwrap().render(),
            walk.get("p90").unwrap().render(),
            walk.get("p99").unwrap().render(),
            walk.get("count").unwrap().render(),
        );
    }
    if let Some(wait) = hist("hash_unit.queue_wait") {
        println!(
            "hash queue wait:  mean {} cycles over {} ops",
            wait.get("mean").unwrap().render(),
            wait.get("count").unwrap().render(),
        );
    }
    println!("full document:\n{}", doc.render_pretty());
}
