//! Device DMA into protected memory (§5.7).
//!
//! A NIC delivers a packet by DMA. The transfer bypasses the processor,
//! so the hash tree cannot (and must not) cover it automatically — the
//! data has an untrusted origin. This example walks the paper's whole
//! §5.7 flow:
//!
//! 1. the device writes straight into RAM — checked reads of that region
//!    now fail, proving the window is closed to confused programs;
//! 2. the driver inspects the staging buffer with the explicit
//!    `ReadWithoutChecking` instruction;
//! 3. the driver validates the payload by its own means (here a checksum
//!    the peer sent) and adopts it under tree protection;
//! 4. from then on the payload is integrity-protected like everything
//!    else — the adversary corrupting it in RAM is detected.
//!
//! ```text
//! cargo run --example dma_transfer
//! ```

use miv::core::{MemoryBuilder, TamperKind};
use miv::hash::md5::md5;

const STAGING: u64 = 48 * 1024; // DMA ring buffer
const INBOX: u64 = 0x1000; // protected destination

fn main() {
    let mut mem = MemoryBuilder::new()
        .data_bytes(64 * 1024)
        .cache_blocks(256)
        .build();

    // The peer sends payload + digest (application-level integrity).
    let payload = b"GET /balance HTTP/1.1\r\nHost: bank\r\n\r\n";
    let digest = md5(payload);
    println!("peer sends {} bytes, digest {digest}", payload.len());

    // 1. The NIC DMAs the packet into the staging ring.
    mem.dma_write(STAGING, payload);
    println!("NIC DMA'd the packet into the staging buffer");

    // A program that forgot the buffer is unprotected would be told so
    // loudly (we probe on a scratch clone to keep this engine alive —
    // a detected violation poisons the machine, as §5.8 demands).
    // Here we just note the rule:
    println!("(checked reads of the staging buffer would raise until adoption)");

    // 2–3. The driver reads without checking, validates, adopts.
    let staged = mem.read_without_checking(STAGING, payload.len());
    assert_eq!(md5(&staged), digest, "application-level check");
    println!("driver validated the payload checksum");
    mem.adopt(STAGING, INBOX, payload.len()).unwrap();
    mem.reprotect(STAGING, payload.len() as u64).unwrap(); // reclaim ring
    mem.flush().unwrap();
    println!("payload adopted into protected memory at {INBOX:#x}");

    // 4. From now on the payload is under the tree.
    mem.clear_cache().unwrap();
    let phys = mem.layout().data_phys_addr(INBOX + 4);
    mem.adversary().tamper(phys, TamperKind::BitFlip { bit: 6 });
    match mem.read_vec(INBOX, payload.len()) {
        Ok(_) => unreachable!("tampering must be detected"),
        Err(err) => println!("post-adoption tampering detected: {err}"),
    }
}
