//! The §4.4 replay attack: breaking a XOM-style per-block MAC, and
//! failing against the hash tree.
//!
//! XOM binds each off-chip block to its address and contents with a MAC,
//! which stops substitution and relocation — but provides **no
//! freshness**. The paper's example: a loop like
//!
//! ```c
//! for (i = 0; i < size; i++) { output_data(*data++); }
//! ```
//!
//! spills `i` to memory; an attacker records the memory image of `i`
//! during one iteration and replays it each time it is written back,
//! making the loop run far past `size` and leak the rest of the data
//! segment. This example mounts exactly that attack against [`XomMemory`]
//! (it succeeds) and against the hash-tree engine (it is detected).
//!
//! ```text
//! cargo run --example replay_attack
//! ```

use miv::core::xom::XomMemory;
use miv::core::MemoryBuilder;

/// Simulated secure-compartment loop: reads the counter from (possibly
/// attacked) memory, "outputs" one word per iteration, writes the
/// incremented counter back. Returns how many words leaked.
fn run_loop_on_xom(mem: &mut XomMemory, replay: bool, size: u64) -> u64 {
    const COUNTER: u64 = 0;
    const SAFETY_CAP: u64 = 64;

    // The attacker snapshots the counter block (data + MAC) after
    // iteration 1 wrote i = 1.
    let mut snapshot = None;
    let mut leaked = 0;

    loop {
        // In the real attack the loop runs to the end of the data
        // segment; cap the demo by the amount leaked (the replayed
        // counter itself never advances — that is the attack).
        if leaked >= size + SAFETY_CAP {
            break;
        }
        // The compartment reads i from memory (MAC-checked).
        let block = mem.read_block(COUNTER).expect("XOM accepts the block");
        let i = u64::from_le_bytes(block[0..8].try_into().expect("8 bytes"));
        if i >= size {
            unreachable!("loop must exit at size without the replay");
        }
        leaked += 1; // output_data(*data++)

        // i++ spills back to memory.
        let mut next = block.clone();
        next[0..8].copy_from_slice(&(i + 1).to_le_bytes());
        mem.write_block(COUNTER, &next);

        if replay {
            let rec = mem.raw_record_addr(COUNTER);
            let len = mem.raw_record_len();
            if snapshot.is_none() {
                snapshot = Some(mem.adversary().snapshot(rec, len));
            }
            // The attacker restores the stale (data, MAC) pair: XOM's MAC
            // still verifies — the block is authentic, just old.
            mem.adversary().replay(snapshot.as_ref().expect("saved"));
        }

        if i + 1 >= size && !replay {
            break;
        }
    }
    leaked
}

fn main() {
    let size = 8u64;

    println!("--- XOM-style per-block MAC (no freshness) ---");
    let mut honest = XomMemory::new(4096, 64, *b"compartment-key!");
    let n = run_loop_on_xom(&mut honest, false, size);
    println!("honest memory: loop outputs {n} words (size = {size})  [correct]");

    let mut attacked = XomMemory::new(4096, 64, *b"compartment-key!");
    let n = run_loop_on_xom(&mut attacked, true, size);
    println!(
        "replayed counter: loop outputs {n} words before the demo cap — \
         the attacker walks the output past the end of the buffer!"
    );

    println!("\n--- hash tree (this paper) ---");
    let mut mem = MemoryBuilder::new()
        .data_bytes(4096)
        .cache_blocks(64)
        .build();
    // i lives at address 0; iteration 1 writes i = 1 and it reaches RAM.
    mem.write(0, &1u64.to_le_bytes()).unwrap();
    mem.flush().unwrap();
    let phys = mem.layout().data_phys_addr(0);
    let stale = mem.adversary().snapshot(phys, 64);

    // Iteration 2 writes i = 2...
    mem.write(0, &2u64.to_le_bytes()).unwrap();
    mem.flush().unwrap();
    mem.clear_cache().unwrap();
    // ...and the attacker replays the stale block.
    mem.adversary().replay(&stale);

    match mem.read_vec(0, 8) {
        Ok(_) => unreachable!("replay must not verify"),
        Err(err) => println!("replay detected on the next read: {err}"),
    }
    println!("the tree's parent hash had moved on; stale data can never re-enter.");
}
