//! Certified execution (§4.1): Alice rents Bob's processor.
//!
//! Alice has a computation; Bob has an idle machine with a secure
//! processor. How does Alice know Bob actually ran her program instead of
//! inventing a result? The paper's answer:
//!
//! 1. the processor owns a secret and derives a key unique to the
//!    (processor, program) pair via a collision-resistant combination;
//! 2. it executes the program over *integrity-verified* external memory,
//!    so Bob cannot steer the computation by tampering with the bus;
//! 3. cryptographic instructions act as barriers (§5.8): the result is
//!    signed only after every pending integrity check has passed;
//! 4. Alice checks the signature against the manufacturer's public
//!    registration of the processor.
//!
//! We substitute a keyed MD5 MAC plus a manufacturer-verification oracle
//! for the paper's public-key signature (the crypto substrate here is
//! hashing, not RSA); the trust argument is unchanged.
//!
//! ```text
//! cargo run --example certified_execution
//! ```

use miv::core::{IntegrityError, MemoryBuilder, TamperKind, VerifiedMemory};
use miv::hash::md5::Md5;

/// A certificate produced by the processor.
#[derive(Debug, Clone, PartialEq)]
struct Certificate {
    result: u64,
    signature: [u8; 16],
}

/// Bob's secure processor: a secret, a verified memory, and a signing
/// barrier.
struct SecureProcessor {
    secret: [u8; 16],
}

impl SecureProcessor {
    fn new(secret: [u8; 16]) -> Self {
        SecureProcessor { secret }
    }

    /// Derives the processor+program key (collision-resistant combine).
    fn program_key(&self, program: &str) -> [u8; 16] {
        let mut ctx = Md5::new();
        ctx.update(&self.secret);
        ctx.update(b"program-key");
        ctx.update(program.as_bytes());
        ctx.finalize().into_bytes()
    }

    /// Runs Alice's program in a fresh verified memory. `sabotage` lets
    /// Bob attack the memory bus mid-run.
    fn execute(&self, program: &str, sabotage: bool) -> Result<Certificate, IntegrityError> {
        let mut mem = MemoryBuilder::new()
            .data_bytes(256 * 1024)
            .cache_blocks(256)
            .key(self.program_key(program))
            .build();

        // Phase 1: the program fills a table (Alice's workload: a toy
        // number-theoretic computation with real memory traffic).
        for i in 0..4096u64 {
            let v = i.wrapping_mul(i).wrapping_add(17);
            mem.write(i * 8, &v.to_le_bytes())?;
        }
        mem.flush()?;
        mem.clear_cache()?; // everything now lives in untrusted RAM

        if sabotage {
            // Bob nudges one table entry on the memory bus, hoping to
            // change the result while the certificate still validates.
            let phys = mem.layout().data_phys_addr(1000 * 8);
            mem.adversary().tamper(
                phys,
                TamperKind::Replace {
                    data: vec![0xff; 8],
                },
            );
        }

        // Phase 2: the program folds the table into a result.
        let mut acc = 0u64;
        for i in 0..4096u64 {
            let word = read_u64(&mut mem, i * 8)?;
            acc = acc.rotate_left(7) ^ word;
        }

        // Crypto barrier: signing waits for all checks (§5.8). In the
        // functional engine every read above was already checked, and a
        // final audit stands in for the barrier draining the buffers.
        mem.verify_all()?;
        Ok(Certificate {
            result: acc,
            signature: self.sign(program, acc),
        })
    }

    fn sign(&self, program: &str, result: u64) -> [u8; 16] {
        let mut ctx = Md5::new();
        ctx.update(&self.program_key(program));
        ctx.update(b"certificate");
        ctx.update(&result.to_le_bytes());
        ctx.finalize().into_bytes()
    }
}

fn read_u64(mem: &mut VerifiedMemory, addr: u64) -> Result<u64, IntegrityError> {
    let bytes = mem.read_vec(addr, 8)?;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

/// The manufacturer: registered the processor's secret at fabrication and
/// can therefore validate certificates (stand-in for public-key
/// verification against the published key).
struct Manufacturer {
    registered: Vec<([u8; 16], &'static str)>,
}

impl Manufacturer {
    fn verify(&self, processor: &str, program: &str, cert: &Certificate) -> bool {
        self.registered
            .iter()
            .find(|(_, name)| *name == processor)
            .map(|(secret, _)| {
                SecureProcessor::new(*secret).sign(program, cert.result) == cert.signature
            })
            .unwrap_or(false)
    }
}

fn main() {
    let bob_secret = *b"fab-fused-secret";
    let manufacturer = Manufacturer {
        registered: vec![(bob_secret, "bob-cpu-0")],
    };
    let processor = SecureProcessor::new(bob_secret);
    let program = "alice: fold(i*i+17, rotate-xor)";

    // Honest run.
    let cert = processor
        .execute(program, false)
        .expect("honest run verifies");
    println!("honest run: result = {:#018x}", cert.result);
    assert!(manufacturer.verify("bob-cpu-0", program, &cert));
    println!("manufacturer validates Bob's certificate: Alice trusts the result.\n");

    // Bob forges a result without running the program: the signature
    // cannot be produced without the processor secret.
    let forged = Certificate {
        result: 0xdead_beef,
        signature: [0u8; 16],
    };
    assert!(!manufacturer.verify("bob-cpu-0", program, &forged));
    println!("forged certificate rejected (no processor secret, no signature).");

    // Bob tampers with the memory bus mid-run: the integrity exception
    // fires before the signing barrier, so no certificate exists at all.
    match processor.execute(program, true) {
        Ok(_) => unreachable!("tampered run must not certify"),
        Err(err) => println!("sabotaged run aborted before signing: {err}"),
    }
    println!("\nmemory verification + processor secret = certified execution.");
}
