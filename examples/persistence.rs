//! Trusted state on untrusted storage: hibernate, restore, and reject
//! rollbacks.
//!
//! The related work the paper builds on (trusted databases on untrusted
//! storage) treats a disk exactly like the paper treats RAM: bulk data
//! lives outside the trust boundary and only the tree root must be kept
//! safe. This example hibernates a verified memory to an (attackable)
//! blob, restores it, and shows the two attacks the root defeats:
//! tampering the stored image, and rolling the image back to an earlier
//! version after the root moved on. It then moves from one-shot
//! hibernation to a *live* disk: the `miv-store` verified block store,
//! which keeps the tree on the device, commits atomically through a
//! shadow superblock, and recovers a committed root after a mid-write
//! power cut.
//!
//! ```text
//! cargo run --example persistence
//! ```

use miv::core::persist::{restore, SavedImage};
use miv::core::{MemoryBuilder, Protection};
use miv::hash::digest::Md5Hasher;
use miv::store::{BlockStore, CrashMedium, MemMedium, MemRootStore, StoreConfig, StoreError};

const KEY: [u8; 16] = *b"hibernation-key!";

fn main() {
    // A running machine with application state.
    let mut mem = MemoryBuilder::new()
        .data_bytes(64 * 1024)
        .key(KEY)
        .cache_blocks(256)
        .build();
    mem.write(0x1000, b"savings = 5000 credits").unwrap();

    // Hibernate: the image goes to untrusted storage, the root stays in
    // the trust boundary (on-chip NVRAM, a TPM, a smartcard...).
    let image = mem.export_state().unwrap();
    let root = mem.export_root(Protection::HashTree, KEY);
    println!(
        "hibernated {} KiB to untrusted storage; {} digests stay on chip",
        image.as_bytes().len() / 1024,
        mem.secure_root().len()
    );

    // Power back on: the pair verifies and the state is live again.
    let mut revived = restore(&image, &root, 256, Box::new(Md5Hasher)).unwrap();
    println!(
        "restored: {:?}",
        String::from_utf8_lossy(&revived.read_vec(0x1000, 22).unwrap())
    );

    // Attack 1: the stored image is modified on disk. Decoding is
    // fallible — a malformed blob is rejected before any hashing — but
    // a single flipped payload bit still decodes fine; only the tree
    // check against the root catches it.
    let mut bytes = SavedImage::from_bytes(image.as_bytes().to_vec())
        .expect("the exported image always decodes")
        .as_bytes()
        .to_vec();
    let idx = bytes.len() / 2;
    bytes[idx] ^= 0x01;
    let tampered = SavedImage::from_bytes(bytes).expect("a payload flip still decodes");
    match restore(&tampered, &root, 256, Box::new(Md5Hasher)) {
        Ok(_) => unreachable!("tampered image must not restore"),
        Err(err) => println!("tampered image rejected: {err}"),
    }

    // Attack 2: rollback. The machine runs on (spends the savings), saves
    // again; the attacker restores the OLD image hoping to refund.
    revived.write(0x1000, b"savings =    0 credits").unwrap();
    let _new_image = revived.export_state().unwrap();
    let new_root = revived.export_root(Protection::HashTree, KEY);
    match restore(&image, &new_root, 256, Box::new(Md5Hasher)) {
        Ok(_) => unreachable!("rollback must not restore"),
        Err(err) => println!("rollback to the old image rejected: {err}"),
    }
    println!("only the (image, root) pair the processor saved together is accepted.");

    // Hibernation is one-shot; a live system wants a *disk*. The block
    // store keeps the hash tree on the untrusted device and commits
    // through a journal + shadow superblock, so a power cut in the
    // middle of a write burst can never tear the committed state.
    block_store_demo().expect("block store demo");
}

/// Open → write → crash → recover on the verified block store. The
/// medium here is in-memory for a self-contained example; `FileMedium`
/// drops in for a real file (see `mivsim store`).
fn block_store_demo() -> Result<(), StoreError> {
    println!("\n-- verified block store: crash and recover --");
    let disk = MemMedium::new();
    let nvram = MemRootStore::new(); // trusted root: on-chip NVRAM
    let config = StoreConfig {
        data_bytes: 16 * 1024,
        page_bytes: 128,
        cache_pages: 16,
        journal_slots: 0, // sized automatically
    };

    // Create the store and commit a first generation.
    let mut store = BlockStore::create(
        CrashMedium::new(disk.clone()),
        nvram.clone(),
        config,
        Box::new(Md5Hasher),
    )?;
    store.write(0x200, b"balance = 5000 credits")?;
    store.commit()?;
    println!(
        "generation {} committed after {} device steps",
        store.generation(),
        store.medium().steps()
    );

    // Keep writing, then lose power before the next commit completes:
    // the armed medium tears a device write in half and goes dead a
    // few steps into the commit's journal burst.
    let mut store = BlockStore::open(
        CrashMedium::new(disk.clone()).arm(8),
        nvram.clone(),
        Box::new(Md5Hasher),
        config.cache_pages,
    )?
    .0;
    store.write(0x200, b"balance =    0 credits")?;
    match store.commit() {
        Err(StoreError::Crashed) => println!("power cut mid-commit (torn device write)"),
        other => unreachable!("armed medium must crash the commit: {other:?}"),
    }
    drop(store);

    // Power back on: recovery replays the committed journal, discards
    // the in-flight generation's frames, and the tree verifies against
    // the trusted root — the committed balance is intact, not torn.
    let (mut store, recovery) = BlockStore::open(
        CrashMedium::new(disk),
        nvram,
        Box::new(Md5Hasher),
        config.cache_pages,
    )?;
    store.verify_all()?;
    println!(
        "recovered generation {} ({} frames replayed, {} orphaned frames discarded)",
        recovery.generation, recovery.replayed_entries, recovery.orphaned_entries
    );
    println!(
        "recovered state: {:?}",
        String::from_utf8_lossy(&store.read_vec(0x200, 22)?)
    );
    Ok(())
}
