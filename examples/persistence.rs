//! Trusted state on untrusted storage: hibernate, restore, and reject
//! rollbacks.
//!
//! The related work the paper builds on (trusted databases on untrusted
//! storage) treats a disk exactly like the paper treats RAM: bulk data
//! lives outside the trust boundary and only the tree root must be kept
//! safe. This example hibernates a verified memory to an (attackable)
//! blob, restores it, and shows the two attacks the root defeats:
//! tampering the stored image, and rolling the image back to an earlier
//! version after the root moved on.
//!
//! ```text
//! cargo run --example persistence
//! ```

use miv::core::persist::{restore, SavedImage};
use miv::core::{MemoryBuilder, Protection};
use miv::hash::digest::Md5Hasher;

const KEY: [u8; 16] = *b"hibernation-key!";

fn main() {
    // A running machine with application state.
    let mut mem = MemoryBuilder::new()
        .data_bytes(64 * 1024)
        .key(KEY)
        .cache_blocks(256)
        .build();
    mem.write(0x1000, b"savings = 5000 credits").unwrap();

    // Hibernate: the image goes to untrusted storage, the root stays in
    // the trust boundary (on-chip NVRAM, a TPM, a smartcard...).
    let image = mem.export_state().unwrap();
    let root = mem.export_root(Protection::HashTree, KEY);
    println!(
        "hibernated {} KiB to untrusted storage; {} digests stay on chip",
        image.as_bytes().len() / 1024,
        mem.secure_root().len()
    );

    // Power back on: the pair verifies and the state is live again.
    let mut revived = restore(&image, &root, 256, Box::new(Md5Hasher)).unwrap();
    println!(
        "restored: {:?}",
        String::from_utf8_lossy(&revived.read_vec(0x1000, 22).unwrap())
    );

    // Attack 1: the stored image is modified on disk.
    let mut tampered = SavedImage::from_bytes(image.as_bytes().to_vec());
    let idx = tampered.as_bytes().len() / 2;
    let mut bytes = tampered.as_bytes().to_vec();
    bytes[idx] ^= 0x01;
    tampered = SavedImage::from_bytes(bytes);
    match restore(&tampered, &root, 256, Box::new(Md5Hasher)) {
        Ok(_) => unreachable!("tampered image must not restore"),
        Err(err) => println!("tampered image rejected: {err}"),
    }

    // Attack 2: rollback. The machine runs on (spends the savings), saves
    // again; the attacker restores the OLD image hoping to refund.
    revived.write(0x1000, b"savings =    0 credits").unwrap();
    let _new_image = revived.export_state().unwrap();
    let new_root = revived.export_root(Protection::HashTree, KEY);
    match restore(&image, &new_root, 256, Box::new(Md5Hasher)) {
        Ok(_) => unreachable!("rollback must not restore"),
        Err(err) => println!("rollback to the old image rejected: {err}"),
    }
    println!("only the (image, root) pair the processor saved together is accepted.");
}
