//! `miv` — Memory Integrity Verification with caches and hash trees.
//!
//! A full reproduction of *"Caches and Hash Trees for Efficient Memory
//! Integrity Verification"* (Gassend, Suh, Clarke, van Dijk, Devadas —
//! HPCA 2003) as a Rust workspace. This facade crate re-exports every
//! subsystem so examples and downstream users need a single dependency:
//!
//! * [`hash`] — MD5/SHA-1, the XTEA-based PRP, the incremental XOR-MAC
//!   and the hash-unit timing model.
//! * [`cache`] — set-associative cache models (L1, unified L2).
//! * [`mem`] — DRAM and the shared 1.6 GB/s memory bus.
//! * [`cpu`] — the 4-wide out-of-order core timing model.
//! * [`trace`] — synthetic SPEC CPU2000-like workload generators.
//! * [`core`] — the paper's contribution: the hash-tree layout, the
//!   `naive`/`chash`/`mhash`/`ihash` schemes, the functional verification
//!   engine and the adversary model.
//! * [`store`] — the persistent verified block store: hash-tree pages
//!   on an untrusted block device behind a trusted page cache, with a
//!   redo journal, shadow superblocks and an atomic root commit.
//! * [`adversary`] — scripted attack campaigns: the online taxonomy
//!   (bit flips, splices, replays) and the offline store-tamper battery.
//! * [`sim`] — the full-system simulator and the experiment harness that
//!   regenerates every table and figure.
//! * [`obs`] — the dependency-free telemetry layer: metrics registry,
//!   typed simulation events, and the hand-rolled JSON emitter behind
//!   `--metrics-out` / `--trace-events`.
//!
//! # Quick start
//!
//! ```
//! use miv::core::{MemoryBuilder, TamperKind};
//!
//! // A verified memory of 64 KiB with 64-byte chunks (4-ary tree).
//! let mut mem = MemoryBuilder::new().data_bytes(64 * 1024).build();
//! mem.write(0x1000, b"secret state").unwrap();
//! assert_eq!(&mem.read_vec(0x1000, 12).unwrap(), b"secret state");
//!
//! // Push the state out to untrusted RAM (evict the trusted cache)...
//! mem.clear_cache().unwrap();
//! // ...where a physical attacker flips a bit on the memory bus...
//! let phys = mem.layout().data_phys_addr(0x1000);
//! mem.adversary().tamper(phys, TamperKind::BitFlip { bit: 3 });
//! // ...and the very next checked read detects it.
//! assert!(mem.read_vec(0x1000, 12).is_err());
//! ```

#![forbid(unsafe_code)]

pub use miv_adversary as adversary;
pub use miv_cache as cache;
pub use miv_core as core;
pub use miv_cpu as cpu;
pub use miv_hash as hash;
pub use miv_mem as mem;
pub use miv_obs as obs;
pub use miv_sim as sim;
pub use miv_store as store;
pub use miv_trace as trace;
