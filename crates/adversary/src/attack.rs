//! The attack taxonomy and injection triggers.
//!
//! Every attack class maps onto the shared [`miv_core::TamperKind`]
//! vocabulary plus layout arithmetic from `miv_core::adversary`; the
//! class is *what* is corrupted (program data, tree metadata, freshness
//! state), the [`Trigger`] is *when* the corruption lands relative to the
//! running access stream.

use miv_core::Scheme;
use miv_obs::Rng;

/// One class of physical attack against untrusted memory (§3, §4.4,
/// §5.4 of the paper), plus a no-injection control.
// miv-analyze: exhaustive
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackClass {
    /// No injection at all: any "detection" in a control cell is a
    /// false alarm, the campaign's specificity baseline.
    Control,
    /// Flip a single bit of a program-data block.
    DataBitFlip,
    /// Overwrite a whole data block with attacker-chosen bytes.
    BlockReplace,
    /// Relocate one data block over another (the `CopyFrom` splice
    /// attack defeated by position-binding).
    Splice,
    /// Restore a previously valid block after the program updated it —
    /// the §4.4 replay/rollback attack on freshness.
    Replay,
    /// Flip a bit of a stored hash (or MAC tag) in a parent slot.
    HashNodeCorrupt,
    /// Copy one top-level chunk over another: both were valid under the
    /// secure root, but each is bound to its own position.
    RootSwap,
    /// Flip one §5.4 timestamp bit in an incremental-MAC slot
    /// (`ihash` only — the other schemes store no timestamps).
    TimestampFlip,
}

impl AttackClass {
    /// Every class, in matrix presentation order.
    pub const ALL: [AttackClass; 8] = [
        AttackClass::Control,
        AttackClass::DataBitFlip,
        AttackClass::BlockReplace,
        AttackClass::Splice,
        AttackClass::Replay,
        AttackClass::HashNodeCorrupt,
        AttackClass::RootSwap,
        AttackClass::TimestampFlip,
    ];

    /// Stable kebab-case label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AttackClass::Control => "control",
            AttackClass::DataBitFlip => "bit-flip",
            AttackClass::BlockReplace => "replace",
            AttackClass::Splice => "splice",
            AttackClass::Replay => "replay",
            AttackClass::HashNodeCorrupt => "hash-node",
            AttackClass::RootSwap => "root-swap",
            AttackClass::TimestampFlip => "ts-flip",
        }
    }

    /// Whether the attack can be mounted against `scheme` at all: data
    /// attacks work against any memory, but metadata attacks need a tree
    /// in memory and the timestamp flip needs the incremental MAC.
    pub fn applies_to(&self, scheme: Scheme) -> bool {
        match self {
            AttackClass::Control
            | AttackClass::DataBitFlip
            | AttackClass::BlockReplace
            | AttackClass::Splice
            | AttackClass::Replay => true,
            AttackClass::HashNodeCorrupt | AttackClass::RootSwap => scheme.verifies(),
            AttackClass::TimestampFlip => scheme == Scheme::IHash,
        }
    }

    /// Whether a correct checker must detect this attack under `scheme`:
    /// every applicable injection except under [`Scheme::Base`], which
    /// never verifies and therefore never detects (the campaign's
    /// sensitivity ground truth).
    pub fn expected_detected(&self, scheme: Scheme) -> bool {
        scheme.verifies() && self.applies_to(scheme) && *self != AttackClass::Control
    }

    /// Whether the class injects anything.
    pub fn is_injection(&self) -> bool {
        *self != AttackClass::Control
    }
}

impl std::fmt::Display for AttackClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// When the injection fires relative to the running access stream. All
/// three forms are deterministic given the cell's seed; a cell harness
/// additionally force-fires near the end of the stream so no attack cell
/// ever finishes without its injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire at the first access issued at or after this cycle.
    AtCycle {
        /// Simulation cycle threshold.
        cycle: u64,
    },
    /// Fire once the attack's target block has been touched this many
    /// times by the program.
    AfterTargetTouches {
        /// Touch count threshold.
        count: u64,
    },
    /// Fire with this per-access probability, drawn from the cell's
    /// seeded PRNG stream.
    Random {
        /// Probability per access in parts-per-million.
        per_access_ppm: u32,
    },
}

impl Trigger {
    /// Stable label for JSON export.
    pub fn label(&self) -> &'static str {
        match self {
            Trigger::AtCycle { .. } => "at-cycle",
            Trigger::AfterTargetTouches { .. } => "after-touches",
            Trigger::Random { .. } => "random",
        }
    }

    /// Evaluates the trigger before one access. `now` is the current
    /// simulation cycle and `target_touches` counts how often the attack
    /// target block has been accessed so far; `rng` is consulted only by
    /// [`Trigger::Random`].
    pub fn should_fire(&self, now: u64, target_touches: u64, rng: &mut Rng) -> bool {
        match *self {
            Trigger::AtCycle { cycle } => now >= cycle,
            Trigger::AfterTargetTouches { count } => target_touches >= count,
            Trigger::Random { per_access_ppm } => rng.gen_bool(per_access_ppm as f64 / 1e6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability_matrix() {
        for attack in AttackClass::ALL {
            assert!(
                attack.applies_to(Scheme::IHash),
                "{attack} applies to ihash"
            );
        }
        assert!(!AttackClass::TimestampFlip.applies_to(Scheme::MHash));
        assert!(!AttackClass::HashNodeCorrupt.applies_to(Scheme::Base));
        assert!(!AttackClass::RootSwap.applies_to(Scheme::Base));
        assert!(AttackClass::Replay.applies_to(Scheme::Base));
    }

    #[test]
    fn base_expects_no_detection_and_control_is_never_expected() {
        for attack in AttackClass::ALL {
            assert!(!attack.expected_detected(Scheme::Base));
        }
        for scheme in Scheme::ALL {
            assert!(!AttackClass::Control.expected_detected(scheme));
        }
        assert!(AttackClass::DataBitFlip.expected_detected(Scheme::Naive));
        assert!(AttackClass::TimestampFlip.expected_detected(Scheme::IHash));
    }

    #[test]
    fn triggers_fire_deterministically() {
        let mut rng = Rng::seed_from_u64(1);
        assert!(!Trigger::AtCycle { cycle: 100 }.should_fire(99, 0, &mut rng));
        assert!(Trigger::AtCycle { cycle: 100 }.should_fire(100, 0, &mut rng));
        assert!(!Trigger::AfterTargetTouches { count: 2 }.should_fire(0, 1, &mut rng));
        assert!(Trigger::AfterTargetTouches { count: 2 }.should_fire(0, 2, &mut rng));
        let fire_a: Vec<bool> = {
            let mut r = Rng::seed_from_u64(7);
            (0..64)
                .map(|_| {
                    Trigger::Random {
                        per_access_ppm: 500_000,
                    }
                    .should_fire(0, 0, &mut r)
                })
                .collect()
        };
        let fire_b: Vec<bool> = {
            let mut r = Rng::seed_from_u64(7);
            (0..64)
                .map(|_| {
                    Trigger::Random {
                        per_access_ppm: 500_000,
                    }
                    .should_fire(0, 0, &mut r)
                })
                .collect()
        };
        assert_eq!(fire_a, fire_b);
        assert!(fire_a.iter().any(|&f| f) && fire_a.iter().any(|&f| !f));
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<&str> = AttackClass::ALL.iter().map(|a| a.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
