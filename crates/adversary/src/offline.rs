//! Offline-tamper campaigns against the persistent block store.
//!
//! The online attack battery ([`crate::cell`]) strikes while the
//! checker runs; this module models the complementary threat: the
//! machine is **powered off**, the adversary has the disk on a bench,
//! and may rewrite any byte of the untrusted block file — or swap the
//! whole image for an older, internally consistent one — before the
//! store is reopened. The trusted root (generation counter + root
//! digests, modeled as on-chip NVRAM) is the only thing out of reach.
//!
//! Each cell builds a store in memory, commits twice, mutates the dead
//! image, then reopens and fully verifies. Detection may land at two
//! phases: [`DetectPhase::Open`] (superblock triage or generation
//! mismatch) or [`DetectPhase::Verify`] (the tree walk against the
//! trusted roots). One subtlety is encoded in the target selection: the
//! committed journal is a redo log, so a flip on a main-region page the
//! journal still shadows is *healed* at open rather than detected. The
//! data/tree-page attacks therefore pick pages outside the journaled
//! set — the strongest variant, where nothing but the hash tree stands
//! between the flip and silent corruption.

use miv_hash::HashAlgo;
use miv_obs::{JsonValue, Registry, Rng};
use miv_store::{BlockStore, JournalEntry, MemMedium, MemRootStore, StoreConfig};

use crate::campaign::cell_seed;

/// Attack-index namespace for [`cell_seed`], disjoint from the online
/// campaign's `0..AttackClass::ALL.len()` range.
const OFFLINE_SEED_LANE: usize = 64;

/// What the offline adversary does to the powered-off image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfflineAttack {
    /// No mutation — the false-alarm control.
    Control,
    /// Flip one bit of a data page the journal does not shadow.
    DataPage,
    /// Flip one bit of a hash-tree page the journal does not shadow.
    TreePage,
    /// Flip one bit of the active superblock slot.
    Superblock,
    /// Replace the whole image with an older, internally consistent
    /// snapshot (rollback between close and reopen).
    StaleSplice,
}

impl OfflineAttack {
    /// Every offline attack, report order.
    pub const ALL: [OfflineAttack; 5] = [
        OfflineAttack::Control,
        OfflineAttack::DataPage,
        OfflineAttack::TreePage,
        OfflineAttack::Superblock,
        OfflineAttack::StaleSplice,
    ];

    /// Stable label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            OfflineAttack::Control => "control",
            OfflineAttack::DataPage => "data-page",
            OfflineAttack::TreePage => "tree-page",
            OfflineAttack::Superblock => "superblock",
            OfflineAttack::StaleSplice => "stale-splice",
        }
    }

    /// Whether a correct store must detect this attack on reload.
    pub fn expected_detected(&self) -> bool {
        !matches!(self, OfflineAttack::Control)
    }
}

/// Where a detection landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectPhase {
    /// Rejected while opening: superblock triage, generation mismatch,
    /// or trusted-root inconsistency.
    Open,
    /// Caught by the full tree walk against the trusted roots.
    Verify,
}

/// The plan for one offline campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflineSpec {
    /// Master seed; shared with the online campaign so `mivsim attack`
    /// drives both from one number.
    pub seed: u64,
    /// Trials per attack.
    pub trials: u32,
    /// Store data capacity in bytes.
    pub data_bytes: u64,
    /// Store page size in bytes.
    pub page_bytes: u32,
    /// Trusted cache capacity in pages.
    pub cache_pages: usize,
    /// Verified write operations per build phase.
    pub ops: u64,
    /// Hash unit protecting the store's tree pages.
    pub hash: HashAlgo,
}

impl OfflineSpec {
    /// CI-sized: a small store, two trials per attack.
    pub fn quick(seed: u64) -> Self {
        OfflineSpec {
            seed,
            trials: 2,
            data_bytes: 16 << 10,
            page_bytes: 128,
            cache_pages: 16,
            ops: 300,
            hash: HashAlgo::Md5,
        }
    }

    /// The full campaign: a larger store and five trials per attack.
    pub fn full(seed: u64) -> Self {
        OfflineSpec {
            seed,
            trials: 5,
            data_bytes: 64 << 10,
            page_bytes: 256,
            cache_pages: 24,
            ops: 2_000,
            hash: HashAlgo::Md5,
        }
    }

    /// Expands into every attack × trial cell.
    pub fn cells(&self) -> Vec<OfflineCell> {
        let mut cells = Vec::new();
        for (ai, &attack) in OfflineAttack::ALL.iter().enumerate() {
            for trial in 0..self.trials {
                cells.push(OfflineCell {
                    attack,
                    trial,
                    seed: cell_seed(self.seed, OFFLINE_SEED_LANE, ai, trial),
                    data_bytes: self.data_bytes,
                    page_bytes: self.page_bytes,
                    cache_pages: self.cache_pages,
                    ops: self.ops,
                    hash: self.hash,
                });
            }
        }
        cells
    }
}

/// One attack × trial of the offline campaign — plain data, safe to run
/// on any worker in any order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineCell {
    /// The mutation to apply to the dead image.
    pub attack: OfflineAttack,
    /// Trial index within the attack.
    pub trial: u32,
    /// Derived seed for this cell's workload and target selection.
    pub seed: u64,
    /// Store data capacity in bytes.
    pub data_bytes: u64,
    /// Store page size in bytes.
    pub page_bytes: u32,
    /// Trusted cache capacity in pages.
    pub cache_pages: usize,
    /// Verified write operations per build phase.
    pub ops: u64,
    /// Hash unit protecting the store's tree pages.
    pub hash: HashAlgo,
}

/// What one offline cell observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineOutcome {
    /// The cell's attack.
    pub attack: OfflineAttack,
    /// The cell's trial index.
    pub trial: u32,
    /// Which phase rejected the image, if any.
    pub detected: Option<DetectPhase>,
    /// A control cell that errored anyway — a store lie.
    pub false_alarm: bool,
}

/// Runs one offline cell: build → power off → mutate → reopen → verify.
pub fn run_offline_cell(cell: &OfflineCell) -> OfflineOutcome {
    let mut rng = Rng::seed_from_u64(cell.seed);
    let medium = MemMedium::new();
    let roots = MemRootStore::new();
    let config = StoreConfig {
        data_bytes: cell.data_bytes,
        page_bytes: cell.page_bytes,
        cache_pages: cell.cache_pages,
        journal_slots: 0,
    };
    let mut store = BlockStore::create(medium.clone(), roots.clone(), config, cell.hash.hasher())
        .expect("documented invariant: offline spec geometries are valid");

    // Phase 1: populate and commit, then snapshot the committed image —
    // the stale-splice attack will roll the disk back to this.
    workload(&mut store, &mut rng, cell);
    store.commit().expect("offline build commit");
    let stale_image = medium.snapshot();

    // Phase 2: more writes, another commit, then power off.
    workload(&mut store, &mut rng, cell);
    store.commit().expect("offline build commit");
    let geom = store.geometry().clone();
    let generation = store.generation();
    drop(store);

    // The bench mutation.
    let hasher = cell.hash.hasher();
    match cell.attack {
        OfflineAttack::Control => {}
        OfflineAttack::DataPage | OfflineAttack::TreePage => {
            // Collect the pages the committed journal shadows: flips
            // there are healed by redo replay (by design), so the
            // attack targets an unshadowed page.
            let mut shadowed = std::collections::BTreeSet::new();
            let frame_len = usize::try_from(JournalEntry::frame_bytes(geom.page_bytes()))
                .expect("frame fits usize");
            let image = medium.snapshot();
            for idx in 0..geom.journal_slots() {
                let at = usize::try_from(geom.journal_offset(idx)).expect("offset fits");
                if let Ok(e) =
                    JournalEntry::decode(&image[at..at + frame_len], geom.page_bytes(), &*hasher)
                {
                    if e.generation == generation {
                        shadowed.insert(e.page);
                    }
                }
            }
            let layout = *geom.layout();
            let (lo, hi) = if cell.attack == OfflineAttack::DataPage {
                (layout.hash_chunks(), layout.total_chunks())
            } else {
                (0, layout.hash_chunks())
            };
            let page = loop {
                let p = rng.gen_range_u64(lo, hi);
                if !shadowed.contains(&p) {
                    break p;
                }
            };
            let offset = geom.page_offset(page) + rng.gen_range_u64(0, geom.page_bytes() as u64);
            let mask = 1u8 << rng.gen_range_u64(0, 8);
            medium.flip(offset, mask);
        }
        OfflineAttack::Superblock => {
            let slot = miv_store::StoreGeometry::slot_for(generation);
            let offset = geom.slot_offset(slot) + rng.gen_range_u64(0, miv_store::SUPER_SLOT_BYTES);
            let mask = 1u8 << rng.gen_range_u64(0, 8);
            medium.flip(offset, mask);
        }
        OfflineAttack::StaleSplice => {
            // The whole phase-1 image, byte-perfect and self-consistent
            // — only the trusted generation counter can tell it apart.
            medium.restore(&stale_image);
        }
    }

    // Power on: open + full verify, exactly what `mivsim store fsck`
    // does.
    let detected = match BlockStore::open(medium, roots, cell.hash.hasher(), cell.cache_pages) {
        Err(_) => Some(DetectPhase::Open),
        Ok((mut store, _report)) => match store.verify_all() {
            Err(_) => Some(DetectPhase::Verify),
            Ok(_) => None,
        },
    };
    OfflineOutcome {
        attack: cell.attack,
        trial: cell.trial,
        detected,
        false_alarm: cell.attack == OfflineAttack::Control && detected.is_some(),
    }
}

fn workload(store: &mut BlockStore<MemMedium, MemRootStore>, rng: &mut Rng, cell: &OfflineCell) {
    for _ in 0..cell.ops {
        let len = rng.gen_range_u64(1, 64) as usize;
        let addr = rng.gen_range_u64(0, cell.data_bytes - len as u64);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        store
            .write(addr, &buf)
            .expect("offline build writes are verified and must succeed");
    }
}

/// One attack row of the offline coverage matrix, folded over trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineMatrixCell {
    /// Attack.
    pub attack: OfflineAttack,
    /// Whether detection is required.
    pub expected_detected: bool,
    /// Trials run.
    pub trials: u32,
    /// Trials detected (either phase).
    pub detected: u32,
    /// Expected detections that did not happen.
    pub missed: u32,
    /// Control trials that errored.
    pub false_alarms: u32,
    /// Detections at open.
    pub by_open: u32,
    /// Detections during the verify walk.
    pub by_verify: u32,
}

impl OfflineMatrixCell {
    /// Text verdict, mirroring the online matrix.
    pub fn verdict(&self) -> &'static str {
        if self.false_alarms > 0 {
            "false-alarm"
        } else if self.expected_detected && self.missed > 0 {
            "MISSED"
        } else if self.expected_detected {
            "detected"
        } else {
            "clean"
        }
    }
}

/// The aggregated offline campaign result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflineReport {
    /// One row per attack, spec order.
    pub matrix: Vec<OfflineMatrixCell>,
    /// Trials run.
    pub cells: u64,
    /// Detections, campaign-wide.
    pub detected: u64,
    /// Required detections that were missed.
    pub missed_expected: u64,
    /// Control trials that errored.
    pub false_alarms: u64,
}

impl OfflineReport {
    /// Folds outcomes by attack, iterating the spec's attack order so
    /// worker scheduling cannot affect the report.
    pub fn from_outcomes(_spec: &OfflineSpec, outcomes: &[OfflineOutcome]) -> Self {
        let mut matrix = Vec::new();
        let mut cells = 0u64;
        let mut detected = 0u64;
        let mut missed_expected = 0u64;
        let mut false_alarms = 0u64;
        for &attack in &OfflineAttack::ALL {
            let mut cell = OfflineMatrixCell {
                attack,
                expected_detected: attack.expected_detected(),
                trials: 0,
                detected: 0,
                missed: 0,
                false_alarms: 0,
                by_open: 0,
                by_verify: 0,
            };
            let mut trials: Vec<&OfflineOutcome> =
                outcomes.iter().filter(|o| o.attack == attack).collect();
            trials.sort_by_key(|o| o.trial);
            for out in trials {
                cell.trials += 1;
                cells += 1;
                if out.false_alarm {
                    cell.false_alarms += 1;
                    false_alarms += 1;
                }
                match out.detected {
                    Some(DetectPhase::Open) => {
                        cell.detected += 1;
                        cell.by_open += 1;
                    }
                    Some(DetectPhase::Verify) => {
                        cell.detected += 1;
                        cell.by_verify += 1;
                    }
                    None => {
                        if cell.expected_detected {
                            cell.missed += 1;
                            missed_expected += 1;
                        }
                    }
                }
                if out.detected.is_some() && attack.expected_detected() {
                    detected += 1;
                }
            }
            matrix.push(cell);
        }
        OfflineReport {
            matrix,
            cells,
            detected,
            missed_expected,
            false_alarms,
        }
    }

    /// No missed detections and no false alarms.
    pub fn clean(&self) -> bool {
        self.missed_expected == 0 && self.false_alarms == 0
    }

    /// Serialises the `offline` section of the `miv-attack-v1` schema.
    pub fn to_json(&self, spec: &OfflineSpec) -> JsonValue {
        let mut root = JsonValue::obj();
        let mut config = JsonValue::obj();
        config.push("trials", spec.trials);
        config.push("data_bytes", spec.data_bytes);
        config.push("page_bytes", spec.page_bytes);
        config.push("cache_pages", spec.cache_pages as u64);
        config.push("ops", spec.ops);
        config.push("hash", spec.hash.label());
        root.push("config", config);

        let mut matrix = Vec::new();
        for cell in &self.matrix {
            let mut row = JsonValue::obj();
            row.push("attack", cell.attack.label());
            row.push("expected_detected", cell.expected_detected);
            row.push("trials", cell.trials);
            row.push("detected", cell.detected);
            row.push("missed", cell.missed);
            row.push("false_alarms", cell.false_alarms);
            let mut by = JsonValue::obj();
            by.push("open", cell.by_open);
            by.push("verify", cell.by_verify);
            row.push("phases", by);
            matrix.push(row);
        }
        root.push("matrix", JsonValue::Array(matrix));

        let mut summary = JsonValue::obj();
        summary.push("cells", self.cells);
        summary.push("detected", self.detected);
        summary.push("missed_expected", self.missed_expected);
        summary.push("false_alarms", self.false_alarms);
        root.push("summary", summary);
        root
    }

    /// Publishes aggregate counters into `registry`
    /// (`attack.offline.*` namespace).
    pub fn record_into(&self, registry: &Registry) {
        registry.counter("attack.offline.cells").add(self.cells);
        registry
            .counter("attack.offline.detected")
            .add(self.detected);
        registry
            .counter("attack.offline.missed")
            .add(self.missed_expected);
        registry
            .counter("attack.offline.false_alarms")
            .add(self.false_alarms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_spec_expands_with_distinct_seeds() {
        let spec = OfflineSpec::quick(7);
        let cells = spec.cells();
        assert_eq!(cells.len(), OfflineAttack::ALL.len() * spec.trials as usize);
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len(), "cell seeds must be distinct");
    }

    #[test]
    fn every_offline_attack_is_detected_and_control_is_clean() {
        let spec = OfflineSpec::quick(11);
        let outcomes: Vec<OfflineOutcome> = spec.cells().iter().map(run_offline_cell).collect();
        let report = OfflineReport::from_outcomes(&spec, &outcomes);
        assert!(
            report.clean(),
            "missed={} false_alarms={}",
            report.missed_expected,
            report.false_alarms
        );
        for cell in &report.matrix {
            if cell.expected_detected {
                assert_eq!(
                    cell.detected,
                    cell.trials,
                    "{} not always detected",
                    cell.attack.label()
                );
            } else {
                assert_eq!(cell.detected, 0);
                assert_eq!(cell.false_alarms, 0);
            }
        }
        // Phase attribution: superblock and stale-splice die at open.
        let by_label = |l: &str| {
            report
                .matrix
                .iter()
                .find(|c| c.attack.label() == l)
                .copied()
                .expect("attack present")
        };
        assert_eq!(
            by_label("superblock").by_open,
            by_label("superblock").trials
        );
        assert_eq!(
            by_label("stale-splice").by_open,
            by_label("stale-splice").trials
        );
        assert_eq!(
            by_label("data-page").by_verify,
            by_label("data-page").trials
        );
        assert_eq!(
            by_label("tree-page").by_verify,
            by_label("tree-page").trials
        );
    }

    #[test]
    fn report_is_order_independent() {
        let spec = OfflineSpec {
            trials: 2,
            ops: 60,
            ..OfflineSpec::quick(3)
        };
        let outcomes: Vec<OfflineOutcome> = spec.cells().iter().map(run_offline_cell).collect();
        let mut shuffled = outcomes.clone();
        shuffled.reverse();
        assert_eq!(
            OfflineReport::from_outcomes(&spec, &outcomes),
            OfflineReport::from_outcomes(&spec, &shuffled)
        );
    }
}
