//! Scripted adversary campaigns against the memory integrity checker.
//!
//! The HPCA'03 threat model (§3) gives the adversary full control over
//! untrusted off-chip memory: it may flip bits, replace blocks, relocate
//! them (splice), roll them back to previously valid contents (replay),
//! and corrupt the stored tree metadata itself. This crate turns that
//! threat model into an executable test battery:
//!
//! * [`AttackClass`] — the taxonomy of physical attacks, from a single
//!   data bit-flip up to swapping two children of the secure root and
//!   flipping §5.4 incremental-MAC timestamp bits, plus a no-injection
//!   control for false-alarm accounting.
//! * [`Trigger`] — *when* an injection lands: at a simulation cycle,
//!   after the target block's *k*-th touch, or at a seeded per-access
//!   probability. All three are deterministic given the cell seed.
//! * [`run_cell`] — one scheme × attack × trial simulation driving both
//!   halves of the checker: the cycle-level [`L2Controller`] (taint
//!   tracking gives detection *cycles*) and the functional
//!   [`VerifiedMemory`] (real digests give detection ground truth),
//!   with an end-of-run audit so cache-masked corruption is still
//!   accounted.
//! * [`CampaignSpec`] / [`CampaignReport`] — the full scheme × attack
//!   grid and its fold into a detection-coverage matrix plus per-scheme
//!   latency percentiles, exported as the `miv-attack-v1` JSON schema
//!   and as `attack.*` metrics through the `miv-obs` registry.
//! * [`offline`] — the powered-off complement: bench mutations of the
//!   persistent block store's untrusted image (data/tree page flips,
//!   superblock flips, stale-image splices) that must be caught when
//!   the store is reopened against its trusted root.
//!
//! Cells are plain-data configs and independent of each other, so an
//! executor may run them in any order or on any number of threads; the
//! report folds outcomes by grid position, not arrival order, which is
//! what makes `mivsim attack --jobs N` byte-identical for every `N`.
//!
//! [`L2Controller`]: miv_core::L2Controller
//! [`VerifiedMemory`]: miv_core::VerifiedMemory

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod campaign;
pub mod cell;
pub mod offline;

pub use attack::{AttackClass, Trigger};
pub use campaign::{cell_seed, percentile, CampaignReport, CampaignSpec, LatencyStats, MatrixCell};
pub use cell::{
    run_cell, run_cell_traced, CellConfig, CellOutcome, Detection, Detector, Injection,
};
pub use offline::{
    run_offline_cell, DetectPhase, OfflineAttack, OfflineCell, OfflineMatrixCell, OfflineOutcome,
    OfflineReport, OfflineSpec,
};
