//! Campaign planning and aggregation.
//!
//! A [`CampaignSpec`] expands into a flat list of [`CellConfig`]s — one
//! per scheme × attack × trial — that an executor (sequential or a
//! worker pool) runs in any order. [`CampaignReport::from_outcomes`]
//! then folds the outcomes into a detection-coverage matrix and
//! per-scheme latency statistics. Aggregation iterates the spec, not the
//! outcome order, so the report is identical no matter how the cells
//! were scheduled — the property the CLI's `--jobs` determinism check
//! rests on.

use miv_core::{ConfigError, Scheme};
use miv_hash::HashAlgo;
use miv_obs::{JsonValue, Registry};

use crate::attack::{AttackClass, Trigger};
use crate::cell::{CellConfig, CellOutcome, Detector};

/// The plan for one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Master seed; every cell derives its own stream from it.
    pub seed: u64,
    /// Trials per scheme × attack cell (each with a different trigger).
    pub trials: u32,
    /// Schemes under test, in report order.
    pub schemes: Vec<Scheme>,
    /// Protected data segment size in bytes.
    pub data_bytes: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Cache line / tree block size in bytes.
    pub line_bytes: u32,
    /// Span of the synthetic access stream in bytes.
    pub working_set: u64,
    /// Accesses per cell.
    pub accesses: u64,
    /// Store fraction of the stream, in percent.
    pub write_ratio_pct: u32,
    /// Capture event traces inside each cell.
    pub capture_events: bool,
    /// Hash unit for the functional engines (the timing model is
    /// unchanged, keeping latency tables comparable across units).
    pub hash: HashAlgo,
}

impl CampaignSpec {
    /// A CI-sized campaign: every scheme, every attack, two trials, a
    /// couple of seconds of wall clock.
    pub fn quick(seed: u64) -> Self {
        CampaignSpec {
            seed,
            trials: 2,
            schemes: Scheme::ALL.to_vec(),
            data_bytes: 256 << 10,
            l2_bytes: 32 << 10,
            line_bytes: 64,
            working_set: 128 << 10,
            accesses: 2_500,
            write_ratio_pct: 30,
            capture_events: false,
            hash: HashAlgo::Md5,
        }
    }

    /// The full campaign: five trials per cell over a larger memory and
    /// a longer access stream, for stable latency percentiles.
    pub fn full(seed: u64) -> Self {
        CampaignSpec {
            seed,
            trials: 5,
            schemes: Scheme::ALL.to_vec(),
            data_bytes: 1 << 20,
            l2_bytes: 64 << 10,
            line_bytes: 64,
            working_set: 512 << 10,
            accesses: 20_000,
            write_ratio_pct: 30,
            capture_events: false,
            hash: HashAlgo::Md5,
        }
    }

    /// Pre-flights every distinct per-scheme geometry through the
    /// fallible constructors (timing controller and functional
    /// builder) without running anything, so a bad spec surfaces as a
    /// readable CLI error instead of a worker panic.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] any scheme's geometry
    /// produces.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let mut seen = std::collections::BTreeSet::new();
        for cell in self.cells() {
            // Geometry only varies by scheme; one representative
            // per scheme covers the grid.
            if seen.insert(cell.scheme.label()) {
                cell.validate()?;
            }
        }
        Ok(())
    }

    /// Expands the spec into every cell, scheme-major. Trials rotate
    /// through the three trigger forms so each matrix cell mixes
    /// touch-gated, cycle-gated and random injection timing.
    pub fn cells(&self) -> Vec<CellConfig> {
        let mut cells = Vec::new();
        for (si, &scheme) in self.schemes.iter().enumerate() {
            for (ai, &attack) in AttackClass::ALL.iter().enumerate() {
                for trial in 0..self.trials {
                    let trigger = match trial % 3 {
                        0 => Trigger::AfterTargetTouches { count: 1 },
                        1 => Trigger::AtCycle {
                            cycle: self.accesses * 75,
                        },
                        _ => Trigger::Random {
                            per_access_ppm: u32::try_from(2_000_000 / self.accesses)
                                .expect("quotient of 2e6 fits u32")
                                .max(1),
                        },
                    };
                    cells.push(CellConfig {
                        scheme,
                        attack,
                        trigger,
                        trial,
                        seed: cell_seed(self.seed, si, ai, trial),
                        data_bytes: self.data_bytes,
                        l2_bytes: self.l2_bytes,
                        line_bytes: self.line_bytes,
                        working_set: self.working_set,
                        accesses: self.accesses,
                        write_ratio_pct: self.write_ratio_pct,
                        capture_events: self.capture_events,
                        hash: self.hash,
                    });
                }
            }
        }
        cells
    }
}

/// Derives a well-mixed per-cell seed from the campaign seed and the
/// cell's coordinates (splitmix64-style finalizer, so neighbouring cells
/// get unrelated streams).
pub fn cell_seed(seed: u64, scheme_index: usize, attack_index: usize, trial: u32) -> u64 {
    let mut z = seed
        .wrapping_add((scheme_index as u64) << 40)
        .wrapping_add((attack_index as u64) << 20)
        .wrapping_add(trial as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scheme × attack entry of the coverage matrix, folded over all
/// trials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    /// Scheme under attack.
    pub scheme: Scheme,
    /// Attack class.
    pub attack: AttackClass,
    /// Whether the attack applies to the scheme at all.
    pub applicable: bool,
    /// Whether a correct checker must detect it.
    pub expected_detected: bool,
    /// Trials run.
    pub trials: u32,
    /// Trials whose injection was caught.
    pub detected: u32,
    /// Trials whose injection went uncaught.
    pub missed: u32,
    /// Alarms with no preceding injection.
    pub false_alarms: u32,
    /// Detections credited to the cycle-level checker.
    pub by_timing: u32,
    /// Detections credited to the functional engine.
    pub by_functional: u32,
    /// Detections credited to the end-of-run audit.
    pub by_audit: u32,
}

impl MatrixCell {
    /// `detected`/`missed`/`ok` verdict for the text report: a cell is
    /// bad when it missed an expected detection or raised a false alarm.
    pub fn verdict(&self) -> &'static str {
        if !self.applicable {
            "n/a"
        } else if self.false_alarms > 0 {
            "false-alarm"
        } else if self.expected_detected && self.missed > 0 {
            "MISSED"
        } else if self.expected_detected {
            "detected"
        } else if self.detected > 0 {
            // `base` somehow detecting, or a control cell detecting:
            // both impossible by construction, surfaced loudly.
            "unexpected"
        } else {
            "blind"
        }
    }
}

/// Detection-latency statistics for one scheme, folded over every
/// detected injection (any attack, any trial).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Scheme.
    pub scheme: Scheme,
    /// Number of detections the percentiles are computed over.
    pub detections: u64,
    /// Median injection-to-detection latency in cycles.
    pub p50: u64,
    /// 90th-percentile latency in cycles.
    pub p90: u64,
    /// 99th-percentile latency in cycles.
    pub p99: u64,
    /// Worst observed latency in cycles.
    pub max: u64,
    /// Mean latency in cycles.
    pub mean: f64,
    /// The sorted raw samples (feeds the registry histograms).
    pub samples: Vec<u64>,
}

/// Nearest-rank percentile of an ascending-sorted slice.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The aggregated result of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Scheme × attack coverage matrix, spec order.
    pub matrix: Vec<MatrixCell>,
    /// Per-scheme latency statistics (schemes with detections only).
    pub latency: Vec<LatencyStats>,
    /// Cells that actually ran (applicable ones).
    pub cells: u64,
    /// Injections caught, campaign-wide.
    pub detected: u64,
    /// Expected detections that were missed — a checker hole.
    pub missed_expected: u64,
    /// Alarms with no injection — a checker lie.
    pub false_alarms: u64,
}

impl CampaignReport {
    /// Folds cell outcomes into the matrix and latency tables. Iterates
    /// the spec's scheme × attack grid and *selects* matching outcomes,
    /// so outcome order (i.e. worker scheduling) cannot affect the
    /// report.
    pub fn from_outcomes(spec: &CampaignSpec, outcomes: &[CellOutcome]) -> Self {
        let mut matrix = Vec::new();
        let mut latency = Vec::new();
        let mut cells = 0u64;
        let mut detected = 0u64;
        let mut missed_expected = 0u64;
        let mut false_alarms = 0u64;

        for &scheme in &spec.schemes {
            let mut samples: Vec<u64> = Vec::new();
            for &attack in &AttackClass::ALL {
                let mut cell = MatrixCell {
                    scheme,
                    attack,
                    applicable: attack.applies_to(scheme),
                    expected_detected: attack.expected_detected(scheme),
                    trials: 0,
                    detected: 0,
                    missed: 0,
                    false_alarms: 0,
                    by_timing: 0,
                    by_functional: 0,
                    by_audit: 0,
                };
                let mut trials: Vec<&CellOutcome> = outcomes
                    .iter()
                    .filter(|o| o.scheme == scheme && o.attack == attack)
                    .collect();
                trials.sort_by_key(|o| o.trial);
                for out in trials {
                    cell.trials += 1;
                    if !out.applicable {
                        continue;
                    }
                    cells += 1;
                    if out.false_alarm {
                        cell.false_alarms += 1;
                        false_alarms += 1;
                    }
                    if out.injection.is_none() {
                        continue;
                    }
                    match out.detection {
                        Some(det) => {
                            cell.detected += 1;
                            detected += 1;
                            samples.push(det.latency);
                            match det.detector {
                                Detector::Timing => cell.by_timing += 1,
                                Detector::Functional => cell.by_functional += 1,
                                Detector::Audit => cell.by_audit += 1,
                            }
                        }
                        None => {
                            cell.missed += 1;
                            if cell.expected_detected {
                                missed_expected += 1;
                            }
                        }
                    }
                }
                matrix.push(cell);
            }
            if !samples.is_empty() {
                samples.sort_unstable();
                let sum: u64 = samples.iter().sum();
                latency.push(LatencyStats {
                    scheme,
                    detections: samples.len() as u64,
                    p50: percentile(&samples, 50.0),
                    p90: percentile(&samples, 90.0),
                    p99: percentile(&samples, 99.0),
                    max: samples.last().copied().unwrap_or(0),
                    mean: sum as f64 / samples.len() as f64,
                    samples,
                });
            }
        }

        CampaignReport {
            matrix,
            latency,
            cells,
            detected,
            missed_expected,
            false_alarms,
        }
    }

    /// Whether the campaign found no checker holes and no checker lies.
    pub fn clean(&self) -> bool {
        self.missed_expected == 0 && self.false_alarms == 0
    }

    /// Serialises the report as the documented `miv-attack-v1` schema.
    pub fn to_json(&self, spec: &CampaignSpec) -> JsonValue {
        let mut root = JsonValue::obj();
        root.push("schema", "miv-attack-v1");
        root.push("seed", spec.seed);
        root.push("trials", spec.trials);

        let mut config = JsonValue::obj();
        config.push("data_bytes", spec.data_bytes);
        config.push("l2_bytes", spec.l2_bytes);
        config.push("line_bytes", spec.line_bytes);
        config.push("working_set", spec.working_set);
        config.push("accesses", spec.accesses);
        config.push("write_ratio_pct", spec.write_ratio_pct);
        config.push("hash", spec.hash.label());
        root.push("config", config);

        let mut matrix = Vec::new();
        for cell in &self.matrix {
            let mut row = JsonValue::obj();
            row.push("scheme", cell.scheme.label());
            row.push("attack", cell.attack.label());
            row.push("applicable", cell.applicable);
            row.push("expected_detected", cell.expected_detected);
            row.push("trials", cell.trials);
            row.push("detected", cell.detected);
            row.push("missed", cell.missed);
            row.push("false_alarms", cell.false_alarms);
            let mut by = JsonValue::obj();
            by.push("timing", cell.by_timing);
            by.push("functional", cell.by_functional);
            by.push("audit", cell.by_audit);
            row.push("detectors", by);
            matrix.push(row);
        }
        root.push("matrix", JsonValue::Array(matrix));

        let mut latency = Vec::new();
        for stats in &self.latency {
            let mut row = JsonValue::obj();
            row.push("scheme", stats.scheme.label());
            row.push("detections", stats.detections);
            row.push("p50", stats.p50);
            row.push("p90", stats.p90);
            row.push("p99", stats.p99);
            row.push("max", stats.max);
            row.push("mean", stats.mean);
            latency.push(row);
        }
        root.push("latency", JsonValue::Array(latency));

        let mut summary = JsonValue::obj();
        summary.push("cells", self.cells);
        summary.push("detected", self.detected);
        summary.push("missed_expected", self.missed_expected);
        summary.push("false_alarms", self.false_alarms);
        root.push("summary", summary);
        root
    }

    /// Publishes the campaign's aggregate counters and per-scheme
    /// latency histograms into `registry` (`attack.*` namespace), for
    /// the shared `miv-metrics-v1` export path.
    pub fn record_into(&self, registry: &Registry) {
        registry.counter("attack.cells").add(self.cells);
        registry.counter("attack.detected").add(self.detected);
        registry.counter("attack.missed").add(self.missed_expected);
        registry
            .counter("attack.false_alarms")
            .add(self.false_alarms);
        for stats in &self.latency {
            let hist = registry.histogram(&format!("attack.latency.{}", stats.scheme.label()));
            for &sample in &stats.samples {
                hist.record(sample);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::run_cell;

    #[test]
    fn quick_spec_expands_to_the_full_grid() {
        let spec = CampaignSpec::quick(7);
        let cells = spec.cells();
        assert_eq!(
            cells.len(),
            Scheme::ALL.len() * AttackClass::ALL.len() * spec.trials as usize
        );
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len(), "cell seeds must be distinct");
        for cell in &cells {
            let expected = ["after-touches", "at-cycle", "random"][cell.trial as usize % 3];
            assert_eq!(cell.trigger.label(), expected);
        }
    }

    #[test]
    fn report_is_order_independent() {
        let spec = CampaignSpec {
            trials: 1,
            schemes: vec![Scheme::Base, Scheme::CHash],
            accesses: 600,
            data_bytes: 128 << 10,
            l2_bytes: 16 << 10,
            working_set: 64 << 10,
            ..CampaignSpec::quick(3)
        };
        let outcomes: Vec<_> = spec.cells().iter().map(run_cell).collect();
        let forward = CampaignReport::from_outcomes(&spec, &outcomes);
        let reversed: Vec<_> = outcomes.iter().rev().cloned().collect();
        let backward = CampaignReport::from_outcomes(&spec, &reversed);
        assert_eq!(forward, backward);
        assert_eq!(forward.missed_expected, 0, "chash must catch everything");
        assert_eq!(forward.false_alarms, 0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 90.0), 90);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[42], 99.0), 42);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn json_export_carries_the_schema_tag() {
        let spec = CampaignSpec {
            trials: 1,
            schemes: vec![Scheme::Naive],
            accesses: 600,
            data_bytes: 128 << 10,
            l2_bytes: 16 << 10,
            working_set: 64 << 10,
            ..CampaignSpec::quick(11)
        };
        let outcomes: Vec<_> = spec.cells().iter().map(run_cell).collect();
        let report = CampaignReport::from_outcomes(&spec, &outcomes);
        let json = report.to_json(&spec);
        let text = json.render_pretty();
        assert!(text.contains("\"schema\": \"miv-attack-v1\""));
        assert!(text.contains("\"matrix\""));
        assert!(text.contains("\"latency\""));
        let parsed = JsonValue::parse(&text).expect("round-trips");
        assert_eq!(
            parsed.get("summary").and_then(|s| s.get("false_alarms")),
            Some(&JsonValue::UInt(0))
        );
    }

    #[test]
    fn registry_receives_counters_and_histograms() {
        let spec = CampaignSpec {
            trials: 1,
            schemes: vec![Scheme::CHash],
            accesses: 600,
            data_bytes: 128 << 10,
            l2_bytes: 16 << 10,
            working_set: 64 << 10,
            ..CampaignSpec::quick(5)
        };
        let outcomes: Vec<_> = spec.cells().iter().map(run_cell).collect();
        let report = CampaignReport::from_outcomes(&spec, &outcomes);
        let registry = Registry::new();
        report.record_into(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("attack.cells"), Some(&report.cells));
        assert_eq!(snap.counters.get("attack.missed"), Some(&0));
        assert!(snap.histograms.contains_key("attack.latency.chash"));
        assert!(report.detected > 0);
    }
}
