//! One campaign cell: a single scheme × attack × trial simulation.
//!
//! A cell drives *both* halves of the checker against the same scripted
//! attack: the cycle-level [`L2Controller`] (which carries no bytes and
//! tracks corruption as taint, giving detection *cycles*) and the
//! functional [`VerifiedMemory`] (real bytes, real digests/MACs, real
//! [`IntegrityError`](miv_core::IntegrityError)s, giving detection
//! ground truth). A detection by either counts; when both fire, the
//! cycle-level checker's verify-completion cycle is reported — it is
//! the half with a timing model — and the functional detection stands
//! in when the taint machinery missed.
//! Cells that reach the end of their access stream undetected run a
//! final audit (cache flush + full tree verification) so cache-masked
//! corruption is still accounted for — with an honest `Audit` label and
//! an end-of-run latency.
//!
//! Everything is deterministic given the [`CellConfig`]: the access
//! stream, the injection trigger, and the attack's target all come from
//! seeded xoshiro streams, so a campaign's merged output is identical at
//! any worker count.

use miv_cache::CacheConfig;
use miv_core::adversary::{parent_slot_addr, timestamp_byte_addr};
use miv_core::engine::{MemoryBuilder, Protection, VerifiedMemory};
use miv_core::timing::{CheckerConfig, L2Controller};
use miv_core::{ConfigError, Scheme, TamperKind};
use miv_hash::HashAlgo;
use miv_mem::MemoryBusConfig;
use miv_obs::{EventTrace, EventTraceSnapshot, Registry, Rng, SpanTracer};

use crate::attack::{AttackClass, Trigger};

/// Everything one cell needs: plain data, `Send`, fully determining the
/// [`CellOutcome`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellConfig {
    /// Verification scheme under attack.
    pub scheme: Scheme,
    /// Attack class to mount.
    pub attack: AttackClass,
    /// When the injection fires.
    pub trigger: Trigger,
    /// Trial index within the campaign (varies the trigger and streams).
    pub trial: u32,
    /// Seed for this cell's PRNG streams.
    pub seed: u64,
    /// Protected data segment size in bytes.
    pub data_bytes: u64,
    /// L2 capacity in bytes (also sizes the functional trusted cache).
    pub l2_bytes: u64,
    /// Cache line / tree block size in bytes.
    pub line_bytes: u32,
    /// Span of the synthetic access stream in bytes.
    pub working_set: u64,
    /// Accesses issued after the injection window opens.
    pub accesses: u64,
    /// Store fraction of the stream, in percent.
    pub write_ratio_pct: u32,
    /// Capture an event-trace snapshot (`integrity_violation` rows show
    /// up in `--trace-events`).
    pub capture_events: bool,
    /// Hash unit for the functional engine (timing is unaffected).
    pub hash: HashAlgo,
}

impl CellConfig {
    /// Chunk size for the scheme: one block for `naive`/`chash`, two for
    /// the multi-block schemes.
    pub fn chunk_bytes(&self) -> u32 {
        match self.scheme {
            Scheme::MHash | Scheme::IHash => self.line_bytes * 2,
            Scheme::Base | Scheme::Naive | Scheme::CHash => self.line_bytes,
        }
    }

    /// Pre-flights the cell's geometry through both fallible
    /// constructors — the cycle-level controller and the functional
    /// builder — without building either simulation. This is the check
    /// [`run_cell`] relies on having passed: a cell dispatched to a
    /// worker after `validate` succeeds cannot panic on geometry.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] either constructor would raise.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let mut checker = CheckerConfig::hpca03(self.scheme);
        checker.protected_bytes = self.data_bytes;
        checker.chunk_bytes = self.chunk_bytes();
        L2Controller::try_new(
            checker,
            CacheConfig::l2(self.l2_bytes, self.line_bytes),
            MemoryBusConfig::default(),
        )?;
        if self.scheme.verifies() {
            self.memory_builder().validate()?;
        }
        Ok(())
    }

    /// The functional-engine builder for this cell (initial contents
    /// are filled in by the runner).
    fn memory_builder(&self) -> MemoryBuilder {
        MemoryBuilder::new()
            .data_bytes(self.data_bytes)
            .chunk_bytes(self.chunk_bytes())
            .block_bytes(self.line_bytes)
            .protection(match self.scheme {
                Scheme::IHash => Protection::IncrementalMac,
                Scheme::Base | Scheme::Naive | Scheme::CHash | Scheme::MHash => {
                    Protection::HashTree
                }
            })
            .hasher(self.hash.hasher())
            .cache_blocks((self.l2_bytes / self.line_bytes as u64) as usize)
    }
}

/// Which half of the checker raised the alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// The cycle-level checker: a background verification covered a
    /// tainted block.
    Timing,
    /// The functional engine: a read/write returned an `IntegrityError`
    /// during the access stream and the cycle-level checker never
    /// fired.
    Functional,
    /// The end-of-run audit (cache flush + full verification) — the
    /// corruption was cache-masked for the whole stream.
    Audit,
}

impl Detector {
    /// Stable label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Detector::Timing => "timing",
            Detector::Functional => "functional",
            Detector::Audit => "audit",
        }
    }
}

/// Where and when the corruption landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Access index at which the attack fired.
    pub access: u64,
    /// Simulation cycle at which the attack fired.
    pub cycle: u64,
    /// Physical address of the corrupted bytes.
    pub addr: u64,
}

/// Whether, when and where the violation was caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Simulation cycle of the failing check.
    pub cycle: u64,
    /// Chunk whose check failed.
    pub chunk: u64,
    /// Which detector fired first.
    pub detector: Detector,
    /// Cycles from injection to detection.
    pub latency: u64,
}

/// The full result of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Scheme the cell ran.
    pub scheme: Scheme,
    /// Attack the cell mounted.
    pub attack: AttackClass,
    /// Trial index.
    pub trial: u32,
    /// `false` when the attack does not apply to the scheme (e.g. a
    /// timestamp flip without an incremental MAC) — nothing ran.
    pub applicable: bool,
    /// The injection, when one fired.
    pub injection: Option<Injection>,
    /// The first detection, when any detector fired after injection.
    pub detection: Option<Detection>,
    /// A detection with *no* preceding injection (control cells, or a
    /// premature alarm in an attack cell) — always a checker bug.
    pub false_alarm: bool,
    /// Event-trace snapshot when [`CellConfig::capture_events`] was set.
    pub events: Option<EventTraceSnapshot>,
}

impl CellOutcome {
    /// Whether the cell's violation was caught.
    pub fn detected(&self) -> bool {
        self.detection.is_some()
    }

    /// Whether a correct checker had to catch it.
    pub fn expected_detected(&self) -> bool {
        self.attack.expected_detected(self.scheme)
    }
}

/// Runs one cell to completion.
pub fn run_cell(cfg: &CellConfig) -> CellOutcome {
    run_cell_traced(cfg, &SpanTracer::disabled())
}

/// Runs one cell with a cycle-attribution tracer attached. The timing
/// controller books every core-visible cycle of the cell's access
/// stream under its access-class roots (`hit` / `clean_miss` /
/// `verified_miss` / `flush`), and the detection path adds spans under
/// a `detect` root: one `detect;<detector>` leaf per caught violation
/// whose cycles are the injection-to-detection latency, plus a
/// `detect;undetected` count for violations no detector caught. Control
/// cells (no injection) book nothing under `detect`.
pub fn run_cell_traced(cfg: &CellConfig, spans: &SpanTracer) -> CellOutcome {
    let mut outcome = CellOutcome {
        scheme: cfg.scheme,
        attack: cfg.attack,
        trial: cfg.trial,
        applicable: cfg.attack.applies_to(cfg.scheme),
        injection: None,
        detection: None,
        false_alarm: false,
        events: None,
    };
    if !outcome.applicable {
        return outcome;
    }

    let line = cfg.line_bytes as u64;
    let mut checker = CheckerConfig::hpca03(cfg.scheme);
    checker.protected_bytes = cfg.data_bytes;
    checker.chunk_bytes = cfg.chunk_bytes();
    let mut ctl = L2Controller::try_new(
        checker,
        CacheConfig::l2(cfg.l2_bytes, cfg.line_bytes),
        MemoryBusConfig::default(),
    )
    .expect("campaign spec validated before dispatch");
    ctl.attach_spans(spans);

    // Functional ground truth (absent under `base`, which stores no tree
    // and can't verify anything). Random initial contents make splice
    // and replay effective: distinct blocks hold distinct bytes.
    let mut init_rng = Rng::seed_from_u64(cfg.seed ^ 0x0121_71A1);
    let mut vm = cfg.scheme.verifies().then(|| {
        let mut init = vec![0u8; cfg.data_bytes as usize];
        init_rng.fill_bytes(&mut init);
        cfg.memory_builder()
            .initial_data(init)
            .try_build()
            .expect("campaign spec validated before dispatch")
    });

    let registry = Registry::new();
    let trace = cfg.capture_events.then(|| EventTrace::bounded(8192));
    if let Some(trace) = &trace {
        ctl.attach_observability(&registry, trace.sink());
        if let Some(vm) = &mut vm {
            vm.attach_observability(&registry, trace.sink());
        }
    }

    let mut access_rng = Rng::seed_from_u64(cfg.seed);
    let mut attack_rng = Rng::seed_from_u64(cfg.seed ^ 0xA77A_C4ED);
    let blocks_in_ws = (cfg.working_set / line).max(1);
    let target = attack_rng.gen_range_u64(0, blocks_in_ws) * line;

    let mut now: u64 = 0;
    let mut touches: u64 = 0;
    let mut poisoned = false;
    let mut functional: Option<Detection> = None;
    // Never finish an attack cell with the injection still pending: fire
    // unconditionally once three quarters of the stream have run.
    let force_at = cfg.accesses - cfg.accesses / 4;
    let mut buf = vec![0u8; cfg.line_bytes as usize];
    let mut wbuf = vec![0u8; cfg.line_bytes as usize - 16];

    for i in 0..cfg.accesses {
        if outcome.injection.is_none()
            && cfg.attack.is_injection()
            && (i >= force_at || cfg.trigger.should_fire(now, touches, &mut attack_rng))
        {
            let addr = apply_attack(
                cfg,
                &mut ctl,
                vm.as_mut(),
                target,
                &mut attack_rng,
                &mut now,
            );
            outcome.injection = Some(Injection {
                access: i,
                cycle: now,
                addr,
            });
        }
        let addr = access_rng.gen_range_u64(0, blocks_in_ws) * line;
        if addr == target {
            touches += 1;
        }
        let write = access_rng.gen_bool(cfg.write_ratio_pct as f64 / 100.0);
        now = ctl.access(now, addr, write, false);
        if let Some(vm) = vm.as_mut() {
            if !poisoned {
                let result = if write {
                    // Partial-line stores (matching `full_line: false` on
                    // the timing side): the engine must fetch and check
                    // the old block, so a store to a corrupted block is a
                    // detection, not a silent §5.3 alloc-no-fetch heal.
                    access_rng.fill_bytes(&mut wbuf);
                    vm.write(addr + 8, &wbuf)
                } else {
                    vm.read(addr, &mut buf)
                };
                if let Err(e) = result {
                    // The engine is poisoned from here on (§5.8 abort
                    // semantics): stop issuing functional operations.
                    poisoned = true;
                    match outcome.injection {
                        None => outcome.false_alarm = true,
                        Some(inj) => {
                            functional = Some(Detection {
                                cycle: now,
                                chunk: e.chunk(),
                                detector: Detector::Functional,
                                latency: now.saturating_sub(inj.cycle),
                            });
                        }
                    }
                }
            }
        }
    }

    match outcome.injection {
        Some(inj) => {
            // Merge the detectors. The cycle-level checker wins when it
            // fired: its cycle is when the failing check actually
            // *completes* in the modelled hardware, which is the latency
            // the paper cares about. The functional engine (stamped with
            // the access-return cycle — it has no timing model of its
            // own) covers the cells the taint machinery missed.
            let timing = ctl.first_detection().map(|d| Detection {
                cycle: d.cycle,
                chunk: d.chunk,
                detector: Detector::Timing,
                latency: d.cycle.saturating_sub(inj.cycle),
            });
            outcome.detection = timing.or(functional);
            if outcome.detection.is_none() {
                if let Some(vm) = vm.as_mut() {
                    // Final audit: drop every cached copy, then verify
                    // the whole tree against the secure root.
                    let audit_cycle = now.max(ctl.verification_horizon());
                    if let Err(e) = vm.clear_cache().and_then(|()| vm.verify_all()) {
                        outcome.detection = Some(Detection {
                            cycle: audit_cycle,
                            chunk: e.chunk(),
                            detector: Detector::Audit,
                            latency: audit_cycle.saturating_sub(inj.cycle),
                        });
                    }
                }
            }
        }
        None => {
            // Control cell (or an attack whose trigger never fired,
            // which the force-fire guard rules out): any alarm from any
            // detector — including the end-of-run audit — is false.
            if ctl.first_detection().is_some() {
                outcome.false_alarm = true;
            }
            if let Some(vm) = vm.as_mut() {
                if !poisoned && vm.clear_cache().and_then(|()| vm.verify_all()).is_err() {
                    outcome.false_alarm = true;
                }
            }
        }
    }

    match (outcome.injection, outcome.detection) {
        (Some(_), Some(det)) => {
            spans.attribute_path(&["detect", det.detector.label()], det.latency);
        }
        (Some(_), None) => spans.attribute_path(&["detect", "undetected"], 0),
        _ => {}
    }
    outcome.events = trace.map(|t| t.snapshot());
    outcome
}

/// Applies the attack to both halves of the checker and returns the
/// corrupted physical address. `now` advances only for attacks that
/// piggyback on program activity (replay issues the program's update
/// store before restoring the stale bytes).
fn apply_attack(
    cfg: &CellConfig,
    ctl: &mut L2Controller,
    mut vm: Option<&mut VerifiedMemory>,
    target: u64,
    rng: &mut Rng,
    now: &mut u64,
) -> u64 {
    let line = cfg.line_bytes as u64;
    let len = cfg.line_bytes as usize;
    // Quiesce both halves first: write every dirty block back and drop
    // the on-chip copies, so the injection lands on the real memory
    // image with nothing left to mask it (a tamper under a cached copy
    // is invisible by construction — the processor never reads the
    // corrupted location). The timing L2 is quiesced too, so the
    // cycle-level checker gets to race the functional engine for the
    // detection instead of serving post-injection hits from residency.
    if let Some(vm) = vm.as_mut() {
        let _ = vm.clear_cache();
    }
    *now = ctl.quiesce(*now);
    // `base` has no layout: data addresses are physical addresses.
    let phys_of = |data: u64| match ctl.layout() {
        Some(layout) => layout.data_phys_addr(data),
        None => data,
    };
    match cfg.attack {
        AttackClass::Control => unreachable!("control cells never inject"),
        AttackClass::DataBitFlip => {
            let phys = phys_of(target) + rng.gen_range_u64(0, line);
            let bit = rng.gen_u8() % 8;
            if let Some(vm) = vm.as_mut() {
                vm.adversary().tamper(phys, TamperKind::BitFlip { bit });
            }
            ctl.inject_tamper(phys, 1);
            phys
        }
        AttackClass::BlockReplace => {
            let phys = phys_of(target);
            if let Some(vm) = vm.as_mut() {
                let mut adv = vm.adversary();
                let old = adv.observe(phys, len);
                let mut data = vec![0u8; len];
                rng.fill_bytes(&mut data);
                if data == old {
                    data[0] ^= 1;
                }
                adv.tamper(phys, TamperKind::Replace { data });
            }
            ctl.inject_tamper(phys, line);
            phys
        }
        AttackClass::Splice => {
            let blocks_in_ws = (cfg.working_set / line).max(2);
            let other =
                (target / line + 1 + rng.gen_range_u64(0, blocks_in_ws - 1)) % blocks_in_ws * line;
            let dst = phys_of(target);
            let src = phys_of(other);
            if let Some(vm) = vm.as_mut() {
                let mut adv = vm.adversary();
                if adv.observe(src, len) == adv.observe(dst, len) {
                    // Identical blocks make relocation benign; degrade to
                    // a flip so the cell still injects a real violation.
                    adv.tamper(dst, TamperKind::BitFlip { bit: 0 });
                } else {
                    adv.tamper(dst, TamperKind::CopyFrom { src, len });
                }
            }
            ctl.inject_tamper(dst, line);
            dst
        }
        AttackClass::Replay => {
            let phys = phys_of(target);
            if let Some(vm) = vm.as_mut() {
                // Capture a *valid* memory state, let the program update
                // it (tree and all), then restore the stale bytes.
                let _ = vm.flush();
                let snap = vm.adversary().snapshot(phys, len);
                let mut fresh = vec![0u8; len];
                rng.fill_bytes(&mut fresh);
                let _ = vm.write(target, &fresh);
                let _ = vm.flush();
                vm.adversary().replay(&snap);
                // The update left a (clean, fresh) cached copy of the
                // target; drop it so the stale bytes are what the next
                // fetch actually sees.
                let _ = vm.clear_cache();
            }
            // Timing side: the program's update store, then a second
            // quiesce to drop the fresh line (mirroring the functional
            // `clear_cache` above), then the taint.
            *now = ctl.access(*now, target, true, false);
            *now = ctl.quiesce(*now);
            ctl.inject_tamper(phys, line);
            phys
        }
        AttackClass::HashNodeCorrupt => {
            let layout = *ctl.layout().expect("metadata attacks need a tree");
            let chunk = layout.data_chunk_for(target);
            let slot =
                parent_slot_addr(&layout, chunk).expect("data chunks have in-memory parents");
            let byte = slot + rng.gen_range_u64(0, 15);
            let bit = rng.gen_u8() % 8;
            if let Some(vm) = vm.as_mut() {
                vm.adversary().tamper(byte, TamperKind::HashNode { bit });
            }
            ctl.inject_tamper(byte, 1);
            byte
        }
        AttackClass::RootSwap => {
            let layout = *ctl.layout().expect("metadata attacks need a tree");
            // Two children of the secure root: each was valid in place,
            // neither is valid in the other's position.
            let a = layout.chunk_addr(0);
            let b = layout.chunk_addr(1.min(layout.total_chunks() - 1));
            if let Some(vm) = vm.as_mut() {
                let mut adv = vm.adversary();
                if a == b || adv.observe(src_block(a), len) == adv.observe(src_block(b), len) {
                    adv.tamper(a, TamperKind::BitFlip { bit: 0 });
                } else {
                    adv.tamper(a, TamperKind::CopyFrom { src: b, len });
                }
            }
            ctl.inject_tamper(a, line);
            a
        }
        AttackClass::TimestampFlip => {
            let layout = *ctl.layout().expect("timestamp attacks need a tree");
            let chunk = layout.data_chunk_for(target);
            let ts = timestamp_byte_addr(&layout, chunk).expect("in-memory parent slot");
            let bit = u8::try_from(u32::from(rng.gen_u8()) % layout.blocks_per_chunk())
                .expect("blocks_per_chunk fits u8");
            if let Some(vm) = vm.as_mut() {
                vm.adversary().tamper(ts, TamperKind::BitFlip { bit });
            }
            ctl.inject_tamper(ts, 1);
            ts
        }
    }
}

/// Identity helper naming the intent at the call site.
fn src_block(chunk_addr: u64) -> u64 {
    chunk_addr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(scheme: Scheme, attack: AttackClass) -> CellConfig {
        CellConfig {
            scheme,
            attack,
            trigger: Trigger::AfterTargetTouches { count: 1 },
            trial: 0,
            seed: 0xBEEF,
            data_bytes: 128 << 10,
            l2_bytes: 16 << 10,
            line_bytes: 64,
            working_set: 64 << 10,
            accesses: 800,
            write_ratio_pct: 30,
            capture_events: false,
            hash: HashAlgo::Md5,
        }
    }

    #[test]
    fn every_tree_scheme_detects_a_bit_flip() {
        for scheme in [Scheme::Naive, Scheme::CHash, Scheme::MHash, Scheme::IHash] {
            let out = run_cell(&quick_cfg(scheme, AttackClass::DataBitFlip));
            assert!(out.applicable);
            let inj = out.injection.expect("attack fired");
            let det = out
                .detection
                .unwrap_or_else(|| panic!("{scheme} missed a bit flip"));
            assert!(det.cycle >= inj.cycle);
            assert_eq!(det.latency, det.cycle - inj.cycle);
            assert!(!out.false_alarm);
        }
    }

    #[test]
    fn every_hash_unit_detects_a_bit_flip() {
        for hash in HashAlgo::ALL {
            let cfg = CellConfig {
                hash,
                ..quick_cfg(Scheme::CHash, AttackClass::DataBitFlip)
            };
            let out = run_cell(&cfg);
            assert!(
                out.detection.is_some(),
                "chash/{} missed a bit flip",
                hash.label()
            );
            assert!(!out.false_alarm);
        }
    }

    #[test]
    fn cell_validate_rejects_single_block_mhash_geometry() {
        // Force the bad geometry directly (the spec-level derivation
        // can't produce it): mhash with chunk == line must be a
        // ConfigError, never a panic.
        let cfg = quick_cfg(Scheme::MHash, AttackClass::DataBitFlip);
        assert!(cfg.validate().is_ok(), "derived geometry is valid");
        let mut checker = CheckerConfig::hpca03(Scheme::MHash);
        checker.protected_bytes = cfg.data_bytes;
        checker.chunk_bytes = cfg.line_bytes; // single-block chunk
        let err = L2Controller::try_new(
            checker,
            CacheConfig::l2(cfg.l2_bytes, cfg.line_bytes),
            MemoryBusConfig::default(),
        )
        .expect_err("single-block mhash chunk must be rejected");
        assert!(matches!(err, ConfigError::SingleBlockChunk { .. }), "{err}");
    }

    #[test]
    fn traced_cells_attribute_detection_latency() {
        let cfg = quick_cfg(Scheme::CHash, AttackClass::DataBitFlip);
        let spans = SpanTracer::enabled();
        let traced = run_cell_traced(&cfg, &spans);
        let det = traced.detection.expect("CHash catches a bit flip");
        let snap = spans.snapshot();
        let path = vec!["detect".to_string(), det.detector.label().to_string()];
        let leaf = snap
            .spans
            .iter()
            .find(|s| s.path == path)
            .expect("detect span recorded");
        assert_eq!(leaf.cycles, det.latency);
        assert_eq!(leaf.count, 1);
        assert!(
            snap.total_cycles() > snap.cycles_under("detect"),
            "access stream cycles were attributed too"
        );
        assert_eq!(
            run_cell(&cfg),
            traced,
            "tracing must not perturb the simulation"
        );
        let control = SpanTracer::enabled();
        run_cell_traced(&quick_cfg(Scheme::CHash, AttackClass::Control), &control);
        assert_eq!(control.snapshot().cycles_under("detect"), 0);
        let missed = SpanTracer::enabled();
        run_cell_traced(&quick_cfg(Scheme::Base, AttackClass::DataBitFlip), &missed);
        let snap = missed.snapshot();
        let undetected = vec!["detect".to_string(), "undetected".to_string()];
        assert!(snap
            .spans
            .iter()
            .any(|s| s.path == undetected && s.count == 1));
    }

    #[test]
    fn base_misses_everything_and_controls_stay_silent() {
        let out = run_cell(&quick_cfg(Scheme::Base, AttackClass::DataBitFlip));
        assert!(out.applicable);
        assert!(out.injection.is_some());
        assert!(out.detection.is_none(), "base cannot detect");
        assert!(!out.false_alarm);
        for scheme in Scheme::ALL {
            let out = run_cell(&quick_cfg(scheme, AttackClass::Control));
            assert!(out.injection.is_none());
            assert!(out.detection.is_none());
            assert!(!out.false_alarm, "{scheme} raised a false alarm");
        }
    }

    #[test]
    fn inapplicable_cells_do_not_run() {
        let out = run_cell(&quick_cfg(Scheme::CHash, AttackClass::TimestampFlip));
        assert!(!out.applicable);
        assert!(out.injection.is_none() && out.detection.is_none());
    }

    #[test]
    fn cells_are_deterministic() {
        let cfg = quick_cfg(Scheme::MHash, AttackClass::Replay);
        let a = run_cell(&cfg);
        let b = run_cell(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn replay_and_metadata_attacks_are_caught() {
        for attack in [
            AttackClass::Replay,
            AttackClass::HashNodeCorrupt,
            AttackClass::RootSwap,
            AttackClass::Splice,
        ] {
            let out = run_cell(&quick_cfg(Scheme::CHash, attack));
            assert!(
                out.detection.is_some(),
                "chash missed {attack} (injection: {:?})",
                out.injection
            );
        }
        let out = run_cell(&quick_cfg(Scheme::IHash, AttackClass::TimestampFlip));
        assert!(out.detection.is_some(), "ihash missed the timestamp flip");
    }

    #[test]
    fn event_capture_includes_violations() {
        let mut cfg = quick_cfg(Scheme::CHash, AttackClass::DataBitFlip);
        cfg.capture_events = true;
        let out = run_cell(&cfg);
        let events = out.events.expect("captured");
        assert!(events.recorded > 0);
        if out
            .detection
            .is_some_and(|d| d.detector == Detector::Timing)
        {
            assert!(
                events
                    .records
                    .iter()
                    .any(|r| r.event.kind() == "integrity_violation"),
                "timing detections must appear in the event trace"
            );
        }
    }
}
