//! The hash-tree memory layout (§5.5, "Simplified Memory Organization").
//!
//! The protected memory is one contiguous segment divided into equal-sized
//! **chunks** — the unit hashes are computed over. Chunks are numbered
//! from zero; a chunk's number times the chunk size is its address. The
//! tree structure is implicit in the numbering:
//!
//! * `parent(i) = i / m − 1` (integer division); a negative result means
//!   the chunk's hash lives in on-chip **secure memory**;
//! * the remainder `i mod m` is the index of the chunk's hash within its
//!   parent chunk;
//! * chunk `p`'s children are `m(p+1) … m(p+1)+m−1`.
//!
//! With `T` total chunks this makes chunks `[0, H)` hash chunks and
//! `[H, T)` data chunks (the leaves, which are contiguous as the paper
//! notes), where `H = (T−1) / m`. The tree is an almost-balanced m-ary
//! tree; the arity is the chunk size divided by the 16-byte digest size,
//! so 64-byte chunks give a 4-ary tree in which hashes cost 1/3 of the
//! data size, stored as ≈ H/D ≈ 1/(m−1) extra chunks.
//!
//! A chunk may span several **cache blocks** (`blocks_per_chunk` > 1 for
//! the *mhash*/*ihash* schemes); the layout exposes both granularities.

use std::fmt;

use miv_hash::digest::DIGEST_BYTES;

use crate::error::ConfigError;

/// Where a chunk's hash is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParentRef {
    /// In on-chip secure memory, at the given digest slot (top-level
    /// chunks `0 … m−1`).
    Secure {
        /// Digest slot within secure memory.
        index: u32,
    },
    /// In another chunk of untrusted memory.
    Chunk {
        /// The parent chunk's number.
        chunk: u64,
        /// Digest slot within the parent chunk.
        index: u32,
    },
}

/// The static geometry of a protected memory segment and its hash tree.
///
/// # Examples
///
/// ```
/// use miv_core::layout::{ParentRef, TreeLayout};
///
/// // 4 KiB of data, 64-byte chunks, one block per chunk: a 4-ary tree.
/// let l = TreeLayout::new(4096, 64, 64);
/// assert_eq!(l.arity(), 4);
/// assert_eq!(l.data_chunks(), 64);
/// let leaf = l.data_chunk_for(0);
/// assert!(l.is_data_chunk(leaf));
/// match l.parent(leaf) {
///     ParentRef::Chunk { chunk, .. } => assert!(l.is_hash_chunk(chunk)),
///     ParentRef::Secure { .. } => unreachable!("tree has internal levels"),
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeLayout {
    chunk_bytes: u32,
    block_bytes: u32,
    arity: u32,
    total_chunks: u64,
    hash_chunks: u64,
    data_bytes: u64,
}

impl TreeLayout {
    /// Builds the layout protecting `data_bytes` of program data.
    ///
    /// `chunk_bytes` is the hashing unit; `block_bytes` the cache-block
    /// size. One chunk spans `chunk_bytes / block_bytes` blocks (the
    /// *chash* scheme uses 1, *mhash*/*ihash* use 2 or more).
    ///
    /// # Panics
    ///
    /// Panics if the sizes are not powers of two, if `block_bytes` does
    /// not divide `chunk_bytes`, if the arity would be less than 2, or if
    /// `data_bytes` is zero. Fallible callers (anything validating a
    /// user-supplied spec) use [`try_new`](Self::try_new) instead.
    pub fn new(data_bytes: u64, chunk_bytes: u32, block_bytes: u32) -> Self {
        Self::try_new(data_bytes, chunk_bytes, block_bytes).expect("documented invariant")
    }

    /// The fallible form of [`new`](Self::new): returns a
    /// [`ConfigError`] instead of panicking on inconsistent geometry.
    pub fn try_new(
        data_bytes: u64,
        chunk_bytes: u32,
        block_bytes: u32,
    ) -> Result<Self, ConfigError> {
        if data_bytes == 0 {
            return Err(ConfigError::EmptySegment);
        }
        if !chunk_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "chunk",
                bytes: chunk_bytes as u64,
            });
        }
        if !block_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "block",
                bytes: block_bytes as u64,
            });
        }
        if !chunk_bytes.is_multiple_of(block_bytes) || chunk_bytes < block_bytes {
            return Err(ConfigError::ChunkNotBlockMultiple {
                chunk_bytes,
                block_bytes,
            });
        }
        let arity = chunk_bytes / DIGEST_BYTES as u32;
        if arity < 2 {
            return Err(ConfigError::ArityTooSmall { chunk_bytes });
        }

        let data_chunks = data_bytes.div_ceil(chunk_bytes as u64);
        let m = arity as u64;
        // Smallest T with T − (T−1)/m ≥ D (monotone, so iterate).
        let mut total = data_chunks;
        loop {
            let hash = (total - 1) / m;
            if total - hash >= data_chunks {
                break;
            }
            total = data_chunks + hash;
        }
        let hash_chunks = (total - 1) / m;
        Ok(TreeLayout {
            chunk_bytes,
            block_bytes,
            arity,
            total_chunks: total,
            hash_chunks,
            data_bytes,
        })
    }

    /// Chunk size in bytes (the hashing unit).
    pub fn chunk_bytes(&self) -> u32 {
        self.chunk_bytes
    }

    /// Cache-block size in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Blocks per chunk (1 for *chash*, ≥ 2 for *mhash*/*ihash*).
    pub fn blocks_per_chunk(&self) -> u32 {
        self.chunk_bytes / self.block_bytes
    }

    /// Tree arity `m` (digests per chunk).
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Number of protected data bytes requested.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Total chunks in the physical segment (hash + data).
    pub fn total_chunks(&self) -> u64 {
        self.total_chunks
    }

    /// Number of hash chunks (`[0, H)`).
    pub fn hash_chunks(&self) -> u64 {
        self.hash_chunks
    }

    /// Number of data chunks (the leaves, `[H, T)`).
    pub fn data_chunks(&self) -> u64 {
        self.total_chunks - self.hash_chunks
    }

    /// Size of the whole physical segment in bytes.
    pub fn physical_bytes(&self) -> u64 {
        self.total_chunks * self.chunk_bytes as u64
    }

    /// Memory overhead of the tree: hash bytes per data byte.
    pub fn overhead(&self) -> f64 {
        self.hash_chunks as f64 / self.data_chunks() as f64
    }

    /// Returns `true` if `chunk` holds hashes.
    pub fn is_hash_chunk(&self, chunk: u64) -> bool {
        chunk < self.hash_chunks
    }

    /// Returns `true` if `chunk` holds program data.
    pub fn is_data_chunk(&self, chunk: u64) -> bool {
        chunk >= self.hash_chunks && chunk < self.total_chunks
    }

    /// Where `chunk`'s hash is stored (§5.5 parent rule).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn parent(&self, chunk: u64) -> ParentRef {
        assert!(chunk < self.total_chunks, "chunk {chunk} out of range");
        let m = self.arity as u64;
        let index = u32::try_from(chunk % m).expect("index < arity");
        if chunk < m {
            ParentRef::Secure { index }
        } else {
            ParentRef::Chunk {
                chunk: chunk / m - 1,
                index,
            }
        }
    }

    /// The children of `chunk` (empty for leaves).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn children(&self, chunk: u64) -> std::ops::Range<u64> {
        assert!(chunk < self.total_chunks, "chunk {chunk} out of range");
        let m = self.arity as u64;
        let first = m * (chunk + 1);
        let last = (first + m).min(self.total_chunks);
        first.min(self.total_chunks)..last
    }

    /// Number of tree levels between `chunk` and secure memory: 0 for a
    /// top-level chunk (hash directly in secure memory).
    pub fn depth(&self, chunk: u64) -> u32 {
        let mut depth = 0;
        let mut c = chunk;
        while let ParentRef::Chunk { chunk: p, .. } = self.parent(c) {
            c = p;
            depth += 1;
        }
        depth
    }

    /// Depth of the deepest data chunk — the worst-case number of hash
    /// reads per access in the naive scheme is `levels() + 1`.
    pub fn levels(&self) -> u32 {
        self.depth(self.total_chunks - 1)
    }

    /// The tree's levels as contiguous chunk-index ranges, top (depth 0,
    /// starting at chunk 0) to bottom.
    ///
    /// The implicit heap numbering makes each level contiguous: level 0
    /// is `[0, m)` and the children of a range `[s, e)` are
    /// `[m·(s+1), m·(e+1))`, clipped to the segment. Every chunk appears
    /// in exactly one range, so walking the ranges bottom-up visits all
    /// children strictly before their parents — the schedule the bulk
    /// tree build parallelizes over.
    ///
    /// # Examples
    ///
    /// ```
    /// use miv_core::TreeLayout;
    ///
    /// let layout = TreeLayout::new(16 << 10, 64, 64);
    /// let levels = layout.level_ranges();
    /// assert_eq!(levels[0].start, 0);
    /// assert_eq!(levels.last().unwrap().end, layout.total_chunks());
    /// let covered: u64 = levels.iter().map(|r| r.end - r.start).sum();
    /// assert_eq!(covered, layout.total_chunks());
    /// ```
    pub fn level_ranges(&self) -> Vec<std::ops::Range<u64>> {
        let m = self.arity as u64;
        let mut levels = Vec::new();
        let mut start = 0u64;
        let mut end = m.min(self.total_chunks);
        while start < end {
            levels.push(start..end);
            start = (m * (start + 1)).min(self.total_chunks);
            end = (m * (end + 1)).min(self.total_chunks);
        }
        levels
    }

    /// Physical address of a chunk.
    pub fn chunk_addr(&self, chunk: u64) -> u64 {
        chunk * self.chunk_bytes as u64
    }

    /// Chunk containing physical address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the physical segment.
    pub fn chunk_of_addr(&self, addr: u64) -> u64 {
        let chunk = addr / self.chunk_bytes as u64;
        assert!(chunk < self.total_chunks, "address {addr:#x} out of range");
        chunk
    }

    /// The leaf chunk holding program-data address `addr` (data addresses
    /// run `0 … data_bytes`).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is at or beyond `data_bytes`.
    pub fn data_chunk_for(&self, addr: u64) -> u64 {
        assert!(
            addr < self.data_bytes,
            "data address {addr:#x} out of range"
        );
        self.hash_chunks + addr / self.chunk_bytes as u64
    }

    /// Physical address of program-data address `addr`.
    pub fn data_phys_addr(&self, addr: u64) -> u64 {
        assert!(
            addr < self.data_bytes,
            "data address {addr:#x} out of range"
        );
        self.hash_chunks * self.chunk_bytes as u64 + addr
    }

    /// Byte offset of the hash slot `index` within a chunk.
    pub fn slot_offset(&self, index: u32) -> u32 {
        assert!(index < self.arity, "slot index out of range");
        index * DIGEST_BYTES as u32
    }

    /// The chain of `(chunk, slot)` hash locations from `chunk` up to (and
    /// excluding) secure memory, leaf-to-root order; the final entry's
    /// parent is secure memory.
    pub fn path_to_root(&self, chunk: u64) -> Vec<u64> {
        let mut path = Vec::new();
        let mut c = chunk;
        while let ParentRef::Chunk { chunk: p, .. } = self.parent(c) {
            path.push(p);
            c = p;
        }
        path
    }
}

impl fmt::Display for TreeLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-ary tree: {} data chunks + {} hash chunks ({} B chunks, {} blocks/chunk, {} levels)",
            self.arity,
            self.data_chunks(),
            self.hash_chunks,
            self.chunk_bytes,
            self.blocks_per_chunk(),
            self.levels() + 1,
        )
    }
}

/// Renders a small tree as ASCII art (Figure 1 stand-in).
///
/// Intended for layouts with at most a few dozen chunks; larger trees are
/// summarized.
pub fn render_tree(layout: &TreeLayout) -> String {
    let mut out = String::new();
    out.push_str(&format!("{layout}\n"));
    out.push_str(&format!(
        "secure root: {} digests on chip\n",
        layout
            .arity()
            .min(layout.total_chunks().try_into().unwrap_or(u32::MAX))
    ));
    if layout.total_chunks() > 64 {
        out.push_str("(tree too large to draw; showing counts only)\n");
        return out;
    }
    // Breadth-first levels from the top-level chunks.
    let mut level: Vec<u64> = (0..layout.total_chunks().min(layout.arity() as u64)).collect();
    let mut indent = 0;
    while !level.is_empty() {
        let mut next = Vec::new();
        let labels: Vec<String> = level
            .iter()
            .map(|&c| {
                let kind = if layout.is_hash_chunk(c) { 'H' } else { 'D' };
                next.extend(layout.children(c));
                format!("{kind}{c}")
            })
            .collect();
        out.push_str(&format!("{}{}\n", "  ".repeat(indent), labels.join(" ")));
        level = next;
        indent += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_tree_all_top_level() {
        // D=4, m=4: all four chunks are top-level leaves whose hashes fit
        // in secure memory — no hash chunks at all.
        let l = TreeLayout::new(4 * 64, 64, 64);
        assert_eq!(l.arity(), 4);
        assert_eq!(l.data_chunks(), 4);
        assert_eq!(l.total_chunks(), 4);
        assert_eq!(l.hash_chunks(), 0);
        for c in 0..4 {
            assert!(l.is_data_chunk(c));
            assert_eq!(l.parent(c), ParentRef::Secure { index: c as u32 });
        }
    }

    #[test]
    fn tiny_tree_structure() {
        // D=5, m=4: T=6, H=1. Chunk 0 is internal with children {4, 5};
        // chunks 1–3 are top-level leaves.
        let l = TreeLayout::new(5 * 64, 64, 64);
        assert_eq!(l.data_chunks(), 5);
        assert_eq!(l.total_chunks(), 6);
        assert_eq!(l.hash_chunks(), 1);
        assert!(l.is_hash_chunk(0));
        for c in 1..6 {
            assert!(l.is_data_chunk(c));
        }
        assert_eq!(l.parent(0), ParentRef::Secure { index: 0 });
        assert_eq!(l.parent(3), ParentRef::Secure { index: 3 });
        assert_eq!(l.parent(4), ParentRef::Chunk { chunk: 0, index: 0 });
        assert_eq!(l.parent(5), ParentRef::Chunk { chunk: 0, index: 1 });
        assert_eq!(l.children(0), 4..6);
        assert_eq!(l.children(4), 6..6);
    }

    #[test]
    fn parent_child_roundtrip() {
        let l = TreeLayout::new(1 << 20, 64, 64);
        for chunk in 0..l.total_chunks() {
            for child in l.children(chunk) {
                assert_eq!(
                    l.parent(child),
                    ParentRef::Chunk {
                        chunk,
                        index: (child % l.arity() as u64) as u32
                    },
                    "child {child} of {chunk}"
                );
            }
        }
    }

    #[test]
    fn every_chunk_has_exactly_one_hash_location() {
        let l = TreeLayout::new(64 * 1024, 64, 64);
        let mut seen = std::collections::HashSet::new();
        for chunk in 0..l.total_chunks() {
            let key = match l.parent(chunk) {
                ParentRef::Secure { index } => (u64::MAX, index),
                ParentRef::Chunk { chunk, index } => {
                    assert!(l.is_hash_chunk(chunk), "parents must be hash chunks");
                    (chunk, index)
                }
            };
            assert!(seen.insert(key), "hash slot {key:?} reused");
        }
    }

    #[test]
    fn hash_chunks_are_exactly_the_internal_nodes() {
        for data_chunks in [1u64, 2, 3, 4, 5, 16, 17, 63, 64, 65, 1000] {
            let l = TreeLayout::new(data_chunks * 64, 64, 64);
            for chunk in 0..l.total_chunks() {
                let has_children = !l.children(chunk).is_empty();
                assert_eq!(
                    has_children,
                    l.is_hash_chunk(chunk),
                    "chunk {chunk} of {} (D={data_chunks})",
                    l.total_chunks()
                );
            }
            assert!(l.data_chunks() >= data_chunks);
        }
    }

    #[test]
    fn overhead_is_about_one_over_m_minus_one() {
        let l = TreeLayout::new(16 << 20, 64, 64); // 4-ary
        let want = 1.0 / 3.0;
        assert!(
            (l.overhead() - want).abs() < 0.01,
            "overhead {}",
            l.overhead()
        );
        let l8 = TreeLayout::new(16 << 20, 128, 128); // 8-ary
        assert!((l8.overhead() - 1.0 / 7.0).abs() < 0.01);
    }

    #[test]
    fn paper_quote_quarter_of_memory_for_4ary() {
        // "For a 4-ary tree, one quarter of memory is used by hashes":
        // hash chunks / total chunks ≈ 1/4.
        let l = TreeLayout::new(64 << 20, 64, 64);
        let frac = l.hash_chunks() as f64 / l.total_chunks() as f64;
        assert!((frac - 0.25).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn depth_and_levels() {
        // 4-ary over 64 data chunks: top level 4 chunks, needs 64 leaves:
        // depth grows logarithmically.
        let l = TreeLayout::new(64 * 64, 64, 64);
        assert!(l.levels() >= 2);
        assert_eq!(l.depth(0), 0);
        // Deeper chunks never have smaller depth than their parents.
        for chunk in 0..l.total_chunks() {
            if let ParentRef::Chunk { chunk: p, .. } = l.parent(chunk) {
                assert_eq!(l.depth(chunk), l.depth(p) + 1);
            }
        }
    }

    #[test]
    fn tree_depth_for_table1_sized_memory() {
        // The paper says ~13 extra reads per miss for its configuration
        // (1 MB L2, 64-B chunks). That corresponds to a protected segment
        // of about 256 MB: depth ≈ log4(chunks).
        let l = TreeLayout::new(256 << 20, 64, 64);
        let levels = l.levels() + 1;
        assert!((11..=14).contains(&levels), "levels = {levels}");
    }

    #[test]
    fn data_addr_mapping() {
        let l = TreeLayout::new(4096, 64, 64);
        let first = l.data_chunk_for(0);
        assert_eq!(first, l.hash_chunks());
        assert_eq!(l.data_chunk_for(63), first);
        assert_eq!(l.data_chunk_for(64), first + 1);
        assert_eq!(l.data_phys_addr(0), l.chunk_addr(first));
        assert_eq!(
            l.chunk_of_addr(l.data_phys_addr(100)),
            l.data_chunk_for(100)
        );
    }

    #[test]
    fn blocks_per_chunk_geometry() {
        let l = TreeLayout::new(1 << 16, 128, 64);
        assert_eq!(l.blocks_per_chunk(), 2);
        assert_eq!(l.arity(), 8);
        let l2 = TreeLayout::new(1 << 16, 64, 64);
        assert_eq!(l2.blocks_per_chunk(), 1);
    }

    #[test]
    fn slot_offsets() {
        let l = TreeLayout::new(4096, 64, 64);
        assert_eq!(l.slot_offset(0), 0);
        assert_eq!(l.slot_offset(3), 48);
    }

    #[test]
    #[should_panic(expected = "slot index out of range")]
    fn slot_offset_bounds() {
        let l = TreeLayout::new(4096, 64, 64);
        l.slot_offset(4);
    }

    #[test]
    fn path_to_root_is_strictly_decreasing() {
        let l = TreeLayout::new(1 << 20, 64, 64);
        let leaf = l.total_chunks() - 1;
        let path = l.path_to_root(leaf);
        assert_eq!(path.len() as u32, l.depth(leaf));
        let mut prev = leaf;
        for &p in &path {
            assert!(p < prev);
            assert!(l.is_hash_chunk(p));
            prev = p;
        }
    }

    #[test]
    fn render_small_tree() {
        let l = TreeLayout::new(16 * 64, 64, 64);
        let art = render_tree(&l);
        assert!(art.contains("secure root"));
        assert!(art.contains("H0") || art.contains("D"));
        let big = TreeLayout::new(1 << 20, 64, 64);
        assert!(render_tree(&big).contains("too large"));
    }

    #[test]
    fn zero_data_rejected() {
        assert_eq!(
            TreeLayout::try_new(0, 64, 64),
            Err(ConfigError::EmptySegment)
        );
    }

    #[test]
    fn tiny_chunk_rejected() {
        assert_eq!(
            TreeLayout::try_new(4096, 16, 16),
            Err(ConfigError::ArityTooSmall { chunk_bytes: 16 })
        );
    }

    #[test]
    #[should_panic(expected = "documented invariant")]
    fn panicking_constructor_is_a_thin_wrapper() {
        let _ = TreeLayout::new(0, 64, 64);
    }

    #[test]
    fn single_chunk_segment() {
        let l = TreeLayout::new(10, 64, 64);
        assert_eq!(l.total_chunks(), 1);
        assert_eq!(l.hash_chunks(), 0);
        assert_eq!(l.parent(0), ParentRef::Secure { index: 0 });
        assert_eq!(l.levels(), 0);
    }
}
