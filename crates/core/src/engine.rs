//! The functional memory-integrity engine: real bytes, real digests,
//! real tamper detection.
//!
//! [`VerifiedMemory`] implements the paper's integrated cache/hash-tree
//! algorithms (§5.3–§5.4) over an [`UntrustedMemory`] the adversary
//! controls, with a [`TrustedCache`] standing in for the on-chip L2:
//!
//! * `ReadAndCheck` — cached data is trusted and returned directly; an
//!   uncached access fetches the chunk's memory image, verifies it against
//!   the hash in the (trusted or recursively verified) parent, and caches
//!   the blocks.
//! * `Write` — write-allocate; whole-block overwrites skip the fetch and
//!   check (§5.3's optimization).
//! * `Write-Back` — on dirty eviction the chunk's new image is hashed and
//!   the parent slot updated through a normal `Write`; with
//!   [`Protection::IncrementalMac`] only the evicted block is touched and
//!   the parent MAC is updated in O(1) with its one-bit timestamp flipped
//!   (§5.4).
//!
//! The engine maintains the paper's central invariant — *a chunk's slot in
//! its (possibly cached) parent always matches the chunk's image in
//! untrusted memory* — and poisons itself on the first detected violation,
//! mirroring the processor destroying the program's keys.
//!
//! Timing is out of scope here: this layer exists so tests, examples and
//! attacks can exercise the *algorithms*; `timing::L2Controller` drives the
//! same layout arithmetic under the cycle-level simulator.

use miv_hash::digest::{ChunkHasher, Digest, Md5Hasher, DIGEST_BYTES};
use miv_hash::narrow::{Mac120, XorMac120, NARROW_MAC_BYTES};
use miv_obs::{EventSink, Histogram, Registry, SimEvent};

use crate::error::{ConfigError, IntegrityError};
use crate::layout::{ParentRef, TreeLayout};
use crate::storage::{Adversary, UntrustedMemory};
use crate::trusted_cache::TrustedCache;

/// Which integrity mechanism protects chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protection {
    /// Collision-resistant hash per chunk (the *naive*/*chash*/*mhash*
    /// schemes — they differ only in timing, not in what is stored).
    #[default]
    HashTree,
    /// Incremental 120-bit XOR-MAC with one-bit per-block timestamps (the
    /// *ihash* scheme, §5.4).
    IncrementalMac,
}

/// Functional operation counters.
///
/// These are *algorithmic* counts (how many chunk verifications, block
/// transfers, MAC updates the scheme performed), which is what the
/// correctness tests and the scheme-comparison examples reason about; the
/// cycle-level costs live in the timing simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Chunk verifications performed (hash or MAC compares).
    pub chunk_verifications: u64,
    /// Chunk digests computed (hash scheme).
    pub hash_computations: u64,
    /// O(1) MAC updates performed (ihash scheme).
    pub mac_updates: u64,
    /// Blocks read from untrusted memory on checked paths.
    pub block_reads: u64,
    /// Blocks read from untrusted memory *without* checking (ihash
    /// write-back step 2).
    pub unchecked_block_reads: u64,
    /// Blocks written to untrusted memory.
    pub block_writes: u64,
    /// Write-back operations (dirty evictions serviced).
    pub writebacks: u64,
    /// Write allocations that skipped the fetch+check because the whole
    /// block was overwritten (§5.3 optimization).
    pub alloc_no_fetch: u64,
    /// Chunk checks satisfied by the verified-path memoization (the chunk
    /// was already verified in the current quiescent epoch, so no digest
    /// was recomputed).
    pub memo_hits: u64,
    /// Write-backs retired through the batched multi-lane flush path.
    pub batched_writebacks: u64,
}

impl EngineStats {
    /// Accumulates `other` into `self`. Merging is commutative and
    /// associative, so per-segment stats sum to the whole-run totals.
    pub fn merge(&mut self, other: &EngineStats) {
        self.chunk_verifications += other.chunk_verifications;
        self.hash_computations += other.hash_computations;
        self.mac_updates += other.mac_updates;
        self.block_reads += other.block_reads;
        self.unchecked_block_reads += other.unchecked_block_reads;
        self.block_writes += other.block_writes;
        self.writebacks += other.writebacks;
        self.alloc_no_fetch += other.alloc_no_fetch;
        self.memo_hits += other.memo_hits;
        self.batched_writebacks += other.batched_writebacks;
    }

    /// The component-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            chunk_verifications: self.chunk_verifications - earlier.chunk_verifications,
            hash_computations: self.hash_computations - earlier.hash_computations,
            mac_updates: self.mac_updates - earlier.mac_updates,
            block_reads: self.block_reads - earlier.block_reads,
            unchecked_block_reads: self.unchecked_block_reads - earlier.unchecked_block_reads,
            block_writes: self.block_writes - earlier.block_writes,
            writebacks: self.writebacks - earlier.writebacks,
            alloc_no_fetch: self.alloc_no_fetch - earlier.alloc_no_fetch,
            memo_hits: self.memo_hits - earlier.memo_hits,
            batched_writebacks: self.batched_writebacks - earlier.batched_writebacks,
        }
    }
}

/// Builder for [`VerifiedMemory`].
///
/// # Examples
///
/// ```
/// use miv_core::{MemoryBuilder, Protection};
///
/// let mem = MemoryBuilder::new()
///     .data_bytes(128 * 1024)
///     .chunk_bytes(128)
///     .block_bytes(64) // two blocks per chunk: the mhash geometry
///     .protection(Protection::IncrementalMac)
///     .cache_blocks(512)
///     .build();
/// assert_eq!(mem.layout().blocks_per_chunk(), 2);
/// ```
#[derive(Debug)]
pub struct MemoryBuilder {
    data_bytes: u64,
    chunk_bytes: u32,
    block_bytes: u32,
    protection: Protection,
    hasher: Box<dyn ChunkHasher + Send + Sync>,
    key: [u8; 16],
    cache_blocks: usize,
    initial_data: Option<Vec<u8>>,
    memoize: bool,
    flush_batch_lanes: usize,
    build_jobs: usize,
}

impl Default for MemoryBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryBuilder {
    /// A builder with the paper's defaults: 64 KiB of data, 64-byte
    /// chunks and blocks (4-ary tree), MD5, a 256-block trusted cache.
    pub fn new() -> Self {
        MemoryBuilder {
            data_bytes: 64 * 1024,
            chunk_bytes: 64,
            block_bytes: 64,
            protection: Protection::HashTree,
            hasher: Box::new(Md5Hasher),
            key: *b"miv default key!",
            cache_blocks: 256,
            initial_data: None,
            memoize: true,
            flush_batch_lanes: miv_hash::BATCH_LANES,
            build_jobs: 1,
        }
    }

    /// Worker threads for the bulk tree build in [`build`](Self::build)
    /// (default 1). The built tree — secure roots and every interior
    /// slot — is byte-identical at any value; this only changes how the
    /// per-level hashing is fanned out.
    pub fn build_jobs(mut self, jobs: usize) -> Self {
        self.build_jobs = jobs;
        self
    }

    /// Enables or disables verified-path memoization (default on); see
    /// [`VerifiedMemory::set_memoization`].
    pub fn memoize(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Lane count for the batched flush (default
    /// [`miv_hash::BATCH_LANES`]); `1` restores the scalar per-chunk
    /// write-back path. See [`VerifiedMemory::set_flush_batch_lanes`].
    pub fn flush_batch_lanes(mut self, lanes: usize) -> Self {
        self.flush_batch_lanes = lanes;
        self
    }

    /// Size of the protected data segment in bytes.
    pub fn data_bytes(mut self, bytes: u64) -> Self {
        self.data_bytes = bytes;
        self
    }

    /// Chunk size (the hashing unit).
    pub fn chunk_bytes(mut self, bytes: u32) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Cache-block size; must divide the chunk size.
    pub fn block_bytes(mut self, bytes: u32) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Integrity mechanism (hash tree or incremental MAC).
    pub fn protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self
    }

    /// Hash function for [`Protection::HashTree`] (default MD5).
    pub fn hasher(mut self, hasher: Box<dyn ChunkHasher + Send + Sync>) -> Self {
        self.hasher = hasher;
        self
    }

    /// The processor secret keying the MAC scheme.
    pub fn key(mut self, key: [u8; 16]) -> Self {
        self.key = key;
        self
    }

    /// Trusted-cache capacity in blocks.
    pub fn cache_blocks(mut self, blocks: usize) -> Self {
        self.cache_blocks = blocks;
        self
    }

    /// Initial contents of the data segment (zero-filled / truncated to
    /// `data_bytes`).
    pub fn initial_data(mut self, data: Vec<u8>) -> Self {
        self.initial_data = Some(data);
        self
    }

    /// Builds the memory, constructing the tree bottom-up over the initial
    /// contents (the efficient equivalent of the §5.6.2 initialization; see
    /// [`VerifiedMemory::initialize_via_touch`] for the literal procedure).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`TreeLayout::new`]) or if the
    /// cache is too small to guarantee forward progress of write-back
    /// cascades. Fallible callers (anything validating a user-supplied
    /// spec) use [`try_build`](Self::try_build) instead.
    pub fn build(self) -> VerifiedMemory {
        self.try_build().expect("documented invariant")
    }

    /// Validates the builder's geometry without constructing the engine
    /// (no segment allocation, no tree build): the cheap pre-flight
    /// check for user-supplied specs dispatched to worker threads.
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        let layout = TreeLayout::try_new(self.data_bytes, self.chunk_bytes, self.block_bytes)?;
        let min_cache = Self::min_cache_blocks(&layout);
        if self.cache_blocks < min_cache {
            return Err(ConfigError::CacheTooSmall {
                blocks: self.cache_blocks,
                min_blocks: min_cache,
            });
        }
        if self.protection == Protection::IncrementalMac && layout.blocks_per_chunk() > 8 {
            return Err(ConfigError::MacChunkTooWide {
                blocks_per_chunk: layout.blocks_per_chunk(),
            });
        }
        Ok(())
    }

    /// The fallible form of [`build`](Self::build): returns a
    /// [`ConfigError`] instead of panicking on inconsistent geometry or
    /// an undersized trusted cache.
    pub fn try_build(self) -> std::result::Result<VerifiedMemory, ConfigError> {
        self.validate()?;
        let layout = TreeLayout::try_new(self.data_bytes, self.chunk_bytes, self.block_bytes)?;
        let layout_chunks = layout.total_chunks() as usize;
        let mut mem = UntrustedMemory::new(layout.physical_bytes());
        if let Some(data) = &self.initial_data {
            let base = layout.data_phys_addr(0);
            let len = (data.len() as u64).min(layout.data_bytes()) as usize;
            mem.write(base, &data[..len]);
        }

        let mut engine = VerifiedMemory {
            cache: TrustedCache::new(self.cache_blocks, layout.block_bytes() as usize),
            secure: vec![
                [0u8; DIGEST_BYTES];
                layout
                    .arity()
                    .min(layout.total_chunks().try_into().unwrap_or(u32::MAX))
                    as usize
            ],
            protection: match self.protection {
                Protection::HashTree => ProtImpl::Hash(self.hasher),
                Protection::IncrementalMac => ProtImpl::Mac(XorMac120::new(self.key)),
            },
            layout,
            mem,
            exceptions_enabled: true,
            poisoned: false,
            stats: EngineStats::default(),
            verify_depth: Histogram::disabled(),
            events: EventSink::disabled(),
            walk_cur: 0,
            walk_peak: 0,
            memoize: self.memoize,
            flush_batch_lanes: self.flush_batch_lanes.max(1),
            epoch: 1,
            verified_at: vec![0; layout_chunks],
            masked: std::collections::BTreeSet::new(),
        };
        engine.rebuild_tree(self.build_jobs.max(1));
        Ok(engine)
    }

    /// Minimum trusted-cache capacity for a layout: enough headroom that a
    /// verification walk plus a write-back cascade (each of which pins up
    /// to one chunk's blocks and one parent slot block per tree level)
    /// always finds an evictable victim.
    fn min_cache_blocks(layout: &TreeLayout) -> usize {
        let levels = layout.levels() as usize + 3;
        levels * (2 * layout.blocks_per_chunk() as usize + 2)
    }
}

/// The integrity mechanism implementation.
enum ProtImpl {
    Hash(Box<dyn ChunkHasher + Send + Sync>),
    Mac(XorMac120),
}

impl std::fmt::Debug for ProtImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtImpl::Hash(h) => write!(f, "HashTree({})", h.name()),
            ProtImpl::Mac(_) => write!(f, "IncrementalMac(xor-mac-120)"),
        }
    }
}

impl ProtImpl {
    fn scheme_name(&self) -> &'static str {
        match self {
            ProtImpl::Hash(_) => "hash-tree",
            ProtImpl::Mac(_) => "incremental-mac",
        }
    }
}

/// A verified external memory: the paper's integrated cache + hash-tree
/// machinery, functionally complete.
///
/// # Examples
///
/// ```
/// use miv_core::{MemoryBuilder, TamperKind};
///
/// let mut mem = MemoryBuilder::new().data_bytes(16 * 1024).build();
/// mem.write(0x200, b"result = 42").unwrap();
/// mem.flush().unwrap();
///
/// // The adversary rewrites the value in external RAM...
/// let phys = mem.layout().data_phys_addr(0x200);
/// mem.adversary().tamper(phys, TamperKind::Replace { data: b"result = 43".to_vec() });
///
/// // ...and the next read detects it (the block is no longer cached
/// // after the flush pushed it out to memory — force a cold read):
/// mem.clear_cache().unwrap();
/// assert!(mem.read_vec(0x200, 11).is_err());
/// ```
#[derive(Debug)]
pub struct VerifiedMemory {
    layout: TreeLayout,
    mem: UntrustedMemory,
    cache: TrustedCache,
    /// Slot values for the top-level chunks (on-chip secure memory).
    secure: Vec<[u8; DIGEST_BYTES]>,
    protection: ProtImpl,
    /// §5.6.2: when disabled, checks run but mismatches do not raise.
    exceptions_enabled: bool,
    poisoned: bool,
    stats: EngineStats,
    /// Telemetry: chunks verified per outermost check (walk depth).
    verify_depth: Histogram,
    /// Telemetry: integrity-violation events, timestamped by the
    /// verification's operation index.
    events: EventSink,
    /// Current `read_and_check_chunk` recursion depth.
    walk_cur: u32,
    /// Peak recursion depth since the outermost call began.
    walk_peak: u32,
    /// Verified-path memoization switch.
    memoize: bool,
    /// Lane count for the batched flush (1 = scalar write-backs only).
    flush_batch_lanes: usize,
    /// Current quiescent epoch. Bumped whenever untrusted state may have
    /// changed behind the engine's back (adversary access, raw DMA,
    /// secure-root restoration), which invalidates every memo stamp at
    /// once.
    epoch: u64,
    /// Per-chunk memo stamp: the epoch in which the chunk's memory image
    /// was last known to match its parent slot (0 = never).
    verified_at: Vec<u64>,
    /// Clean cached blocks that were resident at an epoch boundary: each
    /// may mask a tamper until it is written back or dropped. Empty in
    /// adversary-free runs, so the hot path pays one `is_empty` branch.
    masked: std::collections::BTreeSet<u64>,
}

type Result<T> = std::result::Result<T, IntegrityError>;

impl VerifiedMemory {
    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Fallible construction from a configured [`MemoryBuilder`]: the
    /// `Result` twin of [`MemoryBuilder::build`], for callers holding a
    /// user-supplied spec (`mivsim serve` builds every shard's engine
    /// through this on its worker thread).
    pub fn try_new(builder: MemoryBuilder) -> std::result::Result<Self, ConfigError> {
        builder.try_build()
    }

    /// The tree layout.
    pub fn layout(&self) -> &TreeLayout {
        &self.layout
    }

    /// Functional operation counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Attaches telemetry: an `engine.verify_depth` histogram (chunks
    /// verified per outermost check) and [`SimEvent::IntegrityViolation`]
    /// events, timestamped by verification operation index.
    pub fn attach_observability(&mut self, registry: &Registry, events: EventSink) {
        self.verify_depth = registry.histogram("engine.verify_depth");
        self.events = events;
    }

    /// Trusted-cache hit/miss counters `(hits, misses)`.
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// The on-chip secure root slots.
    pub fn secure_root(&self) -> &[[u8; DIGEST_BYTES]] {
        &self.secure
    }

    /// Attacker's view of the untrusted memory.
    ///
    /// Handing out the adversary ends the current quiescent epoch: every
    /// verified-path memo stamp is invalidated, so the next access to any
    /// chunk re-verifies from the (trusted or secure) root downward. This
    /// is what makes memoization sound — a chunk skips re-hashing only
    /// while nothing outside the engine could have touched memory.
    pub fn adversary(&mut self) -> Adversary<'_> {
        self.end_epoch();
        Adversary::new(&mut self.mem)
    }

    /// Enables or disables verified-path memoization.
    ///
    /// With memoization on (the default), a chunk whose memory image was
    /// verified — or rewritten by the engine itself, which re-establishes
    /// the invariant — earlier in the current quiescent epoch skips the
    /// digest recomputation and the ancestor walk on later checks: the
    /// functional mirror of the paper's "a cached (trusted) node acts as
    /// a local root" rule, with the epoch standing in for residency.
    /// Results are byte-identical either way; only the work differs.
    pub fn set_memoization(&mut self, on: bool) {
        self.memoize = on;
    }

    /// Whether verified-path memoization is enabled.
    pub fn memoization(&self) -> bool {
        self.memoize
    }

    /// Sets the lane count for the batched flush: dirty chunks whose
    /// blocks and parent slot are all resident are hashed in groups of up
    /// to `lanes` through the multi-lane digest and flipped together.
    /// `1` restores the scalar per-chunk write-back path (clamped up from
    /// 0).
    pub fn set_flush_batch_lanes(&mut self, lanes: usize) {
        self.flush_batch_lanes = lanes.max(1);
    }

    /// Ends the current quiescent epoch, invalidating every memo stamp.
    ///
    /// Also snapshots the clean cached blocks: from this point on, each
    /// of them may *mask* a tamper (the cache copy hides whatever the
    /// adversary wrote under it), so a chunk re-stamped while one of its
    /// masked blocks is resident loses the stamp the moment that block
    /// leaves the cache — exactly when the unmemoized engine would start
    /// seeing (and detecting) the corrupted memory bytes.
    fn end_epoch(&mut self) {
        self.epoch += 1;
        let clean: Vec<u64> = self
            .cache
            .iter_blocks()
            .map(|(a, _)| a)
            .filter(|&a| self.cache.dirty(a) == Some(false))
            .collect();
        self.masked.extend(clean);
    }

    /// Removes `block` from the cache; if it was a masked clean copy, the
    /// removal may expose tampered memory, so its chunk's memo stamp is
    /// dropped.
    fn forget_block(&mut self, block: u64) {
        self.cache.remove(block);
        if !self.masked.is_empty() && self.masked.remove(&block) {
            let chunk = self.layout.chunk_of_addr(block);
            self.verified_at[chunk as usize] = 0;
        }
    }

    /// Marks `chunk` as verified in the current epoch.
    fn stamp_verified(&mut self, chunk: u64) {
        self.verified_at[chunk as usize] = self.epoch;
    }

    /// Whether `chunk` still holds a current-epoch verification stamp.
    fn memo_valid(&self, chunk: u64) -> bool {
        self.memoize && self.verified_at[chunk as usize] == self.epoch
    }

    /// Enables or disables integrity exceptions (§5.6.2 initialization
    /// runs with them off).
    pub fn set_exceptions_enabled(&mut self, enabled: bool) {
        self.exceptions_enabled = enabled;
    }

    /// Reads `buf.len()` bytes from data address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError`] if any chunk on the verification path
    /// has been tampered with, or if a violation was previously detected
    /// (the engine is poisoned).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the data segment.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<()> {
        self.check_poisoned()?;
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let phys = self.layout.data_phys_addr(a);
            let block = self.block_addr(phys);
            let offset = (phys - block) as usize;
            let take = (self.layout.block_bytes() as usize - offset).min(buf.len() - pos);
            if let Some(data) = self.cache.get(block) {
                buf[pos..pos + take].copy_from_slice(&data[offset..offset + take]);
            } else {
                let chunk = self.layout.chunk_of_addr(phys);
                let image = self.poison_on_err(|e| e.read_and_check_chunk(chunk))?;
                let in_chunk = (block - self.layout.chunk_addr(chunk)) as usize;
                buf[pos..pos + take]
                    .copy_from_slice(&image[in_chunk + offset..in_chunk + offset + take]);
                self.insert_uncached_blocks(chunk, &image)?;
            }
            pos += take;
        }
        Ok(())
    }

    /// Reads `len` bytes from data address `addr` into a new vector.
    ///
    /// # Errors
    ///
    /// See [`read`](Self::read).
    pub fn read_vec(&mut self, addr: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// Writes `data` at data address `addr` (write-allocate).
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError`] if a verification on the allocate path
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the data segment.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<()> {
        self.check_poisoned()?;
        let mut pos = 0usize;
        while pos < data.len() {
            let a = addr + pos as u64;
            let phys = self.layout.data_phys_addr(a);
            let block = self.block_addr(phys);
            let offset = (phys - block) as usize;
            let block_len = self.layout.block_bytes() as usize;
            let take = (block_len - offset).min(data.len() - pos);
            if let Some(cached) = self.cache.get_mut(block) {
                cached[offset..offset + take].copy_from_slice(&data[pos..pos + take]);
            } else if offset == 0 && take == block_len {
                // §5.3: a whole-block overwrite allocates without fetching
                // or checking the old contents.
                self.stats.alloc_no_fetch += 1;
                self.cache
                    .insert(block, data[pos..pos + take].to_vec(), true);
                self.enforce_capacity()?;
            } else {
                let chunk = self.layout.chunk_of_addr(phys);
                let image = self.poison_on_err(|e| e.read_and_check_chunk(chunk))?;
                self.insert_uncached_blocks(chunk, &image)?;
                let cached = self.cache.get_mut(block).expect("just inserted");
                cached[offset..offset + take].copy_from_slice(&data[pos..pos + take]);
            }
            pos += take;
        }
        Ok(())
    }

    /// Writes back every dirty block, leaving the cache clean.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError`] if a verification performed during a
    /// write-back fails.
    pub fn flush(&mut self) -> Result<()> {
        self.check_poisoned()?;
        loop {
            let dirty = self.cache.dirty_blocks();
            if dirty.is_empty() {
                return Ok(());
            }
            // Fully-resident dirty chunks flip through the multi-lane
            // batched path; whatever remains (partially cached chunks,
            // re-dirtied parents, the MAC scheme) takes the scalar
            // write-back below. The outer loop re-scans until the cascade
            // of parent-slot updates settles.
            self.flush_batched(&dirty);
            for block in dirty {
                if self.cache.dirty(block) == Some(true) {
                    self.poison_on_err(|e| e.write_back_block(block))?;
                }
            }
        }
    }

    /// Retires eligible dirty chunks through the multi-lane batched
    /// write-back: a chunk qualifies when all of its blocks and its parent
    /// slot block are already resident, so its new image can be assembled
    /// and flipped without any fetch, verification or eviction — which is
    /// what lets several chunks be hashed together via
    /// [`ChunkHasher::digest_batch`]. Chunks that are parents of other
    /// eligible chunks are deferred (their slot blocks are about to be
    /// re-dirtied by the children's flips) and picked up by the caller's
    /// scalar sweep or the next flush pass. Produces exactly the final
    /// memory, slot and cache state the scalar path would.
    fn flush_batched(&mut self, dirty: &[u64]) {
        if self.flush_batch_lanes < 2 || !matches!(self.protection, ProtImpl::Hash(_)) {
            return;
        }
        let chunks: std::collections::BTreeSet<u64> = dirty
            .iter()
            .map(|&b| self.layout.chunk_of_addr(b))
            .collect();
        // Prefetch: a fully-resident dirty chunk whose slot block is not
        // cached would fall to the scalar path only to fetch that slot
        // there (whole-line writes allocate without fetching, so this is
        // the common flush shape). Pull the slot blocks in first — the
        // same `ensure_slot_resident` + capacity trim the scalar
        // write-back performs — then compute eligibility, since the
        // fetches and evictions may reshape the cache. A verification
        // error during prefetch just leaves everything to the scalar
        // sweep, which re-encounters and reports it.
        for &chunk in &chunks {
            let blocks_resident = (0..self.layout.blocks_per_chunk())
                .all(|j| self.cache.contains(self.block_addr_of(chunk, j)));
            let slot_missing = match self.layout.parent(chunk) {
                ParentRef::Secure { .. } => false,
                ParentRef::Chunk {
                    chunk: parent,
                    index,
                } => !self.cache.contains(self.slot_block(parent, index).0),
            };
            if blocks_resident
                && slot_missing
                && (self.ensure_slot_resident(chunk).is_err() || self.enforce_capacity().is_err())
            {
                return;
            }
        }
        let eligible: Vec<u64> = chunks
            .into_iter()
            .filter(|&chunk| {
                let blocks_resident = (0..self.layout.blocks_per_chunk())
                    .all(|j| self.cache.contains(self.block_addr_of(chunk, j)));
                let slot_resident = match self.layout.parent(chunk) {
                    ParentRef::Secure { .. } => true,
                    ParentRef::Chunk {
                        chunk: parent,
                        index,
                    } => self.cache.contains(self.slot_block(parent, index).0),
                };
                blocks_resident && slot_resident
            })
            .collect();
        let member_parents: std::collections::BTreeSet<u64> = eligible
            .iter()
            .filter_map(|&chunk| match self.layout.parent(chunk) {
                ParentRef::Chunk { chunk: parent, .. } => Some(parent),
                ParentRef::Secure { .. } => None,
            })
            .collect();
        let members: Vec<u64> = eligible
            .into_iter()
            .filter(|chunk| !member_parents.contains(chunk))
            .collect();

        let block_len = self.layout.block_bytes() as usize;
        for group in members.chunks(self.flush_batch_lanes) {
            // Assemble every member's new image from the (fully resident)
            // cache, then hash the group in one multi-lane pass.
            let images: Vec<Vec<u8>> = group
                .iter()
                .map(|&chunk| {
                    let mut image = vec![0u8; self.layout.chunk_bytes() as usize];
                    for j in 0..self.layout.blocks_per_chunk() {
                        let block = self.block_addr_of(chunk, j);
                        let data = self.cache.peek(block).expect("eligible chunk resident");
                        image[j as usize * block_len..(j as usize + 1) * block_len]
                            .copy_from_slice(data);
                    }
                    image
                })
                .collect();
            let digests: Vec<Digest> = {
                let ProtImpl::Hash(hasher) = &self.protection else {
                    unreachable!("batched flush is hash-scheme only")
                };
                let refs: Vec<&[u8]> = images.iter().map(|v| &v[..]).collect();
                hasher.digest_batch(&refs)
            };
            self.stats.hash_computations += group.len() as u64;
            // Atomic flip per member, exactly as in the scalar write-back:
            // dirty blocks to memory, blocks marked clean, new hash into
            // the (resident) parent slot.
            for (i, &chunk) in group.iter().enumerate() {
                for j in 0..self.layout.blocks_per_chunk() {
                    let block = self.block_addr_of(chunk, j);
                    if self.cache.dirty(block) == Some(true) {
                        self.stats.block_writes += 1;
                        self.mem.write(
                            block,
                            &images[i][j as usize * block_len..(j as usize + 1) * block_len],
                        );
                        self.cache.mark_clean(block);
                        self.masked.remove(&block);
                    }
                }
                self.write_slot_resident(chunk, digests[i].into_bytes());
                self.stamp_verified(chunk);
                self.stats.writebacks += 1;
                self.stats.batched_writebacks += 1;
            }
            self.paranoid_check(format_args!("flush_batched group at {:#x}", group[0]));
        }
    }

    /// Flushes and then empties the trusted cache entirely — the state a
    /// context switch or cache-flush instruction leaves behind. Subsequent
    /// reads are cold and must verify from memory.
    ///
    /// # Errors
    ///
    /// See [`flush`](Self::flush).
    pub fn clear_cache(&mut self) -> Result<()> {
        self.flush()?;
        let blocks: Vec<u64> = self.cache.iter_blocks().map(|(a, _)| a).collect();
        for b in blocks {
            self.forget_block(b);
        }
        // A wholesale cache clear is a trust boundary (context switch,
        // cache-flush instruction): the "local roots" the memo stamps
        // stand in for are gone, so subsequent reads must re-verify from
        // the secure root, exactly as the unmemoized engine would.
        self.end_epoch();
        Ok(())
    }

    /// Audits the whole tree: verifies every chunk's memory image against
    /// its (trusted or verified) slot.
    ///
    /// # Errors
    ///
    /// Returns the first [`IntegrityError`] encountered.
    pub fn verify_all(&mut self) -> Result<()> {
        self.check_poisoned()?;
        // An audit must actually re-check every chunk, so bypass the
        // verified-path memoization for its duration.
        let saved = self.memoize;
        self.memoize = false;
        let mut result = Ok(());
        for chunk in 0..self.layout.total_chunks() {
            if let Err(e) = self.poison_on_err(|e| e.read_and_check_chunk(chunk).map(|_| ())) {
                result = Err(e);
                break;
            }
        }
        self.memoize = saved;
        result
    }

    /// Runs the literal §5.6.2 initialization procedure: exceptions off,
    /// touch every data chunk, flush, exceptions on. Used to demonstrate
    /// equivalence with the builder's bottom-up construction.
    ///
    /// # Errors
    ///
    /// Propagates verification errors (none should occur with exceptions
    /// disabled).
    pub fn initialize_via_touch(&mut self) -> Result<()> {
        // Step 1: hashing on for writes, exceptions off.
        self.set_exceptions_enabled(false);
        // Step 2: touch (write) each data chunk.
        let chunk_len = self.layout.chunk_bytes() as usize;
        let data_bytes = self.layout.data_bytes();
        let mut addr = 0u64;
        while addr < data_bytes {
            let take = chunk_len.min((data_bytes - addr) as usize);
            let current = self.read_vec(addr, take)?;
            self.write(addr, &current)?;
            addr += chunk_len as u64;
        }
        // Step 3: flush the cache, forcing write-backs up the tree.
        self.flush()?;
        // Step 4: re-enable integrity exceptions.
        self.set_exceptions_enabled(true);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Core algorithms (§5.3 / §5.4)
    // ------------------------------------------------------------------

    /// `ReadAndCheckChunk`: returns the chunk's verified **memory image**
    /// (clean cached blocks are read from the cache; everything else from
    /// untrusted memory), checking it against the slot in the parent.
    ///
    /// Runs in two phases to mirror the hardware's atomic compare. Phase 1
    /// performs all cache-perturbing work — recursively making the parent
    /// slot's block resident, which may evict lines and cascade
    /// write-backs (including of this very chunk, which is fine: its
    /// memory image and slot move *together*). Phase 2 then gathers the
    /// image and compares it against the (pinned-resident) slot with no
    /// cache activity in between, so nothing can move under the compare.
    fn read_and_check_chunk(&mut self, chunk: u64) -> Result<Vec<u8>> {
        self.walk_cur += 1;
        self.walk_peak = self.walk_peak.max(self.walk_cur);
        let result = self.read_and_check_chunk_inner(chunk);
        self.walk_cur -= 1;
        if self.walk_cur == 0 {
            self.verify_depth.record(self.walk_peak as u64);
            self.walk_peak = 0;
        }
        result
    }

    fn read_and_check_chunk_inner(&mut self, chunk: u64) -> Result<Vec<u8>> {
        // Memoized fast path: the chunk was verified (or coherently
        // rewritten by the engine) earlier in this quiescent epoch, so
        // its memory image still matches its parent slot — return the
        // image without re-hashing or walking the ancestor path. Only
        // the work changes: the bytes handed back are the same ones the
        // full check would approve, because every way untrusted state
        // can change behind the engine's back ends the epoch.
        if self.memo_valid(chunk) {
            self.stats.memo_hits += 1;
            return Ok(self.gather_memory_image(chunk));
        }
        // Phase 1: all fetches, fills, evictions and cascaded write-backs.
        let slot_loc = self.ensure_slot_resident(chunk)?;
        if let Some((block, _)) = slot_loc {
            self.cache.pin(block);
        }
        // Phase 2: atomic gather + compare.
        let image = self.gather_memory_image(chunk);
        let slot = match slot_loc {
            None => {
                let ParentRef::Secure { index } = self.layout.parent(chunk) else {
                    unreachable!("slot_loc is None only for secure slots")
                };
                self.secure[index as usize]
            }
            Some((block, offset)) => {
                let data = self.cache.peek(block).expect("slot block pinned resident");
                let mut out = [0u8; DIGEST_BYTES];
                out.copy_from_slice(&data[offset..offset + DIGEST_BYTES]);
                out
            }
        };
        if let Some((block, _)) = slot_loc {
            self.cache.unpin(block);
        }
        self.verify_chunk_image(chunk, &image, slot)?;
        Ok(image)
    }

    /// Assembles the chunk's memory image.
    fn gather_memory_image(&mut self, chunk: u64) -> Vec<u8> {
        let block_len = self.layout.block_bytes() as usize;
        let mut image = vec![0u8; self.layout.chunk_bytes() as usize];
        for j in 0..self.layout.blocks_per_chunk() {
            let block = self.block_addr_of(chunk, j);
            let dst = &mut image[j as usize * block_len..(j as usize + 1) * block_len];
            match self.cache.peek(block) {
                // A clean cached block equals its memory image.
                Some(data) if self.cache.dirty(block) == Some(false) => {
                    dst.copy_from_slice(data);
                }
                // Dirty or absent: the *memory* copy is what the parent
                // slot covers.
                _ => {
                    self.stats.block_reads += 1;
                    self.mem.read(block, dst);
                }
            }
        }
        image
    }

    /// Checks a chunk image against its parent slot value.
    fn verify_chunk_image(
        &mut self,
        chunk: u64,
        image: &[u8],
        slot: [u8; DIGEST_BYTES],
    ) -> Result<()> {
        self.stats.chunk_verifications += 1;
        let ok = match &self.protection {
            ProtImpl::Hash(hasher) => {
                self.stats.hash_computations += 1;
                let computed = hasher.digest(image);
                Digest::from_bytes(slot) == computed
            }
            ProtImpl::Mac(mac) => {
                let (tag, ts) = parse_mac_slot(&slot);
                let block_len = self.layout.block_bytes() as usize;
                mac.verify(
                    tag,
                    image
                        .chunks_exact(block_len)
                        .enumerate()
                        .map(|(j, b)| (b, ts >> j & 1 == 1)),
                )
            }
        };
        if ok {
            // Stamp only on a *passing* check: under §5.6.2 (exceptions
            // disabled) a mismatch returns Ok below without the chunk
            // actually being trustworthy.
            self.stamp_verified(chunk);
        }
        if !ok && self.exceptions_enabled {
            self.events.record(
                self.stats.chunk_verifications,
                SimEvent::IntegrityViolation {
                    addr: self.layout.chunk_addr(chunk),
                    chunk,
                    scheme: self.protection.scheme_name(),
                },
            );
            return Err(IntegrityError::new(
                chunk,
                self.layout.chunk_addr(chunk),
                self.protection.scheme_name(),
            ));
        }
        Ok(())
    }

    /// Ensures the block holding `chunk`'s slot is resident (verifying the
    /// parent on the way in) and returns `(block, offset)`; secure-memory
    /// slots return `None`.
    fn ensure_slot_resident(&mut self, chunk: u64) -> Result<Option<(u64, usize)>> {
        match self.layout.parent(chunk) {
            ParentRef::Secure { .. } => Ok(None),
            ParentRef::Chunk {
                chunk: parent,
                index,
            } => {
                let (block, offset) = self.slot_block(parent, index);
                if !self.cache.contains(block) {
                    let image = self.read_and_check_chunk(parent)?;
                    self.insert_uncached_blocks_unenforced(parent, &image);
                }
                Ok(Some((block, offset)))
            }
        }
    }

    /// Writes a chunk's slot through the parent `Write` operation: secure
    /// memory directly, or the resident parent block (marking it dirty).
    ///
    /// The caller must have pinned the slot block via
    /// [`ensure_slot_resident`](Self::ensure_slot_resident) so no fetch is
    /// needed here — this keeps the write-back's final step atomic.
    fn write_slot_resident(&mut self, chunk: u64, value: [u8; DIGEST_BYTES]) {
        match self.layout.parent(chunk) {
            ParentRef::Secure { index } => self.secure[index as usize] = value,
            ParentRef::Chunk {
                chunk: parent,
                index,
            } => {
                let (block, offset) = self.slot_block(parent, index);
                let data = self
                    .cache
                    .get_mut(block)
                    .expect("slot block pinned resident by caller");
                data[offset..offset + DIGEST_BYTES].copy_from_slice(&value);
            }
        }
    }

    /// `Write-Back` for the block at `victim` (which must be dirty),
    /// dispatching on the protection scheme. The block is left resident
    /// and clean; the caller may then remove it.
    fn write_back_block(&mut self, victim: u64) -> Result<()> {
        debug_assert_eq!(self.cache.dirty(victim), Some(true));
        self.stats.writebacks += 1;
        let r = match &self.protection {
            ProtImpl::Hash(_) => self.write_back_chunk_hash(victim),
            ProtImpl::Mac(_) => self.write_back_block_mac(victim),
        };
        self.paranoid_check(format_args!("write_back_block({victim:#x})"));
        r
    }

    /// Paranoid mode (set MIV_PARANOID=1): audit the whole-tree invariant
    /// after a state-changing step. Used by stress tests.
    fn paranoid_check(&mut self, what: std::fmt::Arguments<'_>) {
        static PARANOID: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *PARANOID.get_or_init(|| std::env::var_os("MIV_PARANOID").is_some()) {
            if let Err(e) = self.audit_invariant() {
                // miv-analyze: allow(no-unwrap-in-lib, reason="MIV_PARANOID is an opt-in stress-audit mode; aborting at the first broken invariant is its contract")
                panic!("after {what}: {e}");
            }
        }
    }

    /// §5.3 Write-Back: the whole chunk is re-hashed; all its dirty blocks
    /// go to memory together.
    fn write_back_chunk_hash(&mut self, victim: u64) -> Result<()> {
        let chunk = self.layout.chunk_of_addr(victim);
        let block_len = self.layout.block_bytes() as usize;

        // Pin the chunk's cached blocks: no re-entrant eviction may write
        // this chunk back while we are mid-update.
        let pinned: Vec<u64> = (0..self.layout.blocks_per_chunk())
            .map(|j| self.block_addr_of(chunk, j))
            .filter(|b| self.cache.contains(*b))
            .collect();
        for &b in &pinned {
            self.cache.pin(b);
        }
        let result = (|| -> Result<()> {
            // Make the parent slot block resident and pin it, so the final
            // hash store cannot miss.
            let slot_loc = self.ensure_slot_resident(chunk)?;
            if let Some((slot_block, _)) = slot_loc {
                self.cache.pin(slot_block);
            }
            let inner = (|| -> Result<()> {
                // Gather the chunk's *new* image: cached blocks (clean or
                // dirty) as cached; missing blocks from the verified old
                // memory image.
                let old_image = if pinned.len() < self.layout.blocks_per_chunk() as usize {
                    Some(self.read_and_check_chunk(chunk)?)
                } else {
                    None
                };
                let mut new_image = vec![0u8; self.layout.chunk_bytes() as usize];
                let mut dirty_blocks = Vec::new();
                for j in 0..self.layout.blocks_per_chunk() {
                    let block = self.block_addr_of(chunk, j);
                    let dst = &mut new_image[j as usize * block_len..(j as usize + 1) * block_len];
                    if let Some(data) = self.cache.peek(block) {
                        dst.copy_from_slice(data);
                        if self.cache.dirty(block) == Some(true) {
                            dirty_blocks.push((block, j));
                        }
                    } else {
                        let img = old_image.as_ref().expect("missing blocks were gathered");
                        dst.copy_from_slice(
                            &img[j as usize * block_len..(j as usize + 1) * block_len],
                        );
                    }
                }

                // Atomic flip: write dirty blocks to memory, mark the
                // chunk's blocks clean, store the new hash in the parent.
                let ProtImpl::Hash(hasher) = &self.protection else {
                    unreachable!()
                };
                self.stats.hash_computations += 1;
                let digest = hasher.digest(&new_image);
                for &(block, j) in &dirty_blocks {
                    self.stats.block_writes += 1;
                    self.mem.write(
                        block,
                        &new_image[j as usize * block_len..(j as usize + 1) * block_len],
                    );
                    self.cache.mark_clean(block);
                    // Freshly synced to memory: the cache copy no longer
                    // masks anything.
                    self.masked.remove(&block);
                }
                self.write_slot_resident(chunk, digest.into_bytes());
                // The image and slot were flipped together, so the chunk
                // is coherent for the rest of the epoch.
                self.stamp_verified(chunk);
                Ok(())
            })();
            if let Some((slot_block, _)) = slot_loc {
                self.cache.unpin(slot_block);
            }
            inner
        })();
        for &b in &pinned {
            self.cache.unpin(b);
        }
        result?;
        self.enforce_capacity()
    }

    /// §5.4 Write-Back with the incremental MAC: only the evicted block is
    /// written; the old value is read from memory *unchecked* and the MAC
    /// updated in O(1), flipping the block's one-bit timestamp.
    fn write_back_block_mac(&mut self, victim: u64) -> Result<()> {
        let chunk = self.layout.chunk_of_addr(victim);
        let block_len = self.layout.block_bytes() as usize;
        let j = u32::try_from((victim - self.layout.chunk_addr(chunk)) / block_len as u64)
            .expect("block index within chunk");

        self.cache.pin(victim);
        let result = (|| -> Result<()> {
            // Step 1: read the parent MAC through the trusted path and pin
            // its block.
            let slot_loc = self.ensure_slot_resident(chunk)?;
            if let Some((slot_block, _)) = slot_loc {
                self.cache.pin(slot_block);
            }
            let inner = {
                let slot = match slot_loc {
                    None => {
                        let ParentRef::Secure { index } = self.layout.parent(chunk) else {
                            unreachable!()
                        };
                        self.secure[index as usize]
                    }
                    Some((block, offset)) => {
                        let data = self.cache.peek(block).expect("pinned resident");
                        let mut out = [0u8; DIGEST_BYTES];
                        out.copy_from_slice(&data[offset..offset + DIGEST_BYTES]);
                        out
                    }
                };
                let (tag, ts) = parse_mac_slot(&slot);

                // Step 2: the old block value, read directly and unchecked.
                self.stats.unchecked_block_reads += 1;
                let mut old = vec![0u8; block_len];
                self.mem.read(victim, &mut old);

                // Step 3: O(1) MAC update with the timestamp flip.
                let new = self.cache.peek(victim).expect("victim pinned").to_vec();
                let old_ts = ts >> j & 1 == 1;
                let new_ts = !old_ts;
                let ProtImpl::Mac(mac) = &self.protection else {
                    unreachable!()
                };
                self.stats.mac_updates += 1;
                let new_tag = mac.update(tag, j as u64, (&old, old_ts), (&new, new_ts));

                // Step 4: flip both sides together.
                self.stats.block_writes += 1;
                self.mem.write(victim, &new);
                self.cache.mark_clean(victim);
                self.masked.remove(&victim);
                // No memo stamp here: unlike the hash write-back, the
                // O(1) MAC update never re-derives the slot from the
                // whole image, so it *preserves* an existing stamp (which
                // needs no action) but cannot establish a fresh one.
                self.write_slot_resident(chunk, build_mac_slot(new_tag, ts ^ (1 << j)));
                Ok(())
            };
            if let Some((slot_block, _)) = slot_loc {
                self.cache.unpin(slot_block);
            }
            inner
        })();
        self.cache.unpin(victim);
        result?;
        self.enforce_capacity()
    }

    // ------------------------------------------------------------------
    // Cache plumbing
    // ------------------------------------------------------------------

    /// Inserts a verified chunk image's uncached blocks as clean lines,
    /// then trims the cache back to capacity.
    fn insert_uncached_blocks(&mut self, chunk: u64, image: &[u8]) -> Result<()> {
        self.insert_uncached_blocks_unenforced(chunk, image);
        self.enforce_capacity()
    }

    fn insert_uncached_blocks_unenforced(&mut self, chunk: u64, image: &[u8]) {
        let block_len = self.layout.block_bytes() as usize;
        for j in 0..self.layout.blocks_per_chunk() {
            let block = self.block_addr_of(chunk, j);
            if !self.cache.contains(block) {
                let data = image[j as usize * block_len..(j as usize + 1) * block_len].to_vec();
                self.cache.insert(block, data, false);
            }
        }
    }

    /// Evicts LRU blocks (writing dirty ones back) until the cache is
    /// within capacity.
    fn enforce_capacity(&mut self) -> Result<()> {
        while self.cache.over_capacity() {
            let victim = self
                .cache
                .victim()
                .expect("trusted cache too small: all blocks pinned (enforced at build)");
            if self.cache.dirty(victim) == Some(true) {
                self.write_back_block(victim)?;
            }
            // Only drop the victim if it is (still) clean: a nested
            // write-back may have re-dirtied it by storing a child's slot
            // into it, and removing it then would lose that update. A
            // re-dirtied victim stays resident and the loop re-selects;
            // each write-back strictly decreases the summed tree depth of
            // dirty blocks, so this terminates.
            if self.cache.dirty(victim) == Some(false) {
                self.forget_block(victim);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // DMA support (§5.7) — see the `dma` module for the public API docs.
    // ------------------------------------------------------------------

    /// Discards a cached block (even dirty — device DMA overwrote it).
    pub(crate) fn drop_cached_block(&mut self, block: u64) {
        self.end_epoch();
        self.forget_block(block);
    }

    /// Raw device write into untrusted memory (no tree update).
    pub(crate) fn adversary_write_raw(&mut self, phys: u64, data: &[u8]) {
        self.end_epoch();
        self.mem.write(phys, data);
    }

    /// Raw unchecked read from untrusted memory.
    pub(crate) fn adversary_read_raw(&mut self, phys: u64, len: usize) -> Vec<u8> {
        self.stats.unchecked_block_reads += 1;
        self.mem.read_vec(phys, len)
    }

    /// Replaces the on-chip secure root (state restoration).
    ///
    /// # Panics
    ///
    /// Panics if the slot count differs from the layout's.
    pub(crate) fn restore_secure_root(&mut self, slots: &[[u8; DIGEST_BYTES]]) {
        assert_eq!(
            slots.len(),
            self.secure.len(),
            "secure-root slot count mismatch"
        );
        self.end_epoch();
        self.secure.copy_from_slice(slots);
    }

    /// Recomputes `chunk`'s slot from its current memory image (the §5.7
    /// rebuild step), flushing any remaining dirty cached blocks of the
    /// chunk to memory first so the slot covers one coherent image. For
    /// the incremental MAC the tag is computed from scratch with all
    /// timestamps reset (footnote 7: the flush trick cannot rebuild MACs).
    pub(crate) fn rebuild_chunk_slot(&mut self, chunk: u64) -> Result<()> {
        let block_len = self.layout.block_bytes() as usize;
        // Push surviving dirty blocks to memory without verification —
        // the chunk's slot is stale by construction during a rebuild.
        for j in 0..self.layout.blocks_per_chunk() {
            let block = self.block_addr_of(chunk, j);
            if self.cache.dirty(block) == Some(true) {
                let data = self
                    .cache
                    .peek(block)
                    .expect("dirty implies cached")
                    .to_vec();
                self.stats.block_writes += 1;
                self.mem.write(block, &data);
                self.cache.mark_clean(block);
                self.masked.remove(&block);
            }
        }
        let image = self.mem.read_vec(
            self.layout.chunk_addr(chunk),
            self.layout.chunk_bytes() as usize,
        );
        let slot = match &self.protection {
            ProtImpl::Hash(hasher) => {
                self.stats.hash_computations += 1;
                hasher.digest(&image).into_bytes()
            }
            ProtImpl::Mac(mac) => {
                self.stats.mac_updates += 1;
                let tag = mac.mac_blocks(image.chunks_exact(block_len).map(|b| (b, false)));
                build_mac_slot(tag, 0)
            }
        };
        // Store through the parent Write path (pinned resident, as in a
        // write-back) so ancestors update and verify normally.
        let slot_loc = self.ensure_slot_resident(chunk)?;
        if let Some((slot_block, _)) = slot_loc {
            self.cache.pin(slot_block);
        }
        self.write_slot_resident(chunk, slot);
        if let Some((slot_block, _)) = slot_loc {
            self.cache.unpin(slot_block);
        }
        self.enforce_capacity()
    }

    // ------------------------------------------------------------------
    // Small helpers
    // ------------------------------------------------------------------

    fn block_addr(&self, phys: u64) -> u64 {
        phys & !(self.layout.block_bytes() as u64 - 1)
    }

    fn block_addr_of(&self, chunk: u64, j: u32) -> u64 {
        self.layout.chunk_addr(chunk) + j as u64 * self.layout.block_bytes() as u64
    }

    /// The `(block address, offset within block)` of slot `index` in
    /// `parent`.
    fn slot_block(&self, parent: u64, index: u32) -> (u64, usize) {
        let byte = self.layout.chunk_addr(parent) + self.layout.slot_offset(index) as u64;
        let block = self.block_addr(byte);
        (block, (byte - block) as usize)
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            Err(IntegrityError::new(
                u64::MAX,
                0,
                self.protection.scheme_name(),
            ))
        } else {
            Ok(())
        }
    }

    fn poison_on_err<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        match f(self) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Ground-truth invariant audit, bypassing the engine's own machinery:
    /// for every chunk, the *current* slot value (cached parent block if
    /// resident, else memory, else secure root) must equal the digest/MAC
    /// of the chunk's **memory** image. Debug/test aid only — does not
    /// perturb the cache.
    #[doc(hidden)]
    pub fn audit_invariant(&mut self) -> std::result::Result<(), String> {
        let block_len = self.layout.block_bytes() as usize;
        for chunk in 0..self.layout.total_chunks() {
            let image = self.mem.read_vec(
                self.layout.chunk_addr(chunk),
                self.layout.chunk_bytes() as usize,
            );
            let slot: [u8; DIGEST_BYTES] = match self.layout.parent(chunk) {
                ParentRef::Secure { index } => self.secure[index as usize],
                ParentRef::Chunk {
                    chunk: parent,
                    index,
                } => {
                    let (block, offset) = self.slot_block(parent, index);
                    let mut out = [0u8; DIGEST_BYTES];
                    match self.cache.peek(block) {
                        Some(data) => out.copy_from_slice(&data[offset..offset + DIGEST_BYTES]),
                        None => {
                            let addr = self.layout.chunk_addr(parent)
                                + self.layout.slot_offset(index) as u64;
                            let bytes = self.mem.read_vec(addr, DIGEST_BYTES);
                            out.copy_from_slice(&bytes);
                        }
                    }
                    out
                }
            };
            let ok = match &self.protection {
                ProtImpl::Hash(h) => h.digest(&image).into_bytes() == slot,
                ProtImpl::Mac(mac) => {
                    let (tag, ts) = parse_mac_slot(&slot);
                    mac.verify(
                        tag,
                        image
                            .chunks_exact(block_len)
                            .enumerate()
                            .map(|(j, b)| (b, ts >> j & 1 == 1)),
                    )
                }
            };
            if !ok {
                return Err(format!("invariant broken at chunk {chunk}"));
            }
        }
        Ok(())
    }

    /// Rebuilds the entire tree bottom-up from the current memory contents
    /// (builder initialization) as a level-by-level bulk build: each
    /// level's chunk images are hashed through
    /// [`ChunkHasher::digest_batch`] and, with `jobs > 1`, fanned over
    /// scoped worker threads on contiguous subranges merged back in
    /// chunk order.
    ///
    /// Determinism: the serial reference
    /// ([`rebuild_tree_serial`](Self::rebuild_tree_serial)) visits
    /// chunks in reverse index order, so every chunk is hashed after all
    /// of its children (children have strictly higher indices). Levels
    /// partition the index space into contiguous ranges
    /// ([`TreeLayout::level_ranges`]) and a chunk's children live
    /// exactly one level deeper, so processing levels deepest-first
    /// hashes every chunk image in the same state the serial walk saw
    /// it; within a level each write targets a distinct parent slot one
    /// level up, so the resulting tree state — secure roots and every
    /// interior slot — is byte-identical at any `jobs`.
    fn rebuild_tree(&mut self, jobs: usize) {
        let chunk_len = self.layout.chunk_bytes() as usize;
        let block_len = self.layout.block_bytes() as usize;
        for range in self.layout.level_ranges().iter().rev() {
            // A level is one contiguous physical region (chunk_addr is
            // linear in the index), so chunk images are zero-copy
            // slices of it; slot writes land one level up, outside the
            // borrowed region.
            let count = (range.end - range.start) as usize;
            let level = self
                .mem
                .region(self.layout.chunk_addr(range.start), count * chunk_len);
            let slots: Vec<[u8; DIGEST_BYTES]> = match &self.protection {
                ProtImpl::Hash(hasher) => hash_level(&**hasher, level, chunk_len, jobs),
                ProtImpl::Mac(mac) => level
                    .chunks_exact(chunk_len)
                    .map(|image| {
                        let tag = mac.mac_blocks(image.chunks_exact(block_len).map(|b| (b, false)));
                        build_mac_slot(tag, 0)
                    })
                    .collect(),
            };
            for (slot, chunk) in slots.into_iter().zip(range.clone()) {
                match self.layout.parent(chunk) {
                    ParentRef::Secure { index } => self.secure[index as usize] = slot,
                    ParentRef::Chunk {
                        chunk: parent,
                        index,
                    } => {
                        let addr =
                            self.layout.chunk_addr(parent) + self.layout.slot_offset(index) as u64;
                        self.mem.write(addr, &slot);
                    }
                }
            }
        }
    }

    /// The pre-bulk reference build: one scalar `digest` per chunk in
    /// reverse index order. Kept as the ground truth the bulk build is
    /// pinned against (byte-identical output) and as the bench baseline
    /// for the `bulk_build_ratio` gate.
    #[doc(hidden)]
    pub fn rebuild_tree_serial(&mut self) {
        let block_len = self.layout.block_bytes() as usize;
        for chunk in (0..self.layout.total_chunks()).rev() {
            let image = self.mem.read_vec(
                self.layout.chunk_addr(chunk),
                self.layout.chunk_bytes() as usize,
            );
            let slot = match &self.protection {
                ProtImpl::Hash(hasher) => hasher.digest(&image).into_bytes(),
                ProtImpl::Mac(mac) => {
                    let tag = mac.mac_blocks(image.chunks_exact(block_len).map(|b| (b, false)));
                    build_mac_slot(tag, 0)
                }
            };
            match self.layout.parent(chunk) {
                ParentRef::Secure { index } => self.secure[index as usize] = slot,
                ParentRef::Chunk {
                    chunk: parent,
                    index,
                } => {
                    let addr =
                        self.layout.chunk_addr(parent) + self.layout.slot_offset(index) as u64;
                    self.mem.write(addr, &slot);
                }
            }
        }
    }

    /// Re-runs the bulk tree build over the current memory contents;
    /// test/bench aid (the build is idempotent on an intact tree).
    #[doc(hidden)]
    pub fn rebuild_tree_bulk(&mut self, jobs: usize) {
        self.rebuild_tree(jobs.max(1));
    }
}

/// Hashes one level's chunk images into slot values: contiguous
/// subranges go to scoped worker threads (plain image slices in,
/// digests out — nothing but `Send + Sync` borrows cross the boundary)
/// and the per-worker results are concatenated in spawn order, which is
/// chunk order.
fn hash_level(
    hasher: &(dyn ChunkHasher + Send + Sync),
    level: &[u8],
    chunk_len: usize,
    jobs: usize,
) -> Vec<[u8; DIGEST_BYTES]> {
    let count = level.len() / chunk_len;
    let workers = jobs.max(1).min(count);
    if workers <= 1 {
        let refs: Vec<&[u8]> = level.chunks_exact(chunk_len).collect();
        return hasher
            .digest_batch(&refs)
            .into_iter()
            .map(Digest::into_bytes)
            .collect();
    }
    let span = count.div_ceil(workers);
    let mut out = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = level
            .chunks(span * chunk_len)
            .map(|part| {
                scope.spawn(move || {
                    let refs: Vec<&[u8]> = part.chunks_exact(chunk_len).collect();
                    hasher.digest_batch(&refs)
                })
            })
            .collect();
        for handle in handles {
            let digests = handle.join().expect("bulk-build worker panicked");
            out.extend(digests.into_iter().map(Digest::into_bytes));
        }
    });
    out
}

/// Splits a 16-byte slot into `(120-bit MAC, timestamp bits)`.
fn parse_mac_slot(slot: &[u8; DIGEST_BYTES]) -> (Mac120, u8) {
    let mut tag = [0u8; NARROW_MAC_BYTES];
    tag.copy_from_slice(&slot[..NARROW_MAC_BYTES]);
    (tag, slot[NARROW_MAC_BYTES])
}

/// Packs a `(120-bit MAC, timestamp bits)` pair into a 16-byte slot.
fn build_mac_slot(tag: Mac120, ts: u8) -> [u8; DIGEST_BYTES] {
    let mut slot = [0u8; DIGEST_BYTES];
    slot[..NARROW_MAC_BYTES].copy_from_slice(&tag);
    slot[NARROW_MAC_BYTES] = ts;
    slot
}
