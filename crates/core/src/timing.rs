//! The cycle-level integrity checker integrated with the L2 cache.
//!
//! This is the timing side of the paper's contribution: an
//! [`L2Controller`] owns the unified L2 (`miv-cache`), the shared memory
//! bus (`miv-mem`), the pipelined hash unit (`miv-hash::engine`) and the
//! 16-entry read/write hash buffers, and services L1 misses under one of
//! five schemes:
//!
//! | scheme | behaviour |
//! |--------|-----------|
//! | [`Scheme::Base`]  | no verification — the baseline processor |
//! | [`Scheme::Naive`] | tree machinery between L2 and DRAM; every miss walks and fetches the full path to the root from memory; hashes are never cached |
//! | [`Scheme::CHash`] | hash chunks live in the L2; a cached hash is trusted and terminates the walk (§5.3, one block per chunk) |
//! | [`Scheme::MHash`] | chunks span several cache blocks (§5.3 extended) |
//! | [`Scheme::IHash`] | like `MHash`, but write-backs use the O(1) incremental MAC update (§5.4) |
//!
//! Reads are **speculative** (§5.8): data is returned to the core the
//! moment it arrives from the bus; hashing and parent checks proceed in
//! the background, occupying a read-buffer entry until they complete. The
//! controller exposes the *verification horizon* — the cycle by which all
//! issued checks finish — which crypto-barrier instructions wait for.
//! The `block_on_verify` option disables speculation (an ablation).

use std::collections::BTreeSet;

use miv_cache::{
    Cache, CacheConfig, CacheObserver, CacheStats, Eviction, LineKind, ReplacementPolicy,
};
use miv_hash::engine::HashEngineConfig;
use miv_obs::{EventSink, Histogram, LineClass, Registry, SimEvent, SpanTracer};

use crate::hash_unit::HashEngine;
use crate::observe::HashUnitObserver;
use miv_mem::{BusObserver, BusTiming, MemoryBus, MemoryBusConfig, TrafficClass};

use crate::error::ConfigError;
use crate::layout::{ParentRef, TreeLayout};

/// A simulation timestamp in core clock cycles.
pub type Cycle = u64;

/// The verification scheme the controller runs.
// miv-analyze: exhaustive
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No memory verification (baseline).
    Base,
    /// Uncached hash tree between L2 and memory.
    Naive,
    /// Cached hash tree, one cache block per chunk.
    CHash,
    /// Cached hash tree, multiple cache blocks per chunk.
    MHash,
    /// Cached incremental-MAC tree, multiple blocks per chunk.
    IHash,
}

impl Scheme {
    /// All schemes in presentation order.
    pub const ALL: [Scheme; 5] = [
        Scheme::Base,
        Scheme::Naive,
        Scheme::CHash,
        Scheme::MHash,
        Scheme::IHash,
    ];

    /// Short label used in tables (matches the paper's names).
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Base => "base",
            Scheme::Naive => "naive",
            Scheme::CHash => "chash",
            Scheme::MHash => "mhash",
            Scheme::IHash => "ihash",
        }
    }

    /// Whether the scheme verifies memory at all.
    pub fn verifies(&self) -> bool {
        !matches!(self, Scheme::Base)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of the integrity checker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckerConfig {
    /// Verification scheme.
    pub scheme: Scheme,
    /// Size of the protected data segment in bytes (sets the tree depth).
    pub protected_bytes: u64,
    /// Chunk size (the hashing unit); must equal the L2 line size for
    /// `CHash`/`Naive` and be a multiple of it for `MHash`/`IHash`.
    pub chunk_bytes: u32,
    /// Hash-unit latency/throughput (Table 1: 160 cycles, 3.2 GB/s).
    pub hash: HashEngineConfig,
    /// Read- and write-buffer entries (Table 1: 16 each).
    pub buffer_entries: u32,
    /// L2 hit latency in cycles (Table 1: 10).
    pub l2_latency: u64,
    /// Ablation: stall the core until verification completes instead of
    /// returning data speculatively (§5.8 off).
    pub block_on_verify: bool,
    /// §5.3 optimization: whole-line overwrites allocate without fetching
    /// or checking.
    pub write_allocate_no_fetch: bool,
    /// L2 replacement policy (the paper assumes LRU; `ablation_replacement`
    /// sweeps the alternatives).
    pub l2_policy: ReplacementPolicy,
}

impl CheckerConfig {
    /// Table 1 defaults for a given scheme and 64-byte L2 lines:
    /// 256 MB protected segment, 16-entry buffers, 10-cycle L2.
    pub fn hpca03(scheme: Scheme) -> Self {
        CheckerConfig {
            scheme,
            protected_bytes: 256 << 20,
            chunk_bytes: 64,
            hash: HashEngineConfig::default(),
            buffer_entries: 16,
            l2_latency: 10,
            block_on_verify: false,
            write_allocate_no_fetch: true,
            l2_policy: ReplacementPolicy::Lru,
        }
    }
}

/// Checker activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Data blocks fetched from memory for demand misses.
    pub data_fetches: u64,
    /// Hash-chunk blocks fetched from memory.
    pub hash_fetches: u64,
    /// Extra data blocks fetched because a chunk spans several lines
    /// (`MHash`/`IHash`) or for unchecked old-value reads (`IHash`
    /// write-back).
    pub extra_data_fetches: u64,
    /// Chunk verifications scheduled on the hash unit.
    pub verifications: u64,
    /// Dirty-line write-backs serviced.
    pub writebacks: u64,
    /// Write allocations that skipped fetch + check (§5.3).
    pub alloc_no_fetch: u64,
    /// Cycles demand fetches waited for a read-buffer entry.
    pub read_buffer_wait: u64,
    /// Cycles write-backs waited for a write-buffer entry.
    pub write_buffer_wait: u64,
    /// Summed service latency of demand misses (request at the L2 to data
    /// available), for average-miss-latency reporting.
    pub miss_latency: u64,
    /// Number of misses timed into [`miss_latency`](Self::miss_latency).
    pub misses_timed: u64,
}

impl CheckerStats {
    /// Accumulates `other` into `self`. Merging is commutative and
    /// associative, so per-segment stats sum to the whole-run totals.
    pub fn merge(&mut self, other: &CheckerStats) {
        self.data_fetches += other.data_fetches;
        self.hash_fetches += other.hash_fetches;
        self.extra_data_fetches += other.extra_data_fetches;
        self.verifications += other.verifications;
        self.writebacks += other.writebacks;
        self.alloc_no_fetch += other.alloc_no_fetch;
        self.read_buffer_wait += other.read_buffer_wait;
        self.write_buffer_wait += other.write_buffer_wait;
        self.miss_latency += other.miss_latency;
        self.misses_timed += other.misses_timed;
    }

    /// The component-wise difference `self - earlier`, for interval
    /// sampling over cumulative counters.
    pub fn delta(&self, earlier: &CheckerStats) -> CheckerStats {
        CheckerStats {
            data_fetches: self.data_fetches - earlier.data_fetches,
            hash_fetches: self.hash_fetches - earlier.hash_fetches,
            extra_data_fetches: self.extra_data_fetches - earlier.extra_data_fetches,
            verifications: self.verifications - earlier.verifications,
            writebacks: self.writebacks - earlier.writebacks,
            alloc_no_fetch: self.alloc_no_fetch - earlier.alloc_no_fetch,
            read_buffer_wait: self.read_buffer_wait - earlier.read_buffer_wait,
            write_buffer_wait: self.write_buffer_wait - earlier.write_buffer_wait,
            miss_latency: self.miss_latency - earlier.miss_latency,
            misses_timed: self.misses_timed - earlier.misses_timed,
        }
    }

    /// Total memory block loads attributable to verification, i.e. loads
    /// beyond the demand data fetches (the Figure 5a numerator).
    pub fn extra_loads(&self) -> u64 {
        self.hash_fetches + self.extra_data_fetches
    }

    /// Average demand-miss service latency in cycles.
    pub fn avg_miss_latency(&self) -> f64 {
        if self.misses_timed == 0 {
            0.0
        } else {
            self.miss_latency as f64 / self.misses_timed as f64
        }
    }
}

/// One event in the checker's optional probe log (for timelines like the
/// paper's Figure 2 datapath walk-through).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckerEvent {
    /// A demand data block was requested from memory.
    DemandFetch {
        /// Physical block address.
        addr: u64,
        /// Cycle the block arrives.
        arrives: Cycle,
    },
    /// A hash-chunk block was requested from memory.
    HashFetch {
        /// Physical block address.
        addr: u64,
        /// Cycle the block arrives.
        arrives: Cycle,
    },
    /// A chunk's digest was scheduled on the hash unit.
    HashScheduled {
        /// Chunk number.
        chunk: u64,
        /// Cycle the digest is ready.
        done: Cycle,
    },
    /// A chunk's verification (hash + parent compare) completed.
    VerifyComplete {
        /// Chunk number.
        chunk: u64,
        /// Completion cycle.
        done: Cycle,
    },
    /// A dirty line's write-back was serviced.
    WriteBack {
        /// Physical block address.
        addr: u64,
        /// Cycle all its effects (data write + hash update) are done.
        done: Cycle,
    },
}

/// One tampering detection recorded by the timing checker: a background
/// verification that covered an adversary-corrupted memory block (or a
/// chunk whose incremental MAC was poisoned by an unchecked old-value
/// read, §5.4) and therefore fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TamperDetection {
    /// Cycle the failing verification completed — when the exception of
    /// §5.8 would be raised.
    pub cycle: Cycle,
    /// Chunk whose check failed.
    pub chunk: u64,
    /// Physical block address implicated.
    pub addr: u64,
}

/// A pool of buffer entries, each held until a completion time.
///
/// `acquire` *reserves* a slot immediately (marking it busy forever until
/// `occupy` sets the real release time), so nested acquisitions — a miss
/// acquiring an entry, then its recursive parent fetch acquiring another
/// before the first is released — see a consistent occupancy count.
#[derive(Debug, Clone)]
struct BufferPool {
    /// Release time per slot; `Cycle::MAX` marks a reserved slot whose
    /// completion is not yet known.
    slots: Vec<Cycle>,
}

/// Token for a reserved buffer slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotId(usize);

/// Core-latency decomposition of one serviced miss, handed back by the
/// per-scheme miss paths so [`L2Controller::access`] can attribute every
/// cycle of `ready - now` to exactly one leaf span (the conservation
/// invariant asserted by `miv-sim`'s profiler tests).
#[derive(Debug, Clone, Copy)]
struct MissShape {
    /// Whether this miss ran the verification machinery (classifies the
    /// access as a verified miss rather than a clean one).
    verified: bool,
    /// Bus timing of the demand-block fetch; `None` when the miss needed
    /// no memory read (write-allocate-no-fetch).
    demand: Option<BusTiming>,
    /// Cycle the full chunk image had arrived (equals the demand
    /// completion when no sibling blocks were gathered).
    chunk_arrival: Cycle,
    /// Cycle the demand data was accepted into the read buffer and
    /// returned to the core (speculative return point).
    data_ready: Cycle,
}

impl MissShape {
    /// A miss serviced entirely inside the L2 (no memory traffic).
    fn local(verified: bool, t0: Cycle) -> Self {
        MissShape {
            verified,
            demand: None,
            chunk_arrival: t0,
            data_ready: t0,
        }
    }
}

impl BufferPool {
    fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer needs at least one entry");
        BufferPool {
            slots: vec![0; capacity],
        }
    }

    /// Reserves the earliest-free slot for a request arriving at `now`;
    /// returns the cycle the slot is usable and its token. Pair with
    /// [`occupy`](Self::occupy).
    fn acquire(&mut self, now: Cycle) -> (Cycle, SlotId) {
        let (idx, release) = self
            .slots
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(_, r)| *r)
            .expect("capacity >= 1");
        assert_ne!(
            release,
            Cycle::MAX,
            "all buffer entries reserved by in-flight operations"
        );
        self.slots[idx] = Cycle::MAX;
        (now.max(release), SlotId(idx))
    }

    /// Books the reserved slot until `until`.
    fn occupy(&mut self, slot: SlotId, until: Cycle) {
        debug_assert_eq!(self.slots[slot.0], Cycle::MAX, "slot not reserved");
        self.slots[slot.0] = until;
    }
}

/// The unified L2 plus integrated hash-tree machinery.
///
/// # Examples
///
/// ```
/// use miv_cache::CacheConfig;
/// use miv_core::timing::{CheckerConfig, L2Controller, Scheme};
/// use miv_mem::MemoryBusConfig;
///
/// let mut ctl = L2Controller::new(
///     CheckerConfig::hpca03(Scheme::CHash),
///     CacheConfig::l2(1 << 20, 64),
///     MemoryBusConfig::default(),
/// );
/// // A cold read misses, fetches the block and starts verifying.
/// let ready = ctl.access(0, 0x4000, false, false);
/// assert!(ready > 0);
/// assert!(ctl.verification_horizon() >= ready);
/// ```
#[derive(Debug)]
pub struct L2Controller {
    config: CheckerConfig,
    layout: Option<TreeLayout>,
    l2: Cache,
    bus: MemoryBus,
    engine: HashEngine,
    read_buf: BufferPool,
    write_buf: BufferPool,
    verify_horizon: Cycle,
    stats: CheckerStats,
    /// Dirty evictions awaiting write-back, processed iteratively (a
    /// write-back's fills may evict further dirty lines; queueing instead
    /// of recursing bounds the stack while the depth-potential argument
    /// bounds the queue).
    pending: Vec<(Cycle, Eviction)>,
    /// Optional event log (enabled by [`enable_probe`](Self::enable_probe)).
    probe: Option<Vec<CheckerEvent>>,
    /// Adversary-corrupted memory blocks not yet overwritten by a
    /// write-back (the timing model carries no bytes, so tampering is
    /// tracked as taint; membership-only use keeps runs deterministic).
    tainted: BTreeSet<u64>,
    /// Chunks whose incremental MAC was updated from a tainted old value
    /// (the §5.4 unchecked read): every later full check of them fails.
    mac_inconsistent: BTreeSet<u64>,
    /// Tamper detections recorded so far, in recording order.
    detections: Vec<TamperDetection>,
    /// Telemetry: uncached tree levels walked per demand-miss check.
    walk_depth: Histogram,
    /// Telemetry: typed event stream (misses, walks, write-backs).
    events: EventSink,
    /// Telemetry: per-access-class service-latency histograms
    /// (`checker.latency.{hit,clean_miss,verified_miss,flush}`).
    lat_hit: Histogram,
    lat_clean_miss: Histogram,
    lat_verified_miss: Histogram,
    lat_flush: Histogram,
    /// Cycle-attribution tracer (disabled unless a profiler attaches).
    spans: SpanTracer,
    /// Core-visible cycles serviced so far: Σ `ready - now` per access
    /// plus Σ `done - now` per quiesce. The span profiler attributes
    /// exactly these cycles under its access-class roots.
    profiled_cycles: Cycle,
}

impl L2Controller {
    /// Builds a controller.
    ///
    /// # Panics
    ///
    /// Panics if the chunk geometry is inconsistent with the scheme or
    /// the L2 line size. Fallible callers (anything validating a
    /// user-supplied spec) use [`try_new`](Self::try_new) instead.
    pub fn new(config: CheckerConfig, l2: CacheConfig, bus: MemoryBusConfig) -> Self {
        Self::try_new(config, l2, bus).expect("documented invariant")
    }

    /// The fallible form of [`new`](Self::new): returns a
    /// [`ConfigError`] instead of panicking when the chunk geometry is
    /// inconsistent with the scheme or the L2 line size. This is the
    /// construction path for user-supplied specs (`mivsim serve` shard
    /// specs, `mivsim profile` geometry).
    pub fn try_new(
        config: CheckerConfig,
        l2: CacheConfig,
        bus: MemoryBusConfig,
    ) -> Result<Self, ConfigError> {
        let layout = if config.scheme.verifies() {
            let line = l2.line_bytes;
            match config.scheme {
                Scheme::Naive | Scheme::CHash => {
                    if config.chunk_bytes != line {
                        return Err(ConfigError::ChunkLineMismatch {
                            scheme: config.scheme,
                            chunk_bytes: config.chunk_bytes,
                            line_bytes: line,
                        });
                    }
                }
                Scheme::MHash | Scheme::IHash => {
                    if config.chunk_bytes <= line || !config.chunk_bytes.is_multiple_of(line) {
                        return Err(ConfigError::SingleBlockChunk {
                            scheme: config.scheme,
                            chunk_bytes: config.chunk_bytes,
                            line_bytes: line,
                        });
                    }
                }
                Scheme::Base => unreachable!("Base never verifies"),
            }
            Some(TreeLayout::try_new(
                config.protected_bytes,
                config.chunk_bytes,
                line,
            )?)
        } else {
            None
        };
        Ok(L2Controller {
            l2: Cache::with_policy(l2, config.l2_policy),
            bus: MemoryBus::new(bus),
            engine: HashEngine::new(config.hash),
            read_buf: BufferPool::new(config.buffer_entries as usize),
            write_buf: BufferPool::new(config.buffer_entries as usize),
            verify_horizon: 0,
            stats: CheckerStats::default(),
            pending: Vec::new(),
            probe: None,
            tainted: BTreeSet::new(),
            mac_inconsistent: BTreeSet::new(),
            detections: Vec::new(),
            walk_depth: Histogram::disabled(),
            events: EventSink::disabled(),
            lat_hit: Histogram::disabled(),
            lat_clean_miss: Histogram::disabled(),
            lat_verified_miss: Histogram::disabled(),
            lat_flush: Histogram::disabled(),
            spans: SpanTracer::disabled(),
            profiled_cycles: 0,
            config,
            layout,
        })
    }

    /// Attaches telemetry to every component the controller owns: L2
    /// counters under `l2.*`, bus counters under `bus.*`, hash-unit
    /// metrics under `hash_unit.*`, a `checker.walk_depth` histogram, and
    /// typed events (L2 misses, tree walks, hash-queue activity,
    /// write-backs) into `events`.
    pub fn attach_observability(&mut self, registry: &Registry, events: EventSink) {
        self.l2
            .set_observer(CacheObserver::for_registry(registry, "l2"));
        self.bus
            .set_observer(BusObserver::for_registry(registry, "bus"));
        self.engine.set_observer(HashUnitObserver::for_registry(
            registry,
            "hash_unit",
            events.clone(),
        ));
        self.walk_depth = registry.histogram("checker.walk_depth");
        self.lat_hit = registry.histogram("checker.latency.hit");
        self.lat_clean_miss = registry.histogram("checker.latency.clean_miss");
        self.lat_verified_miss = registry.histogram("checker.latency.verified_miss");
        self.lat_flush = registry.histogram("checker.latency.flush");
        self.events = events;
    }

    /// Attaches a cycle-attribution tracer. Every serviced access then
    /// attributes its full core-visible latency to leaf spans under an
    /// access-class root (`hit` / `clean_miss` / `verified_miss` /
    /// `flush`), and resource occupancy (hash-unit busy windows, bus
    /// transfers) is booked under `background;*` — those windows overlap
    /// the accesses they serve, so they form a separate accounting
    /// domain cross-checked against [`HashUnitStats::busy_cycles`] and
    /// [`bus_busy_through`](Self::bus_busy_through).
    ///
    /// [`HashUnitStats::busy_cycles`]: crate::hash_unit::HashUnitStats::busy_cycles
    pub fn attach_spans(&mut self, spans: &SpanTracer) {
        self.spans = spans.clone();
    }

    /// Core-visible cycles serviced so far: the sum over every
    /// [`access`](Self::access) of `ready - now`, plus every
    /// [`quiesce`](Self::quiesce)'s `done - now`. An attached span
    /// tracer attributes exactly these cycles under its access-class
    /// roots (the profiler's conservation invariant). Cumulative for the
    /// controller's lifetime — deliberately *not* cleared by
    /// [`reset_stats`](Self::reset_stats), matching the tracer, which is
    /// never reset either.
    pub fn total_cycles(&self) -> Cycle {
        self.profiled_cycles
    }

    /// Starts recording [`CheckerEvent`]s (clears any previous log).
    ///
    /// Intended for walk-throughs and tests; the log grows with every
    /// event, so keep probed runs short.
    pub fn enable_probe(&mut self) {
        self.probe = Some(Vec::new());
    }

    /// Stops recording and returns the captured events.
    pub fn take_probe(&mut self) -> Vec<CheckerEvent> {
        self.probe.take().unwrap_or_default()
    }

    fn emit(&mut self, event: CheckerEvent) {
        if let Some(log) = &mut self.probe {
            log.push(event);
        }
    }

    /// The tree layout (`None` for [`Scheme::Base`]).
    pub fn layout(&self) -> Option<&TreeLayout> {
        self.layout.as_ref()
    }

    /// The checker configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// L2 cache statistics (data/hash split).
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// The L2 geometry.
    pub fn l2_config(&self) -> &CacheConfig {
        self.l2.config()
    }

    /// L2 occupancy `(data lines, hash lines)`.
    pub fn l2_occupancy(&self) -> (u64, u64) {
        self.l2.occupancy()
    }

    /// Memory-bus statistics.
    pub fn bus_stats(&self) -> &miv_mem::BusStats {
        self.bus.stats()
    }

    /// Bus-busy cycles that have elapsed by cycle `t` (a transfer
    /// straddling `t` counts only up to `t`). Deltas between successive
    /// queries never exceed the wall-clock cycles between them, giving
    /// exact per-interval bus utilization.
    pub fn bus_busy_through(&self, t: Cycle) -> u64 {
        self.bus.busy_cycles_through(t)
    }

    /// Hash-unit statistics.
    pub fn engine_stats(&self) -> crate::hash_unit::HashUnitStats {
        self.engine.stats()
    }

    /// Checker activity counters.
    pub fn stats(&self) -> CheckerStats {
        self.stats
    }

    /// The cycle by which every verification issued so far completes.
    pub fn verification_horizon(&self) -> Cycle {
        self.verify_horizon
    }

    /// Marks `len` bytes of untrusted memory at physical address `phys`
    /// as adversary-corrupted — the injection hook between the checker
    /// and memory. Every block overlapping the range carries taint until
    /// the checker itself overwrites it; a verification that covers a
    /// tainted block records a [`TamperDetection`] (and an
    /// `integrity_violation` event) at its completion cycle.
    ///
    /// [`Scheme::Base`] never verifies, so it never detects.
    pub fn inject_tamper(&mut self, phys: u64, len: u64) {
        let line = self.line_bytes();
        let first = phys & !(line - 1);
        let last = (phys + len.max(1) - 1) & !(line - 1);
        let mut b = first;
        loop {
            self.tainted.insert(b);
            if b == last {
                break;
            }
            b += line;
        }
    }

    /// Tamper detections recorded so far, in recording order.
    pub fn tamper_detections(&self) -> &[TamperDetection] {
        &self.detections
    }

    /// The detection with the earliest completion cycle, if any.
    pub fn first_detection(&self) -> Option<TamperDetection> {
        self.detections.iter().copied().min_by_key(|d| d.cycle)
    }

    /// Writes every dirty L2 line back through the scheme's verified
    /// write-back path and drops the whole cache — the timing-side
    /// counterpart of [`VerifiedMemory::clear_cache`] (a context switch
    /// or cache-flush instruction). Returns the cycle by which the flush
    /// traffic has been issued and verified.
    ///
    /// Clean tainted lines are simply dropped: the corruption stays in
    /// memory and is caught (and timed) by the next fetch. Dirty lines
    /// go through the normal write-back machinery first, which checks
    /// old content *before* overwriting it, so taint under a dirty line
    /// is detected rather than silently healed.
    ///
    /// [`VerifiedMemory::clear_cache`]: crate::engine::VerifiedMemory::clear_cache
    pub fn quiesce(&mut self, now: Cycle) -> Cycle {
        for ev in self.l2.flush() {
            if ev.dirty {
                self.pending.push((now, ev));
            }
        }
        self.drain_writebacks();
        let done = self.verify_horizon.max(now);
        self.profiled_cycles += done - now;
        self.lat_flush.record(done - now);
        if self.spans.is_enabled() {
            let _root = self.spans.span("flush");
            let _leaf = self.spans.span("verify_drain");
            self.spans.attribute(done - now);
        }
        done
    }

    /// Clears all statistics for warm-up/measurement separation. Cache
    /// contents, buffer reservations, and the bus/hash-unit pipelines are
    /// all preserved: background traffic booked before the reset still
    /// contends with later requests, so a run split around a
    /// `reset_stats` times identically to an uninterrupted one — only the
    /// counters restart.
    pub fn reset_stats(&mut self) {
        self.l2.reset_stats();
        self.bus.reset_stats();
        self.engine.reset_stats();
        self.stats = CheckerStats::default();
    }

    /// Services an L1 miss for program-data address `addr` at `now`.
    ///
    /// Returns the cycle the data is available to the core (speculative:
    /// verification may still be in flight — see
    /// [`verification_horizon`](Self::verification_horizon)).
    ///
    /// # Panics
    ///
    /// Panics if `addr` lies outside the protected segment.
    pub fn access(&mut self, now: Cycle, addr: u64, write: bool, full_line: bool) -> Cycle {
        let phys = self.phys_addr(addr);
        let t0 = now + self.config.l2_latency;
        // The core issues accesses in time order and every background
        // operation derives its timestamp from this access, so nothing in
        // the future can be ready before `now`: let the arbiters prune.
        self.bus.advance_low_water(now);
        self.engine.advance_low_water(now);
        if self.l2.lookup(phys, LineKind::Data, write).is_hit() {
            self.profiled_cycles += t0 - now;
            self.lat_hit.record(t0 - now);
            if self.spans.is_enabled() {
                let _root = self.spans.span("hit");
                let _leaf = self.spans.span("l2_lookup");
                self.spans.attribute(t0 - now);
            }
            return t0;
        }
        self.events.record(
            now,
            SimEvent::L2Miss {
                class: LineClass::Data,
                write,
                addr: phys,
            },
        );
        let (ready, shape) = match self.config.scheme {
            Scheme::Base => self.miss_base(t0, phys, write, full_line),
            Scheme::Naive => self.miss_naive(t0, phys, write, full_line),
            Scheme::CHash | Scheme::MHash | Scheme::IHash => {
                self.miss_cached_tree(t0, phys, write, full_line)
            }
        };
        self.stats.miss_latency += ready - now;
        self.stats.misses_timed += 1;
        self.profile_miss(now, t0, ready, &shape);
        self.drain_writebacks();
        ready
    }

    /// Records a miss's service latency into its class histogram and —
    /// when a tracer is attached — attributes every cycle of
    /// `ready - now` to exactly one leaf span. The decomposition
    /// telescopes: L2 lookup, then (when a demand fetch went to memory)
    /// DRAM access, bus queueing and the transfer itself, then sibling
    /// gathering for multi-block chunks, the read-buffer wait, and
    /// finally the verify stall (nonzero only under `block_on_verify`).
    fn profile_miss(&mut self, now: Cycle, t0: Cycle, ready: Cycle, shape: &MissShape) {
        let total = ready - now;
        self.profiled_cycles += total;
        if shape.verified {
            self.lat_verified_miss.record(total);
        } else {
            self.lat_clean_miss.record(total);
        }
        if !self.spans.is_enabled() {
            return;
        }
        let _root = self.spans.span(if shape.verified {
            "verified_miss"
        } else {
            "clean_miss"
        });
        {
            let _leaf = self.spans.span("l2_lookup");
            self.spans.attribute(t0 - now);
        }
        if let Some(demand) = &shape.demand {
            let _fetch = self.spans.span("demand_fetch");
            let dram_ready = t0 + self.bus.config().dram_latency;
            {
                let _leaf = self.spans.span("dram");
                self.spans.attribute(dram_ready - t0);
            }
            {
                let _leaf = self.spans.span("bus_queue");
                self.spans.attribute(demand.start - dram_ready);
            }
            {
                let _leaf = self.spans.span("bus_transfer");
                self.spans.attribute(demand.complete - demand.start);
            }
            {
                let _leaf = self.spans.span("chunk_gather");
                self.spans.attribute(shape.chunk_arrival - demand.complete);
            }
        }
        {
            let _leaf = self.spans.span("read_buffer_wait");
            self.spans.attribute(shape.data_ready - shape.chunk_arrival);
        }
        if ready > shape.data_ready {
            let _leaf = self.spans.span("verify_stall");
            self.spans.attribute(ready - shape.data_ready);
        }
    }

    /// Processes queued dirty evictions until none remain. Write-backs may
    /// fill parent lines and evict further dirty lines; each iteration
    /// strictly decreases the summed tree depth of dirty lines, so the
    /// queue drains.
    fn drain_writebacks(&mut self) {
        while let Some((t, ev)) = self.pending.pop() {
            self.stats.writebacks += 1;
            self.events.record(
                t,
                SimEvent::WriteBack {
                    class: line_class(ev.kind),
                    addr: ev.addr,
                },
            );
            match self.config.scheme {
                Scheme::Base => {
                    self.bus_write(t, class_for(ev.kind, false));
                    self.clear_taint(ev.addr);
                }
                Scheme::Naive => self.writeback_naive(t, ev.addr),
                Scheme::CHash | Scheme::MHash | Scheme::IHash => self.writeback_cached_tree(t, ev),
            }
        }
    }

    /// Maps a data address into the physical (hash + data) segment.
    fn phys_addr(&self, addr: u64) -> u64 {
        match &self.layout {
            Some(layout) => layout.data_phys_addr(addr),
            None => addr,
        }
    }

    // ------------------------------------------------------------------
    // Base scheme
    // ------------------------------------------------------------------

    fn miss_base(
        &mut self,
        t0: Cycle,
        phys: u64,
        write: bool,
        full_line: bool,
    ) -> (Cycle, MissShape) {
        if write && full_line && self.config.write_allocate_no_fetch {
            self.stats.alloc_no_fetch += 1;
            self.fill_and_handle_eviction(t0, phys, LineKind::Data, true);
            return (t0, MissShape::local(false, t0));
        }
        self.stats.data_fetches += 1;
        let timing = self.bus_read(t0, TrafficClass::DataRead);
        self.fill_and_handle_eviction(timing.complete, phys, LineKind::Data, write);
        (
            timing.complete,
            MissShape {
                verified: false,
                demand: Some(timing),
                chunk_arrival: timing.complete,
                data_ready: timing.complete,
            },
        )
    }

    // ------------------------------------------------------------------
    // Naive scheme: full path walked in memory on every miss
    // ------------------------------------------------------------------

    fn miss_naive(
        &mut self,
        t0: Cycle,
        phys: u64,
        write: bool,
        full_line: bool,
    ) -> (Cycle, MissShape) {
        let layout = *self.layout.as_ref().expect("naive has a layout");
        let chunk = layout.chunk_of_addr(phys);
        if write && full_line && self.config.write_allocate_no_fetch {
            // The whole chunk (== block here) is overwritten: no fetch, no
            // check (§5.3). The write-back will update the tree.
            self.stats.alloc_no_fetch += 1;
            self.fill_and_handle_eviction(t0, phys, LineKind::Data, true);
            return (t0, MissShape::local(false, t0));
        }

        // Demand block: the memory read is issued immediately; the hash
        // read buffer holds the block once it *arrives*, so a full buffer
        // delays acceptance of the data (§6.4: "checking the integrity of
        // data hurts memory latency only when read/write buffers are
        // full"), not the issue of the request.
        self.stats.data_fetches += 1;
        let data = self.bus_read(t0, TrafficClass::DataRead);
        self.emit(CheckerEvent::DemandFetch {
            addr: phys,
            arrives: data.complete,
        });
        let (vstart, slot) = self.acquire_read_buf(data.complete);

        // Hash path: every ancestor chunk is loaded from memory and the
        // whole chain hashed — log_m(N) extra reads per miss.
        self.events.record(vstart, SimEvent::WalkStart { chunk });
        let mut depth = 0u32;
        let mut level_arrival = vstart;
        let mut verify_done = self.schedule_chunk_hash(vstart, layout.chunk_bytes(), "verify");
        self.stats.verifications += 1;
        let mut covered = vec![self.block_addr(phys)];
        for ancestor in layout.path_to_root(chunk) {
            depth += 1;
            self.stats.hash_fetches += self.blocks_per_chunk();
            let mut chunk_arrival = level_arrival;
            for j in 0..self.blocks_per_chunk() {
                covered.push(layout.chunk_addr(ancestor) + j * self.line_bytes());
                let t = self.bus_read(t0, TrafficClass::HashRead);
                chunk_arrival = chunk_arrival.max(t.complete);
            }
            self.stats.verifications += 1;
            let h = self.schedule_chunk_hash(chunk_arrival, layout.chunk_bytes(), "verify");
            verify_done = verify_done.max(h);
            level_arrival = chunk_arrival;
        }
        self.walk_depth.record(depth as u64);
        self.events.record(
            verify_done,
            SimEvent::WalkEnd {
                chunk,
                depth,
                reached_root: true,
            },
        );
        // The naive walk re-reads the demand block and every ancestor
        // from memory, so corruption anywhere on the path fails here.
        self.verify_tamper(verify_done, chunk, &covered);
        self.read_buf.occupy(slot, verify_done);
        self.note_verification(verify_done);

        let data_ready = data.complete.max(vstart);
        self.fill_and_handle_eviction(data_ready, phys, LineKind::Data, write);
        let shape = MissShape {
            verified: true,
            demand: Some(data),
            chunk_arrival: data.complete,
            data_ready,
        };
        if self.config.block_on_verify {
            (verify_done, shape)
        } else {
            (data_ready, shape)
        }
    }

    /// Naive write-back: read-modify-write every ancestor chunk.
    fn writeback_naive(&mut self, t: Cycle, phys: u64) {
        let layout = *self.layout.as_ref().expect("naive has a layout");
        let chunk = layout.chunk_of_addr(phys);
        let (start, slot) = self.acquire_write_buf(t);
        // New hash of the written chunk.
        let mut prev_hash_done = self.schedule_chunk_hash(start, layout.chunk_bytes(), "writeback");
        let data_written = self.bus_write(start, TrafficClass::DataWrite);
        let block = self.block_addr(phys);
        self.clear_taint(block);
        let mut done = data_written.complete.max(prev_hash_done);
        for ancestor in layout.path_to_root(chunk) {
            // Fetch the ancestor, splice in the child's new hash, verify
            // the old content, write it back.
            self.stats.hash_fetches += self.blocks_per_chunk();
            let mut arrival = start;
            let mut blocks = Vec::new();
            for j in 0..self.blocks_per_chunk() {
                blocks.push(layout.chunk_addr(ancestor) + j * self.line_bytes());
                let t = self.bus_read(start, TrafficClass::HashRead);
                arrival = arrival.max(t.complete);
            }
            self.stats.verifications += 1;
            let verified = self.schedule_chunk_hash(arrival, layout.chunk_bytes(), "verify");
            // The old ancestor content is checked before the rewrite, so
            // taint on it is detected *before* the write-back heals it.
            self.verify_tamper(verified, ancestor, &blocks);
            for &b in &blocks {
                self.clear_taint(b);
            }
            let rehash = self.schedule_chunk_hash(
                verified.max(prev_hash_done),
                layout.chunk_bytes(),
                "writeback",
            );
            let wb = self.bus_write(rehash, TrafficClass::HashWrite);
            prev_hash_done = rehash;
            done = done.max(wb.complete).max(rehash);
        }
        self.write_buf.occupy(slot, done);
        self.note_verification(done);
    }

    // ------------------------------------------------------------------
    // Cached-tree schemes (chash / mhash / ihash)
    // ------------------------------------------------------------------

    fn miss_cached_tree(
        &mut self,
        t0: Cycle,
        phys: u64,
        write: bool,
        full_line: bool,
    ) -> (Cycle, MissShape) {
        let layout = *self.layout.as_ref().expect("scheme has a layout");
        if write
            && full_line
            && self.config.write_allocate_no_fetch
            && layout.blocks_per_chunk() == 1
        {
            // Whole-chunk overwrite: allocate dirty, no fetch, no check.
            self.stats.alloc_no_fetch += 1;
            self.fill_and_handle_eviction(t0, phys, LineKind::Data, true);
            return (t0, MissShape::local(false, t0));
        }
        let chunk = layout.chunk_of_addr(phys);
        let block = self.block_addr(phys);

        if write && full_line && self.config.write_allocate_no_fetch {
            // Multi-block chunk: the target block is fully overwritten, so
            // it allocates dirty without a fetch; the chunk check happens
            // at write-back when the full image is assembled.
            self.stats.alloc_no_fetch += 1;
            self.fill_and_handle_eviction(t0, phys, LineKind::Data, true);
            return (t0, MissShape::local(false, t0));
        }

        // ReadAndCheckChunk: fetch the demand block plus any chunk blocks
        // not resident (clean blocks can be served from the cache; dirty
        // blocks must be re-read from memory for the check). Memory reads
        // issue immediately; the read buffer holds the chunk from arrival
        // until its hash completes, so a full buffer delays acceptance of
        // the arriving data, not the issue of the request.
        let mut demand_arrival = t0;
        let mut demand_timing = None;
        let mut chunk_arrival = t0;
        let mut gathered = Vec::new();
        for j in 0..layout.blocks_per_chunk() {
            let b = layout.chunk_addr(chunk) + j as u64 * self.line_bytes();
            let resident_clean = self.l2.dirty(b) == Some(false);
            if b == block || !resident_clean {
                gathered.push(b);
                let class = if b == block {
                    self.stats.data_fetches += 1;
                    TrafficClass::DataRead
                } else {
                    self.stats.extra_data_fetches += 1;
                    TrafficClass::DataRead
                };
                let t = self.bus_read(t0, class);
                if b == block {
                    demand_arrival = t.complete;
                    demand_timing = Some(t);
                    self.emit(CheckerEvent::DemandFetch {
                        addr: b,
                        arrives: t.complete,
                    });
                }
                chunk_arrival = chunk_arrival.max(t.complete);
            }
        }
        let (vstart, slot) = self.acquire_read_buf(chunk_arrival);
        let data_ready = demand_arrival.max(vstart);

        // Fill the demand block (dirty if write) and the chunk's other
        // absent blocks (clean).
        self.fill_and_handle_eviction(data_ready, block, LineKind::Data, write);
        for j in 0..layout.blocks_per_chunk() {
            let b = layout.chunk_addr(chunk) + j as u64 * self.line_bytes();
            if b != block && !self.l2.contains(b) {
                self.fill_and_handle_eviction(vstart.max(chunk_arrival), b, LineKind::Data, false);
            }
        }

        // Background verification: hash the chunk and compare against the
        // (cached or fetched) parent slot. The buffer entry holds the
        // block while it is hashed; the parent fetch acquires its own
        // entries, so the slot is released at hash completion.
        self.stats.verifications += 1;
        let hash_done = self.schedule_chunk_hash(vstart, layout.chunk_bytes(), "verify");
        self.emit(CheckerEvent::HashScheduled {
            chunk,
            done: hash_done,
        });
        self.read_buf.occupy(slot, hash_done);
        self.events.record(vstart, SimEvent::WalkStart { chunk });
        let (parent_at, depth, reached_root) = self.fetch_slot(vstart, chunk, false);
        let verify_done = hash_done.max(parent_at);
        self.walk_depth.record(depth as u64);
        self.events.record(
            verify_done,
            SimEvent::WalkEnd {
                chunk,
                depth,
                reached_root,
            },
        );
        self.emit(CheckerEvent::VerifyComplete {
            chunk,
            done: verify_done,
        });
        // Only the blocks actually read from memory can expose taint;
        // resident-clean blocks are served from the (trusted) cache and
        // their corrupted memory copies wait for a later refetch.
        self.verify_tamper(verify_done, chunk, &gathered);
        self.note_verification(verify_done);

        let shape = MissShape {
            verified: true,
            demand: demand_timing,
            chunk_arrival,
            data_ready,
        };
        if self.config.block_on_verify {
            (verify_done, shape)
        } else {
            (data_ready, shape)
        }
    }

    /// Makes chunk `chunk`'s slot available, returning `(ready, depth,
    /// reached_root)`: the cycle it can be compared (a root register read,
    /// an L2 hash-line hit, or a recursive fetch of the parent chunk,
    /// which verifies in the background), the number of uncached tree
    /// levels the walk fetched, and whether it climbed to the secure root.
    ///
    /// With `for_update` the slot line is dirtied (a write-back storing a
    /// new hash).
    fn fetch_slot(&mut self, t: Cycle, chunk: u64, for_update: bool) -> (Cycle, u32, bool) {
        let layout = *self.layout.as_ref().expect("scheme has a layout");
        match layout.parent(chunk) {
            ParentRef::Secure { .. } => (t, 0, true), // root register: immediate
            ParentRef::Chunk {
                chunk: parent,
                index,
            } => {
                let slot_byte = layout.chunk_addr(parent) + layout.slot_offset(index) as u64;
                let slot_block = self.block_addr(slot_byte);
                if self
                    .l2
                    .lookup(slot_block, LineKind::Hash, for_update)
                    .is_hit()
                {
                    return (t + self.config.l2_latency, 0, false);
                }
                // Miss: fetch the parent chunk's blocks from memory, fill
                // them as hash lines, verify the parent in the background.
                let mut arrival = t;
                let mut slot_arrival = t;
                let mut gathered = Vec::new();
                for j in 0..layout.blocks_per_chunk() {
                    let b = layout.chunk_addr(parent) + j as u64 * self.line_bytes();
                    let resident_clean = self.l2.dirty(b) == Some(false);
                    if b == slot_block || !resident_clean {
                        gathered.push(b);
                        self.stats.hash_fetches += 1;
                        let bt = self.bus_read(t, TrafficClass::HashRead);
                        self.emit(CheckerEvent::HashFetch {
                            addr: b,
                            arrives: bt.complete,
                        });
                        if b == slot_block {
                            slot_arrival = bt.complete;
                        }
                        arrival = arrival.max(bt.complete);
                    }
                }
                let (vstart, slot) = self.acquire_read_buf(arrival);
                let slot_ready = slot_arrival.max(vstart);
                self.fill_and_handle_eviction(slot_ready, slot_block, LineKind::Hash, for_update);
                for j in 0..layout.blocks_per_chunk() {
                    let b = layout.chunk_addr(parent) + j as u64 * self.line_bytes();
                    if b != slot_block && !self.l2.contains(b) {
                        self.fill_and_handle_eviction(vstart, b, LineKind::Hash, false);
                    }
                }
                // Verify the parent chunk itself (recursing toward the
                // root until a cached node or the root register is found).
                self.stats.verifications += 1;
                let hash_done = self.schedule_chunk_hash(vstart, layout.chunk_bytes(), "verify");
                self.emit(CheckerEvent::HashScheduled {
                    chunk: parent,
                    done: hash_done,
                });
                self.read_buf.occupy(slot, hash_done);
                let (grand, depth, reached_root) = self.fetch_slot(vstart, parent, false);
                let verify_done = hash_done.max(grand);
                self.emit(CheckerEvent::VerifyComplete {
                    chunk: parent,
                    done: verify_done,
                });
                // Corrupted hash-chunk blocks (metadata attacks) fail the
                // parent's own verification here.
                self.verify_tamper(verify_done, parent, &gathered);
                self.note_verification(verify_done);
                (slot_ready, depth + 1, reached_root)
            }
        }
    }

    /// Write-back for the cached-tree schemes.
    fn writeback_cached_tree(&mut self, t: Cycle, ev: Eviction) {
        let layout = *self.layout.as_ref().expect("scheme has a layout");
        let chunk = layout.chunk_of_addr(ev.addr);
        let (start, slot) = self.acquire_write_buf(t);

        if self.config.scheme == Scheme::IHash {
            // §5.4: read the parent MAC (checked), read the old block
            // value (unchecked), two PRF computations + PRP update, write
            // the block, store the new MAC.
            let (slot_at, _, _) = self.fetch_slot(start, chunk, true);
            self.stats.extra_data_fetches += 1;
            let old = self.bus_read(start, class_for(ev.kind, true));
            // The old-value read is *unchecked* (the scheme's whole
            // advantage): a tainted old value silently poisons the
            // incremental MAC update, so the corruption migrates from the
            // block to the chunk's MAC and every later full check fails.
            if self.tainted.remove(&ev.addr) {
                self.mac_inconsistent.insert(chunk);
            }
            // h(old) and h(new): two independent block-sized hashes,
            // issued as one multi-lane batch (timing-identical to a fused
            // 2-block hash; accounted as two ops).
            let upd = self.schedule_hash_batch(
                old.complete.max(slot_at),
                &[self.line_bytes(), self.line_bytes()],
                "mac_update",
            );
            let wb = self.bus_write(upd, class_for(ev.kind, false));
            let done = wb.complete.max(upd);
            self.write_buf.occupy(slot, done);
            self.emit(CheckerEvent::WriteBack {
                addr: ev.addr,
                done,
            });
            self.note_verification(done);
            return;
        }

        // chash / mhash: assemble the chunk (fetch + check any blocks not
        // resident), write the dirty blocks, hash the new image, store it
        // in the parent through a normal Write.
        let mut arrival = start;
        let mut fetched = 0u64;
        let mut gathered = Vec::new();
        for j in 0..layout.blocks_per_chunk() {
            let b = layout.chunk_addr(chunk) + j as u64 * self.line_bytes();
            if b != ev.addr && !self.l2.contains(b) {
                self.stats.extra_data_fetches += 1;
                fetched += 1;
                gathered.push(b);
                let bt = self.bus_read(start, class_for(ev.kind, true));
                arrival = arrival.max(bt.complete);
            }
        }
        if fetched > 0 {
            // The gathered old image must itself be verified (§5.3).
            self.stats.verifications += 1;
            let h = self.schedule_chunk_hash(arrival, layout.chunk_bytes(), "verify");
            let (p, _, _) = self.fetch_slot(arrival, chunk, false);
            let checked = h.max(p);
            self.verify_tamper(checked, chunk, &gathered);
            self.note_verification(checked);
        }
        // Gathered blocks are sealed into the new chunk hash as read, and
        // the evicted block overwrites its memory copy: any remaining
        // taint on either is no longer observable through this chunk.
        for &b in &gathered {
            self.clear_taint(b);
        }
        self.clear_taint(ev.addr);

        // Write the evicted (dirty) block; sibling dirty blocks stay
        // cached and are written on their own evictions — the hardware
        // marks them clean, but the timing effect of grouping is minor and
        // per-block write-back keeps the cache model simple.
        let hash_done = self.schedule_chunk_hash(arrival, layout.chunk_bytes(), "writeback");
        let wb = self.bus_write(arrival, class_for(ev.kind, false));
        self.write_buf.occupy(slot, wb.complete.max(hash_done));
        let (slot_at, _, _) = self.fetch_slot(hash_done, chunk, true);
        let done = wb.complete.max(hash_done).max(slot_at);
        self.emit(CheckerEvent::WriteBack {
            addr: ev.addr,
            done,
        });
        self.note_verification(done);
    }

    // ------------------------------------------------------------------
    // Shared plumbing
    // ------------------------------------------------------------------

    /// Fills a line; a dirty eviction is queued for write-back (drained
    /// iteratively by [`drain_writebacks`](Self::drain_writebacks)).
    fn fill_and_handle_eviction(&mut self, t: Cycle, addr: u64, kind: LineKind, dirty: bool) {
        if self.l2.contains(addr) {
            // Concurrent background activity already brought it in.
            if dirty {
                self.l2.mark_dirty(addr);
            }
            return;
        }
        if let Some(ev) = self.l2.fill(addr, kind, dirty) {
            if ev.dirty {
                self.pending.push((t, ev));
            }
        }
    }

    /// Issues a line-sized bus read, booking its bus occupancy
    /// (`complete - start`) under the `background;bus;<class>` resource
    /// span. The sum over those spans equals the bus's busy cycles — the
    /// profiler's resource-domain cross-check.
    fn bus_read(&mut self, t: Cycle, class: TrafficClass) -> BusTiming {
        let timing = self.bus.read(t, self.line_bytes(), class);
        self.spans.attribute_path(
            &["background", "bus", traffic_label(class)],
            timing.complete - timing.start,
        );
        timing
    }

    /// Issues a line-sized bus write; same resource accounting as
    /// [`bus_read`](Self::bus_read).
    fn bus_write(&mut self, t: Cycle, class: TrafficClass) -> BusTiming {
        let timing = self.bus.write(t, self.line_bytes(), class);
        self.spans.attribute_path(
            &["background", "bus", traffic_label(class)],
            timing.complete - timing.start,
        );
        timing
    }

    /// Schedules a chunk hash, booking the hash unit's occupancy delta
    /// under `background;hash_unit;<ctx>` (`ctx` names why the digest is
    /// computed: demand `verify`, write-back rehash, incremental MAC
    /// update). Those spans sum to [`HashUnitStats::busy_cycles`].
    ///
    /// [`HashUnitStats::busy_cycles`]: crate::hash_unit::HashUnitStats::busy_cycles
    fn schedule_chunk_hash(&mut self, t: Cycle, chunk_bytes: u32, ctx: &'static str) -> Cycle {
        let before = self.engine.stats().busy_cycles;
        let done = self.engine.schedule(t, chunk_bytes as u64);
        self.spans.attribute_path(
            &["background", "hash_unit", ctx],
            self.engine.stats().busy_cycles - before,
        );
        done
    }

    /// Batched variant of [`schedule_chunk_hash`](Self::schedule_chunk_hash).
    fn schedule_hash_batch(&mut self, t: Cycle, blocks: &[u64], ctx: &'static str) -> Cycle {
        let before = self.engine.stats().busy_cycles;
        let done = self.engine.schedule_batch(t, blocks);
        self.spans.attribute_path(
            &["background", "hash_unit", ctx],
            self.engine.stats().busy_cycles - before,
        );
        done
    }

    fn acquire_read_buf(&mut self, t: Cycle) -> (Cycle, SlotId) {
        let (start, slot) = self.read_buf.acquire(t);
        self.stats.read_buffer_wait += start - t;
        (start, slot)
    }

    fn acquire_write_buf(&mut self, t: Cycle) -> (Cycle, SlotId) {
        let (start, slot) = self.write_buf.acquire(t);
        self.stats.write_buffer_wait += start - t;
        (start, slot)
    }

    fn note_verification(&mut self, done: Cycle) {
        self.verify_horizon = self.verify_horizon.max(done);
    }

    /// Flags a verification of `chunk` completing at `at` that covered
    /// the given memory `blocks`: if any of them carries taint — or the
    /// chunk's MAC is inconsistent from a poisoned incremental update —
    /// the check fails against the corrupted bytes and the detection is
    /// recorded. Taint is *not* cleared here: the corruption stays in
    /// memory and keeps failing until a write-back overwrites it.
    fn verify_tamper(&mut self, at: Cycle, chunk: u64, blocks: &[u64]) {
        let hit = blocks.iter().copied().find(|b| self.tainted.contains(b));
        if hit.is_none() && !self.mac_inconsistent.contains(&chunk) {
            return;
        }
        let addr = hit.unwrap_or_else(|| self.layout.map_or(0, |l| l.chunk_addr(chunk)));
        self.detections.push(TamperDetection {
            cycle: at,
            chunk,
            addr,
        });
        self.events.record(
            at,
            SimEvent::IntegrityViolation {
                addr,
                chunk,
                scheme: self.config.scheme.label(),
            },
        );
    }

    /// The checker overwrote `block` in memory: any taint it carried is
    /// gone (healed without detection if no check consumed it first).
    fn clear_taint(&mut self, block: u64) {
        self.tainted.remove(&block);
    }

    fn line_bytes(&self) -> u64 {
        self.l2.config().line_bytes as u64
    }

    fn blocks_per_chunk(&self) -> u64 {
        self.layout
            .as_ref()
            .map(|l| l.blocks_per_chunk() as u64)
            .unwrap_or(1)
    }

    fn block_addr(&self, phys: u64) -> u64 {
        phys & !(self.line_bytes() - 1)
    }
}

fn line_class(kind: LineKind) -> LineClass {
    match kind {
        LineKind::Data => LineClass::Data,
        LineKind::Hash => LineClass::Hash,
    }
}

/// Stable span-path label for a bus traffic class.
fn traffic_label(class: TrafficClass) -> &'static str {
    match class {
        TrafficClass::DataRead => "data_read",
        TrafficClass::DataWrite => "data_write",
        TrafficClass::HashRead => "hash_read",
        TrafficClass::HashWrite => "hash_write",
    }
}

fn class_for(kind: LineKind, read: bool) -> TrafficClass {
    match (kind, read) {
        (LineKind::Data, true) => TrafficClass::DataRead,
        (LineKind::Data, false) => TrafficClass::DataWrite,
        (LineKind::Hash, true) => TrafficClass::HashRead,
        (LineKind::Hash, false) => TrafficClass::HashWrite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(scheme: Scheme, l2_kb: u64, line: u32) -> L2Controller {
        let mut cfg = CheckerConfig::hpca03(scheme);
        cfg.chunk_bytes = match scheme {
            Scheme::MHash | Scheme::IHash => line * 2,
            _ => line,
        };
        cfg.protected_bytes = 16 << 20; // keep trees small for tests
        L2Controller::new(
            cfg,
            CacheConfig::l2(l2_kb << 10, line),
            MemoryBusConfig::default(),
        )
    }

    #[test]
    fn base_hit_after_fill() {
        let mut c = controller(Scheme::Base, 256, 64);
        let miss = c.access(0, 0x1000, false, false);
        assert!(miss >= 120, "cold miss goes to memory: {miss}");
        let hit = c.access(miss, 0x1000, false, false);
        assert_eq!(hit, miss + 10);
        assert_eq!(c.l2_stats().data.read_misses, 1);
        assert_eq!(c.l2_stats().data.read_hits, 1);
    }

    #[test]
    fn base_never_verifies() {
        let mut c = controller(Scheme::Base, 256, 64);
        for i in 0..100u64 {
            c.access(i * 10, i * 64, i % 3 == 0, false);
        }
        assert_eq!(c.verification_horizon(), 0);
        assert_eq!(c.stats().verifications, 0);
        assert_eq!(c.bus_stats().hash_bytes(), 0);
    }

    #[test]
    fn naive_walks_full_path_every_miss() {
        let mut c = controller(Scheme::Naive, 256, 64);
        let depth = c.layout().unwrap().levels() as u64;
        assert!(depth >= 5, "test tree deep enough: {depth}");
        c.access(0, 0, false, false);
        // One data fetch plus `depth` hash-chunk fetches.
        assert_eq!(c.stats().data_fetches, 1);
        assert_eq!(c.stats().hash_fetches, depth);
        // A second miss to a *different* chunk repeats the whole walk.
        c.access(10_000, 1 << 16, false, false);
        assert_eq!(c.stats().hash_fetches, 2 * depth);
    }

    #[test]
    fn chash_amortizes_hash_fetches() {
        let mut c = controller(Scheme::CHash, 1024, 64);
        // Stream sequentially: siblings share parents, which stay cached.
        let mut now = 0;
        for i in 0..512u64 {
            now = c.access(now, i * 64, false, false);
        }
        let s = c.stats();
        assert_eq!(s.data_fetches, 512);
        assert!(
            s.hash_fetches < 512 / 2,
            "hash caching must amortize: {} hash fetches for 512 misses",
            s.hash_fetches
        );
        // Naive for comparison explodes.
        let mut n = controller(Scheme::Naive, 1024, 64);
        let mut tn = 0;
        for i in 0..512u64 {
            tn = n.access(tn, i * 64, false, false);
        }
        assert!(n.stats().hash_fetches > 10 * s.hash_fetches);
        assert!(tn > now, "naive takes longer: {tn} vs {now}");
    }

    #[test]
    fn speculative_return_beats_blocking() {
        let run = |block_on_verify: bool| {
            let mut cfg = CheckerConfig::hpca03(Scheme::CHash);
            cfg.protected_bytes = 16 << 20;
            cfg.block_on_verify = block_on_verify;
            let mut c = L2Controller::new(
                cfg,
                CacheConfig::l2(256 << 10, 64),
                MemoryBusConfig::default(),
            );
            let mut now = 0;
            for i in 0..100u64 {
                now = c.access(now, i * 64 * 57, false, false);
            }
            now
        };
        assert!(run(false) < run(true), "speculation must help");
    }

    #[test]
    fn verification_horizon_advances() {
        let mut c = controller(Scheme::CHash, 256, 64);
        let ready = c.access(0, 0, false, false);
        let horizon = c.verification_horizon();
        assert!(horizon >= ready, "hash check completes after data returns");
        assert!(horizon >= ready + 100, "hash latency is 160 cycles");
    }

    #[test]
    fn hash_lines_pollute_l2() {
        let mut c = controller(Scheme::CHash, 256, 64);
        let mut now = 0;
        for i in 0..1000u64 {
            now = c.access(now, (i * 64 * 131) % (8 << 20), false, false);
        }
        let (data, hash) = c.l2_occupancy();
        assert!(hash > 0, "hash lines must occupy L2");
        assert!(data > 0);
    }

    #[test]
    fn write_allocate_no_fetch_skips_memory() {
        let mut c = controller(Scheme::CHash, 256, 64);
        let t = c.access(0, 0, true, true);
        assert_eq!(t, 10, "no memory access for a full-line overwrite");
        assert_eq!(c.stats().alloc_no_fetch, 1);
        assert_eq!(c.stats().data_fetches, 0);
        // Without the optimization the store fetches and checks.
        let mut cfg = CheckerConfig::hpca03(Scheme::CHash);
        cfg.protected_bytes = 16 << 20;
        cfg.write_allocate_no_fetch = false;
        let mut c2 = L2Controller::new(
            cfg,
            CacheConfig::l2(256 << 10, 64),
            MemoryBusConfig::default(),
        );
        let t2 = c2.access(0, 0, true, true);
        assert!(t2 > 100);
        assert_eq!(c2.stats().data_fetches, 1);
    }

    #[test]
    fn dirty_eviction_triggers_writeback() {
        let mut c = controller(Scheme::CHash, 256, 64);
        // Dirty many conflicting lines to force dirty evictions.
        let mut now = 0;
        for i in 0..5000u64 {
            now = c.access(now, (i * 64 * 4099) % (8 << 20), true, true);
        }
        assert!(c.stats().writebacks > 0);
        assert!(c.bus_stats().bytes_for(TrafficClass::DataWrite) > 0);
    }

    #[test]
    fn mhash_fetches_whole_chunk() {
        let mut c = controller(Scheme::MHash, 1024, 64);
        assert_eq!(c.layout().unwrap().blocks_per_chunk(), 2);
        c.access(0, 0, false, false);
        let s = c.stats();
        assert_eq!(s.data_fetches, 1);
        assert_eq!(
            s.extra_data_fetches, 1,
            "sibling block fetched for the check"
        );
        // The sibling is now cached: accessing it hits.
        let hit = c.access(1000, 64, false, false);
        assert_eq!(hit, 1010);
    }

    #[test]
    fn mhash_reduces_overhead_vs_chash() {
        let c64 = TreeLayout::new(256 << 20, 64, 64);
        let m64 = TreeLayout::new(256 << 20, 128, 64);
        assert!(m64.overhead() < c64.overhead());
    }

    #[test]
    fn ihash_writeback_fetches_less_than_mhash() {
        // With 4-block chunks and a thrashing write pattern, a dirty
        // block's siblings are usually evicted (clean, older in LRU) by
        // the time it is written back: mhash must re-fetch and re-check
        // up to three blocks, ihash reads exactly one old value
        // unchecked (§5.4's advantage).
        let run = |scheme: Scheme| {
            let mut cfg = CheckerConfig::hpca03(scheme);
            cfg.chunk_bytes = 256; // 4 blocks per chunk
            cfg.protected_bytes = 16 << 20;
            let mut c = L2Controller::new(
                cfg,
                CacheConfig::l2(256 << 10, 64),
                MemoryBusConfig::default(),
            );
            let mut now = 0;
            for i in 0..6000u64 {
                now = c.access(now, (i * 256 * 1021) % (8 << 20), true, false);
            }
            (c.stats().writebacks, c.stats().extra_data_fetches)
        };
        let (wb_m, extra_m) = run(Scheme::MHash);
        let (wb_i, extra_i) = run(Scheme::IHash);
        assert!(
            wb_m > 100 && wb_i > 100,
            "write-backs occurred: {wb_m}, {wb_i}"
        );
        // Both schemes fetch 3 sibling blocks on the read path; the
        // difference is the write-back path, where ihash's single
        // unchecked read beats mhash's multi-block gather.
        assert!(
            extra_i < extra_m,
            "ihash must fetch fewer extra blocks: {extra_i} vs {extra_m}"
        );
    }

    #[test]
    fn buffer_pool_limits_inflight() {
        let mut pool = BufferPool::new(2);
        let (t1, s1) = pool.acquire(10);
        assert_eq!(t1, 10);
        pool.occupy(s1, 100);
        let (t2, s2) = pool.acquire(10);
        assert_eq!(t2, 10);
        pool.occupy(s2, 200);
        // Third request waits for the earliest release (100).
        let (t3, s3) = pool.acquire(10);
        assert_eq!(t3, 100);
        pool.occupy(s3, 150);
        let (t4, _s4) = pool.acquire(10);
        assert_eq!(t4, 150);
    }

    #[test]
    fn buffer_pool_reservation_visible_to_nested_acquire() {
        // A nested acquire before the outer occupy must still see the
        // outer reservation (capacity 1 serializes via the occupy time).
        let mut pool = BufferPool::new(1);
        let (t1, s1) = pool.acquire(5);
        assert_eq!(t1, 5);
        pool.occupy(s1, 500);
        let (t2, s2) = pool.acquire(7);
        assert_eq!(t2, 500);
        pool.occupy(s2, 600);
    }

    #[test]
    #[should_panic(expected = "all buffer entries reserved")]
    fn buffer_pool_rejects_unbounded_nesting() {
        let mut pool = BufferPool::new(1);
        let _ = pool.acquire(0);
        let _ = pool.acquire(0); // nested acquire before occupy
    }

    #[test]
    fn tiny_buffers_hurt() {
        // Closed loop: each access issues when the previous data arrived.
        // Verification completes ~160 cycles after data, so with a single
        // buffer entry every miss additionally waits for the previous
        // check to finish; with 16 entries it never does (Figure 7's
        // saturation behaviour).
        let run = |entries: u32| {
            let mut cfg = CheckerConfig::hpca03(Scheme::CHash);
            cfg.protected_bytes = 16 << 20;
            cfg.buffer_entries = entries;
            let mut c = L2Controller::new(
                cfg,
                CacheConfig::l2(256 << 10, 64),
                MemoryBusConfig::default(),
            );
            let mut now = 0;
            for i in 0..500u64 {
                now = c.access(now, (i * 64 * 769) % (8 << 20), false, false);
            }
            (now, c.stats().read_buffer_wait)
        };
        let (t1, w1) = run(1);
        let (t16, w16) = run(16);
        assert!(w1 > w16, "1-entry buffer must wait more: {w1} vs {w16}");
        assert!(t1 > t16, "1-entry buffer must be slower: {t1} vs {t16}");
    }

    #[test]
    fn chash_geometry_enforced() {
        let mut cfg = CheckerConfig::hpca03(Scheme::CHash);
        cfg.chunk_bytes = 128;
        let err = L2Controller::try_new(
            cfg,
            CacheConfig::l2(1 << 20, 64),
            MemoryBusConfig::default(),
        )
        .expect_err("chash requires one cache block per chunk");
        assert_eq!(
            err,
            crate::error::ConfigError::ChunkLineMismatch {
                scheme: Scheme::CHash,
                chunk_bytes: 128,
                line_bytes: 64,
            }
        );
    }

    #[test]
    fn tainted_block_detected_when_verified() {
        for scheme in [Scheme::Naive, Scheme::CHash, Scheme::MHash, Scheme::IHash] {
            let mut c = controller(scheme, 256, 64);
            let layout = *c.layout().unwrap();
            let phys = layout.data_phys_addr(0x4000);
            c.inject_tamper(phys, 1);
            let ready = c.access(0, 0x4000, false, false);
            assert!(ready > 0);
            let det = c.first_detection().unwrap_or_else(|| {
                panic!("{scheme} must detect a tainted demand block");
            });
            assert_eq!(det.chunk, layout.chunk_of_addr(phys));
            assert_eq!(det.addr, phys & !63);
            assert!(
                det.cycle <= c.verification_horizon(),
                "detection is a completed verification"
            );
        }
    }

    #[test]
    fn tainted_hash_node_detected_by_parent_check() {
        let mut c = controller(Scheme::CHash, 256, 64);
        let layout = *c.layout().unwrap();
        let leaf = layout.data_chunk_for(0x4000);
        let slot = crate::adversary::parent_slot_addr(&layout, leaf).expect("leaf has a slot");
        c.inject_tamper(slot, 1);
        c.access(0, 0x4000, false, false);
        let det = c.first_detection().expect("metadata corruption detected");
        assert!(
            layout.is_hash_chunk(det.chunk),
            "the failing check is on a hash chunk (got chunk {})",
            det.chunk
        );
    }

    #[test]
    fn base_never_detects_tamper() {
        let mut c = controller(Scheme::Base, 256, 64);
        c.inject_tamper(0x4000, 64);
        c.access(0, 0x4000, false, false);
        assert!(c.first_detection().is_none());
        assert!(c.tamper_detections().is_empty());
    }

    #[test]
    fn full_overwrite_heals_taint_without_detection() {
        let mut c = controller(Scheme::CHash, 8, 64);
        let layout = *c.layout().unwrap();
        let phys = layout.data_phys_addr(0x1000);
        c.inject_tamper(phys, 64);
        // Whole-line overwrite allocates dirty without a fetch or check;
        // its eventual write-back replaces the corrupted memory bytes.
        let mut now = c.access(0, 0x1000, true, true);
        for i in 0..2000u64 {
            now = c.access(now, (0x2000 + i * 64 * 131) % (4 << 20), false, false);
        }
        // The dirty line is long evicted; re-reading verifies cleanly.
        c.access(now, 0x1000, false, false);
        assert!(c.first_detection().is_none(), "healed taint never fires");
    }

    #[test]
    fn ihash_unchecked_old_read_poisons_the_mac() {
        let mut cfg = CheckerConfig::hpca03(Scheme::IHash);
        cfg.chunk_bytes = 128;
        cfg.protected_bytes = 16 << 20;
        let mut c = L2Controller::new(
            cfg,
            CacheConfig::l2(8 << 10, 64),
            MemoryBusConfig::default(),
        );
        let layout = *c.layout().unwrap();
        let phys = layout.data_phys_addr(0);
        // Dirty the block, corrupt its memory copy, thrash until the
        // dirty line is evicted: the write-back reads the tainted old
        // value *unchecked* and poisons the incremental MAC.
        let mut now = c.access(0, 0, true, false);
        c.inject_tamper(phys, 1);
        let before = c.tamper_detections().len();
        for i in 1..2000u64 {
            // Thrash a region well away from chunk 0 so the only check of
            // the poisoned chunk is the explicit re-read below.
            now = c.access(now, 0x10_0000 + (i * 64 * 4099) % (4 << 20), true, false);
        }
        // Re-reading the chunk runs a full check against the bad MAC.
        c.access(now, 0, false, false);
        let after = c.tamper_detections();
        assert!(after.len() > before, "poisoned MAC must eventually fail");
        let det = after.last().unwrap();
        assert_eq!(det.chunk, layout.chunk_of_addr(phys));
    }

    #[test]
    fn quiesce_drops_residency_so_the_next_access_checks_memory() {
        let mut c = controller(Scheme::CHash, 256, 64);
        let layout = *c.layout().unwrap();
        let phys = layout.data_phys_addr(0x4000);
        // Warm the line, then corrupt its memory copy: hits are served
        // from the (valid) resident line, so nothing fires.
        let mut now = c.access(0, 0x4000, false, false);
        c.inject_tamper(phys, 1);
        now = c.access(now, 0x4000, false, false);
        assert!(c.first_detection().is_none(), "resident hits mask taint");
        // Quiescing drops the clean line without healing the memory;
        // the re-fetch must verify the tainted bytes and fire.
        now = c.quiesce(now);
        assert_eq!(c.l2_occupancy(), (0, 0), "quiesce empties the L2");
        c.access(now, 0x4000, false, false);
        let det = c.first_detection().expect("refetch detects");
        assert_eq!(det.addr, phys & !63);
    }

    #[test]
    fn quiesce_writes_dirty_lines_back_and_detects_under_them() {
        // A dirty line whose *sibling* (same chunk, mhash) is corrupted
        // in memory: the quiesce write-back gathers the sibling, checks
        // the old chunk content, and fires before overwriting anything.
        let mut cfg = CheckerConfig::hpca03(Scheme::MHash);
        cfg.chunk_bytes = 128;
        cfg.protected_bytes = 16 << 20;
        let mut c = L2Controller::new(
            cfg,
            CacheConfig::l2(8 << 10, 64),
            MemoryBusConfig::default(),
        );
        let layout = *c.layout().unwrap();
        let now = c.access(0, 0x8000, true, false);
        let sibling = layout.data_phys_addr(0x8000) ^ 64;
        c.inject_tamper(sibling, 1);
        let done = c.quiesce(now);
        assert!(done >= now);
        assert!(
            c.first_detection().is_some(),
            "dirty write-back must check the tainted sibling first"
        );
        // The write-back walk may re-cache hash lines it fetched, but no
        // data line survives a quiesce.
        assert_eq!(c.l2_occupancy().0, 0);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::CHash.label(), "chash");
        assert_eq!(Scheme::Base.to_string(), "base");
        assert!(!Scheme::Base.verifies());
        assert!(Scheme::IHash.verifies());
        assert_eq!(Scheme::ALL.len(), 5);
    }

    #[test]
    fn span_attribution_conserves_core_cycles() {
        // Every simulated core-visible cycle lands in exactly one leaf
        // span: the sum under the four access-class roots equals the
        // controller's total, for every scheme, with and without the
        // block-on-verify ablation. The background resource domains
        // reconcile against the component stats independently.
        for scheme in Scheme::ALL {
            for block_on_verify in [false, true] {
                let mut cfg = CheckerConfig::hpca03(scheme);
                cfg.chunk_bytes = match scheme {
                    Scheme::MHash | Scheme::IHash => 128,
                    _ => 64,
                };
                cfg.protected_bytes = 16 << 20;
                cfg.block_on_verify = block_on_verify;
                let mut c = L2Controller::new(
                    cfg,
                    CacheConfig::l2(256 << 10, 64),
                    MemoryBusConfig::default(),
                );
                let spans = SpanTracer::enabled();
                c.attach_spans(&spans);
                let mut now = 0;
                for i in 0..3000u64 {
                    let addr = (i * 64 * 769) % (8 << 20);
                    now = c.access(now, addr, i % 3 == 0, i % 6 == 0);
                    if i % 500 == 499 {
                        now = c.quiesce(now);
                    }
                }
                let snap = spans.snapshot();
                let under = |prefix: &[&str]| {
                    snap.spans
                        .iter()
                        .filter(|s| {
                            s.path.len() >= prefix.len()
                                && s.path.iter().zip(prefix).all(|(a, b)| a == b)
                        })
                        .map(|s| s.cycles)
                        .sum::<u64>()
                };
                let attributed = under(&["hit"])
                    + under(&["clean_miss"])
                    + under(&["verified_miss"])
                    + under(&["flush"]);
                assert_eq!(
                    attributed,
                    c.total_cycles(),
                    "conservation for {scheme} block_on_verify={block_on_verify}"
                );
                assert!(c.total_cycles() > 0);
                if scheme.verifies() {
                    assert!(under(&["verified_miss"]) > 0, "{scheme} verifies misses");
                } else {
                    assert_eq!(under(&["verified_miss"]), 0);
                }
                // Resource domains: hash-unit spans sum to the engine's
                // busy cycles; bus spans sum to the bus's total busy time.
                assert_eq!(
                    under(&["background", "hash_unit"]),
                    c.engine_stats().busy_cycles,
                    "{scheme} hash-unit occupancy"
                );
                assert_eq!(
                    under(&["background", "bus"]),
                    c.bus_busy_through(u64::MAX / 2),
                    "{scheme} bus occupancy"
                );
            }
        }
    }

    #[test]
    fn total_cycles_accumulates_without_spans() {
        // The conservation anchor is maintained even when no tracer is
        // attached (the profiler can attach late or never).
        let mut c = controller(Scheme::CHash, 256, 64);
        let mut now = 0;
        let mut expect = 0;
        for i in 0..50u64 {
            let ready = c.access(now, i * 64 * 57, false, false);
            expect += ready - now;
            now = ready;
        }
        let done = c.quiesce(now);
        expect += done - now;
        assert_eq!(c.total_cycles(), expect);
    }
}
