//! Integrity-violation and configuration errors.

use std::fmt;

use crate::timing::Scheme;

/// Raised by the fallible constructors ([`TreeLayout::try_new`],
/// [`L2Controller::try_new`], [`MemoryBuilder::try_build`]) when a
/// requested geometry cannot produce a working engine.
///
/// The panicking constructors are thin `.expect("documented
/// invariant")` wrappers over the `try_*` forms, so library callers
/// with hard-coded geometries keep the terse API while anything that
/// parses a user-supplied spec (the `mivsim` subcommands, shard specs)
/// routes through the `Result` path and reports a proper error.
///
/// [`TreeLayout::try_new`]: crate::layout::TreeLayout::try_new
/// [`L2Controller::try_new`]: crate::timing::L2Controller::try_new
/// [`MemoryBuilder::try_build`]: crate::engine::MemoryBuilder::try_build
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The protected data segment is zero bytes.
    EmptySegment,
    /// A chunk or block size is not a power of two.
    NotPowerOfTwo {
        /// Which size was malformed (`"chunk"` or `"block"`).
        what: &'static str,
        /// The offending byte count.
        bytes: u64,
    },
    /// The chunk size is not a whole positive multiple of the block
    /// size.
    ChunkNotBlockMultiple {
        /// Chunk size in bytes.
        chunk_bytes: u32,
        /// Block size in bytes.
        block_bytes: u32,
    },
    /// The chunk is too small to hold at least two child digests.
    ArityTooSmall {
        /// Chunk size in bytes.
        chunk_bytes: u32,
    },
    /// A single-block-chunk scheme (`naive`/`chash`) was given a chunk
    /// that is not exactly one cache line.
    ChunkLineMismatch {
        /// The scheme being configured.
        scheme: Scheme,
        /// Chunk size in bytes.
        chunk_bytes: u32,
        /// L2 line size in bytes.
        line_bytes: u32,
    },
    /// A multi-block-chunk scheme (`mhash`/`ihash`) was given a chunk
    /// that does not span several whole cache lines (the `ProfileSpec`
    /// subtlety: these schemes need `chunk_bytes = 2 * line_bytes` or
    /// more).
    SingleBlockChunk {
        /// The scheme being configured.
        scheme: Scheme,
        /// Chunk size in bytes.
        chunk_bytes: u32,
        /// L2 line size in bytes.
        line_bytes: u32,
    },
    /// The trusted cache cannot guarantee forward progress of
    /// write-back cascades for this layout.
    CacheTooSmall {
        /// Requested capacity in blocks.
        blocks: usize,
        /// Minimum capacity the layout needs.
        min_blocks: usize,
    },
    /// The incremental MAC's per-slot timestamp field is 8 bits, so a
    /// chunk may span at most 8 blocks.
    MacChunkTooWide {
        /// Requested blocks per chunk.
        blocks_per_chunk: u32,
    },
    /// A size parameter that must be positive was zero.
    ZeroSize {
        /// Which size was zero (`"block"`, `"capacity"`, …).
        what: &'static str,
    },
    /// A protected data segment is not a whole multiple of its block
    /// size (the XOM per-block MAC layout needs whole blocks).
    DataNotBlockMultiple {
        /// Data segment size in bytes.
        data_bytes: u64,
        /// Block size in bytes.
        block_bytes: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptySegment => write!(f, "cannot protect an empty segment"),
            ConfigError::NotPowerOfTwo { what, bytes } => {
                write!(f, "{what} size must be a power of two, got {bytes}")
            }
            ConfigError::ChunkNotBlockMultiple {
                chunk_bytes,
                block_bytes,
            } => write!(
                f,
                "chunk must be a whole number of blocks ({chunk_bytes} B chunk, \
                 {block_bytes} B block)"
            ),
            ConfigError::ArityTooSmall { chunk_bytes } => write!(
                f,
                "chunk of {chunk_bytes} B is too small: arity must be at least 2"
            ),
            ConfigError::ChunkLineMismatch {
                scheme,
                chunk_bytes,
                line_bytes,
            } => write!(
                f,
                "{scheme} uses one cache block per chunk: chunk must equal the \
                 {line_bytes} B line, got {chunk_bytes} B"
            ),
            ConfigError::SingleBlockChunk {
                scheme,
                chunk_bytes,
                line_bytes,
            } => write!(
                f,
                "{scheme} needs a chunk spanning several whole {line_bytes} B blocks, \
                 got {chunk_bytes} B (use chunk_bytes = 2 * line_bytes or more)"
            ),
            ConfigError::CacheTooSmall { blocks, min_blocks } => write!(
                f,
                "trusted cache of {blocks} blocks is too small: this layout needs at \
                 least {min_blocks}"
            ),
            ConfigError::MacChunkTooWide { blocks_per_chunk } => write!(
                f,
                "incremental MAC supports at most 8 blocks per chunk (8 timestamp bits \
                 per slot), got {blocks_per_chunk}"
            ),
            ConfigError::ZeroSize { what } => {
                write!(f, "{what} size must be positive, got 0")
            }
            ConfigError::DataNotBlockMultiple {
                data_bytes,
                block_bytes,
            } => write!(
                f,
                "data segment must be a whole number of blocks ({data_bytes} B data, \
                 {block_bytes} B block)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Raised when a chunk's contents do not match the hash (or MAC) stored
/// in its parent — the memory-tampering exception of §5.8.
///
/// The paper's processor destroys the program's keys and aborts on this
/// exception; mirroring that, the functional engine poisons itself after
/// reporting one (all further operations fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityError {
    chunk: u64,
    addr: u64,
    scheme: &'static str,
    cycle: Option<u64>,
}

impl IntegrityError {
    pub(crate) fn new(chunk: u64, addr: u64, scheme: &'static str) -> Self {
        IntegrityError {
            chunk,
            addr,
            scheme,
            cycle: None,
        }
    }

    /// Stamps the access cycle (or operation index) at which the
    /// violation was detected — the raw material for detection-latency
    /// measurement. Functional-engine errors carry no cycle by default;
    /// harnesses that know *when* the failing access ran attach it here.
    pub fn with_cycle(mut self, cycle: u64) -> Self {
        self.cycle = Some(cycle);
        self
    }

    /// The chunk whose verification failed.
    pub fn chunk(&self) -> u64 {
        self.chunk
    }

    /// The chunk's physical base address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The verification scheme that detected the violation.
    pub fn scheme(&self) -> &'static str {
        self.scheme
    }

    /// The access cycle at detection, when known.
    pub fn cycle(&self) -> Option<u64> {
        self.cycle
    }
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory integrity violation in chunk {} at address {:#x} ({} check failed)",
            self.chunk, self.addr, self.scheme
        )?;
        if let Some(cycle) = self.cycle {
            write!(f, " at cycle {cycle}")?;
        }
        Ok(())
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let e = IntegrityError::new(7, 0x1c0, "hash-tree");
        assert_eq!(e.chunk(), 7);
        assert_eq!(e.addr(), 0x1c0);
        assert_eq!(e.scheme(), "hash-tree");
        let msg = e.to_string();
        assert!(msg.contains("chunk 7"));
        assert!(msg.contains("0x1c0"));
        // Error trait object usable.
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(!boxed.to_string().is_empty());
    }

    #[test]
    fn cycle_is_optional_and_extends_display() {
        let bare = IntegrityError::new(3, 0x80, "mac");
        assert_eq!(bare.cycle(), None);
        assert!(!bare.to_string().contains("cycle"));
        let stamped = bare.clone().with_cycle(12_345);
        assert_eq!(stamped.cycle(), Some(12_345));
        assert!(stamped.to_string().ends_with("at cycle 12345"));
        // Stamping does not disturb the original accessors.
        assert_eq!(stamped.chunk(), bare.chunk());
        assert_eq!(stamped.addr(), bare.addr());
        assert_eq!(stamped.scheme(), bare.scheme());
    }
}
