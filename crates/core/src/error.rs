//! Integrity-violation errors.

use std::fmt;

/// Raised when a chunk's contents do not match the hash (or MAC) stored
/// in its parent — the memory-tampering exception of §5.8.
///
/// The paper's processor destroys the program's keys and aborts on this
/// exception; mirroring that, the functional engine poisons itself after
/// reporting one (all further operations fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityError {
    chunk: u64,
    addr: u64,
    scheme: &'static str,
    cycle: Option<u64>,
}

impl IntegrityError {
    pub(crate) fn new(chunk: u64, addr: u64, scheme: &'static str) -> Self {
        IntegrityError {
            chunk,
            addr,
            scheme,
            cycle: None,
        }
    }

    /// Stamps the access cycle (or operation index) at which the
    /// violation was detected — the raw material for detection-latency
    /// measurement. Functional-engine errors carry no cycle by default;
    /// harnesses that know *when* the failing access ran attach it here.
    pub fn with_cycle(mut self, cycle: u64) -> Self {
        self.cycle = Some(cycle);
        self
    }

    /// The chunk whose verification failed.
    pub fn chunk(&self) -> u64 {
        self.chunk
    }

    /// The chunk's physical base address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The verification scheme that detected the violation.
    pub fn scheme(&self) -> &'static str {
        self.scheme
    }

    /// The access cycle at detection, when known.
    pub fn cycle(&self) -> Option<u64> {
        self.cycle
    }
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory integrity violation in chunk {} at address {:#x} ({} check failed)",
            self.chunk, self.addr, self.scheme
        )?;
        if let Some(cycle) = self.cycle {
            write!(f, " at cycle {cycle}")?;
        }
        Ok(())
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let e = IntegrityError::new(7, 0x1c0, "hash-tree");
        assert_eq!(e.chunk(), 7);
        assert_eq!(e.addr(), 0x1c0);
        assert_eq!(e.scheme(), "hash-tree");
        let msg = e.to_string();
        assert!(msg.contains("chunk 7"));
        assert!(msg.contains("0x1c0"));
        // Error trait object usable.
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(!boxed.to_string().is_empty());
    }

    #[test]
    fn cycle_is_optional_and_extends_display() {
        let bare = IntegrityError::new(3, 0x80, "mac");
        assert_eq!(bare.cycle(), None);
        assert!(!bare.to_string().contains("cycle"));
        let stamped = bare.clone().with_cycle(12_345);
        assert_eq!(stamped.cycle(), Some(12_345));
        assert!(stamped.to_string().ends_with("at cycle 12345"));
        // Stamping does not disturb the original accessors.
        assert_eq!(stamped.chunk(), bare.chunk());
        assert_eq!(stamped.addr(), bare.addr());
        assert_eq!(stamped.scheme(), bare.scheme());
    }
}
