//! Untrusted external memory and the physical-attacker model (§3).
//!
//! Everything outside the processor chip — in particular RAM and the
//! memory bus — can be observed and modified by the adversary. The
//! functional engine keeps its backing store in an [`UntrustedMemory`],
//! and tests/examples attack it through the [`Adversary`] view, which can
//! flip bits, overwrite blocks, relocate data between addresses, and
//! mount **replay attacks** (snapshot a region, let the program update it,
//! then restore the stale bytes — exactly the §4.4 attack on XOM).

use std::fmt;

/// Untrusted off-chip memory: a flat byte array the adversary controls.
///
/// # Examples
///
/// ```
/// use miv_core::storage::UntrustedMemory;
///
/// let mut mem = UntrustedMemory::new(1024);
/// mem.write(16, b"hello");
/// assert_eq!(mem.read_vec(16, 5), b"hello");
/// ```
#[derive(Clone)]
pub struct UntrustedMemory {
    bytes: Vec<u8>,
    reads: u64,
    writes: u64,
}

impl fmt::Debug for UntrustedMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UntrustedMemory")
            .field("len", &self.bytes.len())
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish()
    }
}

impl UntrustedMemory {
    /// Allocates `len` bytes of zeroed memory.
    pub fn new(len: u64) -> Self {
        UntrustedMemory {
            bytes: vec![0u8; len as usize],
            reads: 0,
            writes: 0,
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Returns `true` if the memory has zero length.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) {
        self.reads += 1;
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read_vec(&mut self, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf);
        buf
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.writes += 1;
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// Number of read transactions performed (functional accounting).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write transactions performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

/// A saved copy of a memory region, for replay attacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    addr: u64,
    data: Vec<u8>,
}

impl Snapshot {
    /// The region's starting address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The saved bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

/// A single tampering action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperKind {
    /// Flip one bit of the byte at the target address.
    BitFlip {
        /// Bit position 0–7.
        bit: u8,
    },
    /// Overwrite with attacker-chosen bytes.
    Replace {
        /// Replacement data.
        data: Vec<u8>,
    },
    /// Copy bytes from another (attacker-chosen) address — the relocation
    /// attack XOM defeats by hashing the address, and the tree defeats by
    /// position-binding every chunk.
    CopyFrom {
        /// Source address.
        src: u64,
        /// Number of bytes.
        len: usize,
    },
}

/// Attacker's-eye view of an [`UntrustedMemory`].
///
/// The adversary sees and modifies raw bytes without going through any
/// verification. Obtain one from the functional engine's
/// `adversary()` accessor.
#[derive(Debug)]
pub struct Adversary<'a> {
    mem: &'a mut UntrustedMemory,
}

impl<'a> Adversary<'a> {
    /// Wraps a memory in an adversary view.
    pub fn new(mem: &'a mut UntrustedMemory) -> Self {
        Adversary { mem }
    }

    /// Observes raw memory (the adversary can always read the bus).
    pub fn observe(&mut self, addr: u64, len: usize) -> Vec<u8> {
        self.mem.read_vec(addr, len)
    }

    /// Applies a tampering action at `addr`.
    pub fn tamper(&mut self, addr: u64, kind: TamperKind) {
        match kind {
            TamperKind::BitFlip { bit } => {
                assert!(bit < 8, "bit index out of range");
                let mut byte = [0u8];
                self.mem.read(addr, &mut byte);
                byte[0] ^= 1 << bit;
                self.mem.write(addr, &byte);
            }
            TamperKind::Replace { data } => self.mem.write(addr, &data),
            TamperKind::CopyFrom { src, len } => {
                let data = self.mem.read_vec(src, len);
                self.mem.write(addr, &data);
            }
        }
    }

    /// Records a region for a later replay.
    pub fn snapshot(&mut self, addr: u64, len: usize) -> Snapshot {
        Snapshot {
            addr,
            data: self.mem.read_vec(addr, len),
        }
    }

    /// Restores a previously-saved region — the replay attack.
    pub fn replay(&mut self, snapshot: &Snapshot) {
        self.mem.write(snapshot.addr, &snapshot.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut mem = UntrustedMemory::new(256);
        assert_eq!(mem.len(), 256);
        assert!(!mem.is_empty());
        mem.write(10, &[1, 2, 3]);
        assert_eq!(mem.read_vec(10, 3), vec![1, 2, 3]);
        assert_eq!(mem.read_vec(13, 1), vec![0]);
        assert_eq!(mem.writes(), 1);
        assert_eq!(mem.reads(), 2);
    }

    #[test]
    fn bit_flip() {
        let mut mem = UntrustedMemory::new(64);
        mem.write(5, &[0b1010_1010]);
        let mut adv = Adversary::new(&mut mem);
        adv.tamper(5, TamperKind::BitFlip { bit: 0 });
        assert_eq!(adv.observe(5, 1), vec![0b1010_1011]);
    }

    #[test]
    fn replace_and_copy() {
        let mut mem = UntrustedMemory::new(64);
        mem.write(0, b"AAAA");
        mem.write(32, b"BBBB");
        let mut adv = Adversary::new(&mut mem);
        adv.tamper(0, TamperKind::CopyFrom { src: 32, len: 4 });
        assert_eq!(adv.observe(0, 4), b"BBBB");
        adv.tamper(
            0,
            TamperKind::Replace {
                data: b"CC".to_vec(),
            },
        );
        assert_eq!(adv.observe(0, 4), b"CCBB");
    }

    #[test]
    fn snapshot_replay() {
        let mut mem = UntrustedMemory::new(64);
        mem.write(8, b"old!");
        let snap = {
            let mut adv = Adversary::new(&mut mem);
            adv.snapshot(8, 4)
        };
        mem.write(8, b"new!");
        let mut adv = Adversary::new(&mut mem);
        adv.replay(&snap);
        assert_eq!(adv.observe(8, 4), b"old!");
        assert_eq!(snap.addr(), 8);
        assert_eq!(snap.data(), b"old!");
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let mut mem = UntrustedMemory::new(16);
        let _ = mem.read_vec(15, 2);
    }
}
