//! Untrusted external memory and the physical-attacker model (§3).
//!
//! Everything outside the processor chip — in particular RAM and the
//! memory bus — can be observed and modified by the adversary. The
//! functional engine keeps its backing store in an [`UntrustedMemory`],
//! and tests/examples attack it through the [`Adversary`] view, which can
//! flip bits, overwrite blocks, relocate data between addresses, and
//! mount **replay attacks** (snapshot a region, let the program update it,
//! then restore the stale bytes — exactly the §4.4 attack on XOM).
//!
//! The attack vocabulary itself lives in [`crate::adversary`] (it is
//! shared with the campaign engine); the historical paths
//! `storage::{Adversary, Snapshot, TamperKind}` remain as re-exports.

use std::fmt;

pub use crate::adversary::{Adversary, Snapshot, TamperKind};

/// Untrusted off-chip memory: a flat byte array the adversary controls.
///
/// # Examples
///
/// ```
/// use miv_core::storage::UntrustedMemory;
///
/// let mut mem = UntrustedMemory::new(1024);
/// mem.write(16, b"hello");
/// assert_eq!(mem.read_vec(16, 5), b"hello");
/// ```
#[derive(Clone)]
pub struct UntrustedMemory {
    bytes: Vec<u8>,
    reads: u64,
    writes: u64,
}

impl fmt::Debug for UntrustedMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UntrustedMemory")
            .field("len", &self.bytes.len())
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish()
    }
}

impl UntrustedMemory {
    /// Allocates `len` bytes of zeroed memory.
    pub fn new(len: u64) -> Self {
        UntrustedMemory {
            bytes: vec![0u8; len as usize],
            reads: 0,
            writes: 0,
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Returns `true` if the memory has zero length.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) {
        self.reads += 1;
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read_vec(&mut self, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf);
        buf
    }

    /// Borrows `len` bytes starting at `addr` as one read transaction.
    /// The bulk tree build hashes whole levels through this without
    /// copying each chunk image out.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn region(&mut self, addr: u64, len: usize) -> &[u8] {
        self.reads += 1;
        let a = addr as usize;
        &self.bytes[a..a + len]
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.writes += 1;
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// Number of read transactions performed (functional accounting).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write transactions performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut mem = UntrustedMemory::new(256);
        assert_eq!(mem.len(), 256);
        assert!(!mem.is_empty());
        mem.write(10, &[1, 2, 3]);
        assert_eq!(mem.read_vec(10, 3), vec![1, 2, 3]);
        assert_eq!(mem.read_vec(13, 1), vec![0]);
        assert_eq!(mem.writes(), 1);
        assert_eq!(mem.reads(), 2);
    }

    #[test]
    fn reexported_adversary_surface_still_reachable() {
        // Back-compat: the adversary surface moved to `crate::adversary`
        // but the `storage::` paths must keep working.
        let mut mem = UntrustedMemory::new(64);
        mem.write(5, &[0xFF]);
        let mut adv = Adversary::new(&mut mem);
        adv.tamper(5, TamperKind::BitFlip { bit: 0 });
        assert_eq!(adv.observe(5, 1), vec![0xFE]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let mut mem = UntrustedMemory::new(16);
        let _ = mem.read_vec(15, 2);
    }
}
