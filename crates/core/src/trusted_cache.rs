//! The trusted on-chip cache used by the functional verification engine.
//!
//! In the paper's *chash* family, tree machinery is merged with the L2:
//! anything resident in this cache is **trusted** — it was verified on the
//! way in (or produced on-chip) and physical attackers cannot reach it. A
//! cached tree node therefore acts as the root of a smaller subtree.
//!
//! Unlike the timing model in `miv-cache`, this cache carries real bytes.
//! It is fully associative with true-LRU replacement (the functional
//! engine cares about *what* is cached, not about set conflicts — those
//! belong to the timing model) and supports **pinning**: blocks involved
//! in an in-progress write-back cascade cannot be chosen as victims,
//! which is how the engine keeps multi-step updates atomic with respect
//! to re-entrant evictions.

// miv-analyze: allow(deterministic-iteration, reason="hot-path lookup table; the only iteration sites are dirty_blocks (sorted before use) and iter_blocks, whose consumers fold into order-insensitive sets")
use std::collections::{BTreeMap, HashMap};

use crate::error::ConfigError;

/// A block-granular trusted cache holding real data.
///
/// Keys are block-aligned physical addresses.
///
/// # Examples
///
/// ```
/// use miv_core::trusted_cache::TrustedCache;
///
/// let mut c = TrustedCache::new(2, 64);
/// c.insert(0, vec![1u8; 64], false);
/// c.insert(64, vec![2u8; 64], true);
/// assert!(c.needs_eviction());          // at capacity
/// assert_eq!(c.victim(), Some(0));      // 0 is least recently used
/// ```
#[derive(Debug, Clone)]
pub struct TrustedCache {
    capacity: usize,
    block_bytes: usize,
    // miv-analyze: allow(deterministic-iteration, reason="per-access lookup is the hot path (PR-4 bench gate); iteration never feeds output directly")
    entries: HashMap<u64, Entry>,
    /// stamp → addr index for O(log n) LRU victim selection.
    lru: BTreeMap<u64, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    data: Vec<u8>,
    dirty: bool,
    stamp: u64,
    pins: u32,
}

impl TrustedCache {
    /// Creates a cache holding up to `capacity` blocks of `block_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `block_bytes` is zero;
    /// [`try_new`](Self::try_new) is the fallible form.
    pub fn new(capacity: usize, block_bytes: usize) -> Self {
        Self::try_new(capacity, block_bytes)
            .expect("documented invariant: positive capacity and block size")
    }

    /// Fallible form of [`new`](Self::new), for callers building from a
    /// user-supplied spec.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::CacheTooSmall`] when `capacity` is zero
    /// and [`ConfigError::ZeroSize`] when `block_bytes` is zero.
    pub fn try_new(capacity: usize, block_bytes: usize) -> Result<Self, ConfigError> {
        if capacity < 1 {
            return Err(ConfigError::CacheTooSmall {
                blocks: capacity,
                min_blocks: 1,
            });
        }
        if block_bytes < 1 {
            return Err(ConfigError::ZeroSize { what: "block" });
        }
        Ok(TrustedCache {
            capacity,
            block_bytes,
            // miv-analyze: allow(deterministic-iteration, reason="see field declaration: lookup-only hot path")
            entries: HashMap::with_capacity(capacity + 4),
            lru: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        })
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether `addr` is resident (no LRU side effect, not counted).
    pub fn contains(&self, addr: u64) -> bool {
        self.entries.contains_key(&addr)
    }

    /// The dirty bit of a resident block.
    pub fn dirty(&self, addr: u64) -> Option<bool> {
        self.entries.get(&addr).map(|e| e.dirty)
    }

    /// Reads a resident block, refreshing LRU and counting a hit/miss.
    pub fn get(&mut self, addr: u64) -> Option<&[u8]> {
        if self.entries.contains_key(&addr) {
            self.hits += 1;
            self.touch(addr);
            self.entries.get(&addr).map(|e| e.data.as_slice())
        } else {
            self.misses += 1;
            None
        }
    }

    /// Reads a resident block without counters or LRU effects.
    pub fn peek(&self, addr: u64) -> Option<&[u8]> {
        self.entries.get(&addr).map(|e| e.data.as_slice())
    }

    /// Mutably accesses a resident block, marking it dirty and refreshing
    /// LRU; counts a hit/miss.
    pub fn get_mut(&mut self, addr: u64) -> Option<&mut [u8]> {
        if self.entries.contains_key(&addr) {
            self.hits += 1;
            self.touch(addr);
            let e = self.entries.get_mut(&addr).expect("present");
            e.dirty = true;
            Some(e.data.as_mut_slice())
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts a block (must not already be resident). The cache may
    /// exceed capacity transiently; callers drain it with
    /// [`victim`](Self::victim)/[`remove`](Self::remove).
    ///
    /// # Panics
    ///
    /// Panics if the block is already resident or `data` has the wrong
    /// length.
    pub fn insert(&mut self, addr: u64, data: Vec<u8>, dirty: bool) {
        assert_eq!(data.len(), self.block_bytes, "block size mismatch");
        assert!(
            !self.entries.contains_key(&addr),
            "block {addr:#x} already cached"
        );
        self.clock += 1;
        self.lru.insert(self.clock, addr);
        self.entries.insert(
            addr,
            Entry {
                data,
                dirty,
                stamp: self.clock,
                pins: 0,
            },
        );
    }

    /// Marks a resident block clean. Returns `true` if present.
    pub fn mark_clean(&mut self, addr: u64) -> bool {
        match self.entries.get_mut(&addr) {
            Some(e) => {
                e.dirty = false;
                true
            }
            None => false,
        }
    }

    /// Marks a resident block dirty without LRU/counter effects.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        match self.entries.get_mut(&addr) {
            Some(e) => {
                e.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Removes and returns a block's `(data, dirty)`.
    ///
    /// # Panics
    ///
    /// Panics if the block is pinned.
    pub fn remove(&mut self, addr: u64) -> Option<(Vec<u8>, bool)> {
        if let Some(e) = self.entries.get(&addr) {
            assert_eq!(e.pins, 0, "removing pinned block {addr:#x}");
        }
        self.entries.remove(&addr).map(|e| {
            self.lru.remove(&e.stamp);
            (e.data, e.dirty)
        })
    }

    /// Whether the cache is at or above capacity.
    pub fn needs_eviction(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Whether the cache is strictly above capacity (insertions during a
    /// pinned cascade may overshoot by a bounded amount).
    pub fn over_capacity(&self) -> bool {
        self.entries.len() > self.capacity
    }

    /// The least-recently-used unpinned block, if any.
    pub fn victim(&self) -> Option<u64> {
        self.lru
            .values()
            .copied()
            .find(|addr| self.entries[addr].pins == 0)
    }

    /// Pins a resident block (nestable).
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn pin(&mut self, addr: u64) {
        self.entries
            .get_mut(&addr)
            .expect("pinning absent block")
            .pins += 1;
    }

    /// Unpins a resident block.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident or not pinned.
    pub fn unpin(&mut self, addr: u64) {
        let e = self.entries.get_mut(&addr).expect("unpinning absent block");
        assert!(e.pins > 0, "unpinning unpinned block {addr:#x}");
        e.pins -= 1;
    }

    /// Iterates over `(addr, dirty)` of all resident blocks (arbitrary
    /// order).
    pub fn iter_blocks(&self) -> impl Iterator<Item = (u64, bool)> + '_ {
        self.entries.iter().map(|(a, e)| (*a, e.dirty))
    }

    /// Addresses of all dirty blocks.
    pub fn dirty_blocks(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(a, _)| *a)
            .collect();
        v.sort_unstable();
        v
    }

    fn touch(&mut self, addr: u64) {
        self.clock += 1;
        let e = self.entries.get_mut(&addr).expect("present");
        self.lru.remove(&e.stamp);
        e.stamp = self.clock;
        self.lru.insert(self.clock, addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64) -> Vec<u8> {
        vec![n as u8; 64]
    }

    #[test]
    fn try_new_rejects_zero_geometry() {
        assert!(matches!(
            TrustedCache::try_new(0, 64),
            Err(ConfigError::CacheTooSmall {
                blocks: 0,
                min_blocks: 1
            })
        ));
        assert!(matches!(
            TrustedCache::try_new(4, 0),
            Err(ConfigError::ZeroSize { what: "block" })
        ));
        assert!(TrustedCache::try_new(4, 64).is_ok());
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = TrustedCache::new(4, 64);
        c.insert(0, filled(1), false);
        assert_eq!(c.get(0).unwrap()[0], 1);
        assert!(c.get(64).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn get_mut_dirties() {
        let mut c = TrustedCache::new(4, 64);
        c.insert(0, filled(0), false);
        c.get_mut(0).unwrap()[5] = 9;
        assert_eq!(c.dirty(0), Some(true));
        assert_eq!(c.peek(0).unwrap()[5], 9);
        assert_eq!(c.dirty_blocks(), vec![0]);
    }

    #[test]
    fn lru_victim_order() {
        let mut c = TrustedCache::new(3, 64);
        c.insert(0, filled(0), false);
        c.insert(64, filled(1), false);
        c.insert(128, filled(2), false);
        assert!(c.needs_eviction());
        assert_eq!(c.victim(), Some(0));
        c.get(0); // refresh
        assert_eq!(c.victim(), Some(64));
    }

    #[test]
    fn pinned_blocks_are_not_victims() {
        let mut c = TrustedCache::new(2, 64);
        c.insert(0, filled(0), false);
        c.insert(64, filled(1), false);
        c.pin(0);
        assert_eq!(c.victim(), Some(64));
        c.pin(64);
        assert_eq!(c.victim(), None);
        c.unpin(0);
        assert_eq!(c.victim(), Some(0));
        c.unpin(64);
    }

    #[test]
    fn pins_nest() {
        let mut c = TrustedCache::new(2, 64);
        c.insert(0, filled(0), false);
        c.pin(0);
        c.pin(0);
        c.unpin(0);
        assert_eq!(c.victim(), None, "still pinned once");
        c.unpin(0);
        assert_eq!(c.victim(), Some(0));
    }

    #[test]
    #[should_panic(expected = "removing pinned")]
    fn remove_pinned_panics() {
        let mut c = TrustedCache::new(2, 64);
        c.insert(0, filled(0), false);
        c.pin(0);
        c.remove(0);
    }

    #[test]
    fn remove_returns_data_and_dirty() {
        let mut c = TrustedCache::new(2, 64);
        c.insert(0, filled(7), true);
        let (data, dirty) = c.remove(0).unwrap();
        assert!(dirty);
        assert_eq!(data[0], 7);
        assert!(c.remove(0).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn clean_dirty_transitions() {
        let mut c = TrustedCache::new(2, 64);
        c.insert(0, filled(0), true);
        assert!(c.mark_clean(0));
        assert_eq!(c.dirty(0), Some(false));
        assert!(c.mark_dirty(0));
        assert_eq!(c.dirty(0), Some(true));
        assert!(!c.mark_clean(999));
    }

    #[test]
    fn over_capacity_is_transient_state() {
        let mut c = TrustedCache::new(2, 64);
        c.insert(0, filled(0), false);
        c.insert(64, filled(1), false);
        c.insert(128, filled(2), false); // overshoot allowed
        assert!(c.over_capacity());
        let v = c.victim().unwrap();
        c.remove(v);
        assert!(!c.over_capacity());
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_panics() {
        let mut c = TrustedCache::new(2, 64);
        c.insert(0, filled(0), false);
        c.insert(0, filled(0), false);
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn wrong_size_rejected() {
        let mut c = TrustedCache::new(2, 64);
        c.insert(0, vec![0u8; 32], false);
    }
}
