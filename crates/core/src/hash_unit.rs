//! Cycle-level timing model of the checker's pipelined hashing unit
//! (§6.1, Table 1).
//!
//! The paper's checker contains a hash unit with a **latency** of 160
//! cycles and a **throughput** limit — at 3.2 GB/s on a 1 GHz core, a new
//! 64-byte block may enter the pipeline every 20 cycles; Figure 6 sweeps
//! this over {6.4, 3.2, 1.6, 0.8} GB/s. The parameters live in
//! [`miv_hash::engine`]; this module adds the schedulable resource.
//!
//! Like the memory bus, the issue port grants each operation the earliest
//! idle window at or after its data-ready time
//! ([`IntervalSchedule`]), so background
//! verifications booked for future timestamps never block checks whose
//! data arrives earlier.

use miv_hash::engine::HashEngineConfig;
use miv_mem::IntervalSchedule;

use crate::observe::HashUnitObserver;

/// A simulation timestamp in core clock cycles.
pub type Cycle = u64;

/// Occupancy statistics for the hash unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashUnitStats {
    /// Number of hash operations issued.
    pub ops: u64,
    /// Total bytes hashed.
    pub bytes: u64,
    /// Cycles the issue port was occupied.
    pub busy_cycles: u64,
    /// Cycles requests waited because the issue port was occupied.
    pub wait_cycles: u64,
}

impl HashUnitStats {
    /// Accumulates `other` into `self`, component-wise.
    pub fn merge(&mut self, other: &HashUnitStats) {
        self.ops += other.ops;
        self.bytes += other.bytes;
        self.busy_cycles += other.busy_cycles;
        self.wait_cycles += other.wait_cycles;
    }

    /// The component-wise difference `self - earlier`, for interval
    /// sampling over cumulative counters.
    pub fn delta(&self, earlier: &HashUnitStats) -> HashUnitStats {
        HashUnitStats {
            ops: self.ops - earlier.ops,
            bytes: self.bytes - earlier.bytes,
            busy_cycles: self.busy_cycles - earlier.busy_cycles,
            wait_cycles: self.wait_cycles - earlier.wait_cycles,
        }
    }
}

/// The pipelined hash unit as a schedulable timing resource.
///
/// [`schedule`](HashEngine::schedule) books an operation and returns its
/// completion cycle; the checker uses that to decide when a verification
/// finishes or when a write-back's new digest is ready.
///
/// # Examples
///
/// ```
/// use miv_core::hash_unit::HashEngine;
/// use miv_hash::HashEngineConfig;
///
/// let mut unit = HashEngine::new(HashEngineConfig::default());
/// let first = unit.schedule(100, 64);
/// assert_eq!(first, 100 + 160);
/// // The pipeline accepts the next block only 20 cycles later.
/// let second = unit.schedule(100, 64);
/// assert_eq!(second, 120 + 160);
/// ```
#[derive(Debug, Clone)]
pub struct HashEngine {
    config: HashEngineConfig,
    issue: IntervalSchedule,
    stats: HashUnitStats,
    obs: HashUnitObserver,
}

impl HashEngine {
    /// Creates an idle hash unit.
    pub fn new(config: HashEngineConfig) -> Self {
        HashEngine {
            config,
            issue: IntervalSchedule::new(),
            stats: HashUnitStats::default(),
            obs: HashUnitObserver::disabled(),
        }
    }

    /// Attaches telemetry handles; pass
    /// [`HashUnitObserver::disabled`] to detach.
    pub fn set_observer(&mut self, obs: HashUnitObserver) {
        self.obs = obs;
    }

    /// The unit's configuration.
    pub fn config(&self) -> &HashEngineConfig {
        &self.config
    }

    /// Books a hash over `bytes` bytes arriving at cycle `now`; returns
    /// the cycle at which the digest is available.
    pub fn schedule(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let occupancy = self.config.throughput.interval_for(bytes);
        let start = self.issue.book(now, occupancy);
        self.stats.ops += 1;
        self.stats.bytes += bytes;
        self.stats.busy_cycles += occupancy;
        self.stats.wait_cycles += start - now;
        self.obs.record(now, start, bytes);
        // Fully pipelined: result ready `latency` after the last sub-block
        // issues (a single 64-B block finishes `latency` after start).
        start + (occupancy - self.config.throughput.cycles_per_block()) + self.config.latency
    }

    /// Books a batch of independent hashes whose inputs all arrive at
    /// cycle `now` (e.g. the two digests an incremental-hash write-back
    /// recomputes); returns the cycle at which the *last* digest is
    /// available.
    ///
    /// The batch occupies one contiguous issue window of the summed
    /// per-lane occupancy, so for whole-block lane sizes the completion
    /// cycle is identical to a single [`schedule`](Self::schedule) call
    /// over the total bytes — batching changes accounting granularity
    /// (one op per lane), never timing. Statistics and telemetry are
    /// recorded per lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane_bytes` is empty.
    pub fn schedule_batch(&mut self, now: Cycle, lane_bytes: &[u64]) -> Cycle {
        assert!(!lane_bytes.is_empty(), "empty hash batch");
        let occupancy: u64 = lane_bytes
            .iter()
            .map(|&bytes| self.config.throughput.interval_for(bytes))
            .sum();
        let start = self.issue.book(now, occupancy);
        for &bytes in lane_bytes {
            self.stats.ops += 1;
            self.stats.bytes += bytes;
            self.stats.wait_cycles += start - now;
            self.obs.record(now, start, bytes);
        }
        self.stats.busy_cycles += occupancy;
        start + (occupancy - self.config.throughput.cycles_per_block()) + self.config.latency
    }

    /// Informs the unit that no future request arrives before `time`.
    pub fn advance_low_water(&mut self, time: Cycle) {
        self.issue.advance_low_water(time);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HashUnitStats {
        self.stats
    }

    /// Clears statistics and pipeline state (e.g. between measurement
    /// windows).
    pub fn reset(&mut self) {
        self.issue.reset();
        self.stats = HashUnitStats::default();
    }

    /// Clears statistics only, preserving the issue pipeline's booked
    /// intervals — so a measurement window started mid-run still queues
    /// behind in-flight background verifications exactly as an
    /// uninterrupted run would.
    pub fn reset_stats(&mut self) {
        self.stats = HashUnitStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miv_hash::Throughput;

    #[test]
    fn single_op_latency() {
        let mut unit = HashEngine::new(HashEngineConfig::default());
        assert_eq!(unit.schedule(0, 64), 160);
    }

    #[test]
    fn back_to_back_ops_are_throughput_limited() {
        let mut unit = HashEngine::new(HashEngineConfig::default());
        assert_eq!(unit.schedule(0, 64), 160);
        assert_eq!(unit.schedule(0, 64), 180);
        assert_eq!(unit.schedule(0, 64), 200);
        assert_eq!(unit.stats().wait_cycles, 20 + 40);
    }

    #[test]
    fn earlier_data_backfills_idle_pipeline() {
        let mut unit = HashEngine::new(HashEngineConfig::default());
        // A verification whose data arrives late...
        assert_eq!(unit.schedule(1000, 64), 1160);
        // ...must not delay one whose data is ready immediately.
        assert_eq!(unit.schedule(0, 64), 160);
        assert_eq!(unit.stats().wait_cycles, 0);
    }

    #[test]
    fn multi_block_hash_occupies_longer() {
        let mut unit = HashEngine::new(HashEngineConfig::default());
        // 128 bytes = 2 pipeline blocks: last sub-block issues at +20,
        // result at 20 + 160.
        assert_eq!(unit.schedule(0, 128), 180);
        // The pipeline is busy 0..40.
        assert_eq!(unit.schedule(0, 64), 40 + 160);
    }

    #[test]
    fn slow_unit_is_slower() {
        let mut fast = HashEngine::new(HashEngineConfig {
            throughput: Throughput::gbps(6.4),
            ..Default::default()
        });
        let mut slow = HashEngine::new(HashEngineConfig {
            throughput: Throughput::gbps(0.8),
            ..Default::default()
        });
        let mut f_last = 0;
        let mut s_last = 0;
        for _ in 0..50 {
            f_last = fast.schedule(0, 64);
            s_last = slow.schedule(0, 64);
        }
        assert!(s_last > 3 * f_last, "{s_last} vs {f_last}");
    }

    #[test]
    fn batch_times_like_one_fused_hash() {
        let mut batched = HashEngine::new(HashEngineConfig::default());
        let mut fused = HashEngine::new(HashEngineConfig::default());
        // Two 64-B lanes occupy the same window as one 128-B hash...
        assert_eq!(batched.schedule_batch(0, &[64, 64]), fused.schedule(0, 128));
        // ...and leave the pipeline in the same state for the next op.
        assert_eq!(batched.schedule(0, 64), fused.schedule(0, 64));
        // Only the accounting granularity differs: one op per lane.
        assert_eq!(batched.stats().ops, fused.stats().ops + 1);
        assert_eq!(batched.stats().bytes, fused.stats().bytes);
        assert_eq!(batched.stats().busy_cycles, fused.stats().busy_cycles);
    }

    #[test]
    fn reset_stats_preserves_pipeline_occupancy() {
        let mut unit = HashEngine::new(HashEngineConfig::default());
        let mut uninterrupted = HashEngine::new(HashEngineConfig::default());
        unit.schedule(0, 64);
        uninterrupted.schedule(0, 64);
        unit.reset_stats();
        assert_eq!(unit.stats(), HashUnitStats::default());
        // The next op still queues behind the earlier booking.
        assert_eq!(unit.schedule(0, 64), uninterrupted.schedule(0, 64));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut unit = HashEngine::new(HashEngineConfig::default());
        unit.schedule(0, 64);
        unit.schedule(0, 128);
        let s = unit.stats();
        assert_eq!(s.ops, 2);
        assert_eq!(s.bytes, 192);
        assert_eq!(s.busy_cycles, 20 + 40);
        unit.reset();
        assert_eq!(unit.stats(), HashUnitStats::default());
        assert_eq!(unit.schedule(0, 64), 160);
    }
}
