//! The shared adversary surface: tampering actions against untrusted
//! memory and layout-aware targeting of hash-tree metadata.
//!
//! This is the attack vocabulary every layer shares — the functional
//! engine's tests, the persistence rollback checks, and the
//! `miv-adversary` campaign crate all speak [`TamperKind`]. The §3
//! threat model says everything off-chip is attacker-controlled, so the
//! [`Adversary`] view gives raw read/write access to an
//! [`UntrustedMemory`] with no verification in the way; the taxonomy
//! enumerates the paper's canonical attacks:
//!
//! * [`TamperKind::BitFlip`] — corrupt a stored value in place;
//! * [`TamperKind::Replace`] — overwrite with attacker-chosen bytes;
//! * [`TamperKind::CopyFrom`] — the relocation/splice attack (§4.4)
//!   defeated by position-binding every chunk;
//! * [`TamperKind::Rollback`] — restore a previously captured value,
//!   i.e. the replay/freshness attack (§4.4) defeated by the tree's
//!   root and by the §5.4 timestamps;
//! * [`TamperKind::HashNode`] — corrupt tree *metadata* rather than
//!   data, which the recursive parent check still catches.
//!
//! The [`parent_slot_addr`]/[`timestamp_byte_addr`] helpers resolve
//! where in untrusted memory a chunk's hash (or its §5.4 timestamp
//! bits) actually lives, so attacks on metadata need no hand-rolled
//! layout arithmetic.

use crate::layout::{ParentRef, TreeLayout};
use crate::storage::UntrustedMemory;
use miv_hash::narrow::NARROW_MAC_BYTES;

/// A saved copy of a memory region, for replay attacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    addr: u64,
    data: Vec<u8>,
}

impl Snapshot {
    /// Captures a snapshot from raw parts (normally produced by
    /// [`Adversary::snapshot`]).
    pub fn new(addr: u64, data: Vec<u8>) -> Self {
        Snapshot { addr, data }
    }

    /// The region's starting address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The saved bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The replay action restoring this snapshot's bytes, to be applied
    /// at [`addr`](Self::addr).
    pub fn to_rollback(&self) -> TamperKind {
        TamperKind::Rollback {
            data: self.data.clone(),
        }
    }
}

/// A single tampering action.
// miv-analyze: exhaustive
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperKind {
    /// Flip one bit of the byte at the target address.
    BitFlip {
        /// Bit position 0–7.
        bit: u8,
    },
    /// Overwrite with attacker-chosen bytes.
    Replace {
        /// Replacement data.
        data: Vec<u8>,
    },
    /// Copy bytes from another (attacker-chosen) address — the relocation
    /// attack XOM defeats by hashing the address, and the tree defeats by
    /// position-binding every chunk.
    CopyFrom {
        /// Source address.
        src: u64,
        /// Number of bytes.
        len: usize,
    },
    /// Restore previously captured bytes — the replay/freshness attack
    /// (§4.4). The bytes were valid once; the tree's root (or the §5.4
    /// timestamps) has moved on, so restoring them is a violation.
    Rollback {
        /// The stale bytes to restore.
        data: Vec<u8>,
    },
    /// Flip one bit of tree *metadata* — a stored hash or MAC rather
    /// than program data. Behaves like [`TamperKind::BitFlip`] at the
    /// byte level; the distinct variant lets harnesses label and target
    /// attacks on the tree itself (resolve the address with
    /// [`parent_slot_addr`]).
    HashNode {
        /// Bit position 0–7.
        bit: u8,
    },
}

/// Attacker's-eye view of an [`UntrustedMemory`].
///
/// The adversary sees and modifies raw bytes without going through any
/// verification. Obtain one from the functional engine's
/// `adversary()` accessor.
#[derive(Debug)]
pub struct Adversary<'a> {
    mem: &'a mut UntrustedMemory,
}

impl<'a> Adversary<'a> {
    /// Wraps a memory in an adversary view.
    pub fn new(mem: &'a mut UntrustedMemory) -> Self {
        Adversary { mem }
    }

    /// Observes raw memory (the adversary can always read the bus).
    pub fn observe(&mut self, addr: u64, len: usize) -> Vec<u8> {
        self.mem.read_vec(addr, len)
    }

    /// Applies a tampering action at `addr`.
    pub fn tamper(&mut self, addr: u64, kind: TamperKind) {
        match kind {
            TamperKind::BitFlip { bit } | TamperKind::HashNode { bit } => {
                assert!(bit < 8, "bit index out of range");
                let mut byte = [0u8];
                self.mem.read(addr, &mut byte);
                byte[0] ^= 1 << bit;
                self.mem.write(addr, &byte);
            }
            TamperKind::Replace { data } | TamperKind::Rollback { data } => {
                self.mem.write(addr, &data)
            }
            TamperKind::CopyFrom { src, len } => {
                let data = self.mem.read_vec(src, len);
                self.mem.write(addr, &data);
            }
        }
    }

    /// Records a region for a later replay.
    pub fn snapshot(&mut self, addr: u64, len: usize) -> Snapshot {
        Snapshot {
            addr,
            data: self.mem.read_vec(addr, len),
        }
    }

    /// Restores a previously-saved region — the replay attack, routed
    /// through [`TamperKind::Rollback`].
    pub fn replay(&mut self, snapshot: &Snapshot) {
        self.tamper(snapshot.addr, snapshot.to_rollback());
    }
}

/// The untrusted-memory address of the slot holding `chunk`'s hash (or
/// MAC) in its parent chunk, or `None` when the parent is the on-chip
/// secure root and therefore out of the adversary's reach.
pub fn parent_slot_addr(layout: &TreeLayout, chunk: u64) -> Option<u64> {
    match layout.parent(chunk) {
        ParentRef::Secure { .. } => None,
        ParentRef::Chunk {
            chunk: parent,
            index,
        } => Some(layout.chunk_addr(parent) + layout.slot_offset(index) as u64),
    }
}

/// The untrusted-memory address of the §5.4 timestamp-bit byte in
/// `chunk`'s parent slot (only meaningful under the incremental-MAC
/// scheme, where the final slot byte carries one timestamp bit per
/// block). `None` when the slot lives in secure memory.
pub fn timestamp_byte_addr(layout: &TreeLayout, chunk: u64) -> Option<u64> {
    parent_slot_addr(layout, chunk).map(|slot| slot + NARROW_MAC_BYTES as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_flip() {
        let mut mem = UntrustedMemory::new(64);
        mem.write(5, &[0b1010_1010]);
        let mut adv = Adversary::new(&mut mem);
        adv.tamper(5, TamperKind::BitFlip { bit: 0 });
        assert_eq!(adv.observe(5, 1), vec![0b1010_1011]);
        // HashNode is the same byte-level action with a metadata label.
        adv.tamper(5, TamperKind::HashNode { bit: 0 });
        assert_eq!(adv.observe(5, 1), vec![0b1010_1010]);
    }

    #[test]
    fn replace_and_copy() {
        let mut mem = UntrustedMemory::new(64);
        mem.write(0, b"AAAA");
        mem.write(32, b"BBBB");
        let mut adv = Adversary::new(&mut mem);
        adv.tamper(0, TamperKind::CopyFrom { src: 32, len: 4 });
        assert_eq!(adv.observe(0, 4), b"BBBB");
        adv.tamper(
            0,
            TamperKind::Replace {
                data: b"CC".to_vec(),
            },
        );
        assert_eq!(adv.observe(0, 4), b"CCBB");
    }

    #[test]
    fn snapshot_replay_roundtrip() {
        let mut mem = UntrustedMemory::new(64);
        mem.write(8, b"old!");
        let snap = {
            let mut adv = Adversary::new(&mut mem);
            adv.snapshot(8, 4)
        };
        mem.write(8, b"new!");
        let mut adv = Adversary::new(&mut mem);
        adv.replay(&snap);
        assert_eq!(adv.observe(8, 4), b"old!");
        assert_eq!(snap.addr(), 8);
        assert_eq!(snap.data(), b"old!");
    }

    #[test]
    fn rollback_is_the_replay_primitive() {
        let mut mem = UntrustedMemory::new(64);
        mem.write(16, b"v1");
        let stale = Snapshot::new(16, b"v1".to_vec());
        mem.write(16, b"v2");
        let mut adv = Adversary::new(&mut mem);
        adv.tamper(16, stale.to_rollback());
        assert_eq!(adv.observe(16, 2), b"v1");
    }

    #[test]
    fn slot_addresses_resolve_through_the_layout() {
        // 4 KiB / 64-byte chunks: a 4-ary tree with internal levels.
        let layout = TreeLayout::new(4096, 64, 64);
        let leaf = layout.data_chunk_for(0);
        let slot = parent_slot_addr(&layout, leaf).expect("leaf parent is a hash chunk");
        let ParentRef::Chunk { chunk, index } = layout.parent(leaf) else {
            panic!("leaf parent must be in memory");
        };
        assert_eq!(
            slot,
            layout.chunk_addr(chunk) + layout.slot_offset(index) as u64
        );
        assert_eq!(timestamp_byte_addr(&layout, leaf), Some(slot + 15));
        // Top-level chunks hash into secure memory: unreachable.
        assert_eq!(parent_slot_addr(&layout, 0), None);
    }
}
