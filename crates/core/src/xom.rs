//! A XOM-style per-block MAC memory — deliberately replay-vulnerable.
//!
//! The XOM architecture (§4.3) protects each off-chip block with a MAC
//! that binds the block's *contents* and *address* under the compartment
//! key. That defeats substitution and relocation, but provides **no
//! freshness**: "there is no way to detect whether data in external memory
//! is fresh or not" (§4.4) — an adversary can replay a stale value that
//! was previously stored at the same address and the MAC still verifies.
//!
//! [`XomMemory`] reproduces exactly that design so tests and the
//! `replay_attack` example can mount the paper's loop-counter replay and
//! show that the hash-tree engine detects what XOM misses.

use miv_hash::digest::{Digest, DIGEST_BYTES};
use miv_hash::md5::Md5;

use crate::error::{ConfigError, IntegrityError};
use crate::storage::{Adversary, UntrustedMemory};

/// A per-block MAC'd memory without freshness (XOM-style).
///
/// Each block is stored in untrusted memory followed by
/// `MD5(key ‖ address ‖ data)`. Reads verify the MAC; writes recompute
/// it. There is no tree and no version state, so replays of stale
/// `(data, MAC)` pairs verify successfully — by design, to demonstrate
/// the attack.
///
/// # Examples
///
/// ```
/// use miv_core::xom::XomMemory;
///
/// let mut mem = XomMemory::new(4096, 64, *b"compartment key!");
/// mem.write_block(0, &[7u8; 64]);
/// assert_eq!(mem.read_block(0).unwrap()[0], 7);
/// ```
#[derive(Debug)]
pub struct XomMemory {
    key: [u8; 16],
    mem: UntrustedMemory,
    block_bytes: usize,
    blocks: u64,
}

impl XomMemory {
    /// Stride of one block record (data + MAC) in untrusted memory.
    fn stride(&self) -> u64 {
        self.block_bytes as u64 + DIGEST_BYTES as u64
    }

    /// Creates a memory of `data_bytes` in `block_bytes` blocks, keyed by
    /// the compartment key.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or does not divide `data_bytes`;
    /// [`try_new`](Self::try_new) is the fallible form.
    pub fn new(data_bytes: u64, block_bytes: usize, key: [u8; 16]) -> Self {
        Self::try_new(data_bytes, block_bytes, key)
            .expect("documented invariant: positive block-aligned geometry")
    }

    /// Fallible form of [`new`](Self::new), for callers building from a
    /// user-supplied spec.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroSize`] when `block_bytes` is zero,
    /// [`ConfigError::EmptySegment`] when `data_bytes` is zero, and
    /// [`ConfigError::DataNotBlockMultiple`] when `data_bytes` is not a
    /// whole number of blocks.
    pub fn try_new(
        data_bytes: u64,
        block_bytes: usize,
        key: [u8; 16],
    ) -> Result<Self, ConfigError> {
        if block_bytes == 0 {
            return Err(ConfigError::ZeroSize { what: "block" });
        }
        if data_bytes == 0 {
            return Err(ConfigError::EmptySegment);
        }
        if !data_bytes.is_multiple_of(block_bytes as u64) {
            return Err(ConfigError::DataNotBlockMultiple {
                data_bytes,
                block_bytes: block_bytes as u64,
            });
        }
        let blocks = data_bytes / block_bytes as u64;
        let mut xom = XomMemory {
            key,
            mem: UntrustedMemory::new(blocks * (block_bytes as u64 + DIGEST_BYTES as u64)),
            block_bytes,
            blocks,
        };
        // Install valid MACs over the zeroed contents.
        for b in 0..blocks {
            xom.write_block(b * block_bytes as u64, &vec![0u8; block_bytes]);
        }
        Ok(xom)
    }

    /// Number of data blocks.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// The address-bound MAC: `MD5(key ‖ "xom" ‖ addr ‖ data)`.
    fn mac(&self, addr: u64, data: &[u8]) -> Digest {
        let mut ctx = Md5::new();
        ctx.update(&self.key);
        ctx.update(b"xom-block");
        ctx.update(&addr.to_le_bytes());
        ctx.update(data);
        ctx.finalize()
    }

    fn record_addr(&self, addr: u64) -> u64 {
        assert!(
            addr.is_multiple_of(self.block_bytes as u64),
            "address {addr:#x} not block-aligned"
        );
        let block = addr / self.block_bytes as u64;
        assert!(block < self.blocks, "address {addr:#x} out of range");
        block * self.stride()
    }

    /// Writes one block at block-aligned `addr`, storing data + fresh MAC.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is misaligned/out of range or `data` is not one
    /// block long.
    pub fn write_block(&mut self, addr: u64, data: &[u8]) {
        assert_eq!(data.len(), self.block_bytes, "data must be one block");
        let rec = self.record_addr(addr);
        let mac = self.mac(addr, data);
        self.mem.write(rec, data);
        self.mem
            .write(rec + self.block_bytes as u64, mac.as_bytes());
    }

    /// Reads and verifies one block.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError`] if the stored MAC does not match —
    /// which catches substitution and relocation but, crucially, **not**
    /// replays of stale `(data, MAC)` pairs.
    pub fn read_block(&mut self, addr: u64) -> Result<Vec<u8>, IntegrityError> {
        let rec = self.record_addr(addr);
        let data = self.mem.read_vec(rec, self.block_bytes);
        let stored = self
            .mem
            .read_vec(rec + self.block_bytes as u64, DIGEST_BYTES);
        if self.mac(addr, &data).as_bytes()[..] != stored[..] {
            return Err(IntegrityError::new(
                addr / self.block_bytes as u64,
                addr,
                "xom-mac",
            ));
        }
        Ok(data)
    }

    /// Attacker's view of the raw (data + MAC) records.
    pub fn adversary(&mut self) -> Adversary<'_> {
        Adversary::new(&mut self.mem)
    }

    /// The raw record address of a block (data starts here, MAC follows),
    /// for adversaries that want to snapshot both.
    pub fn raw_record_addr(&self, addr: u64) -> u64 {
        self.record_addr(addr)
    }

    /// Size of one raw record (block + MAC).
    pub fn raw_record_len(&self) -> usize {
        self.block_bytes + DIGEST_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::TamperKind;

    fn mem() -> XomMemory {
        XomMemory::new(1024, 64, [9u8; 16])
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = mem();
        m.write_block(64, &[0xabu8; 64]);
        assert_eq!(m.read_block(64).unwrap(), vec![0xabu8; 64]);
        assert_eq!(m.read_block(0).unwrap(), vec![0u8; 64]);
        assert_eq!(m.blocks(), 16);
        assert_eq!(m.block_bytes(), 64);
    }

    #[test]
    fn detects_substitution() {
        let mut m = mem();
        m.write_block(0, &[1u8; 64]);
        let rec = m.raw_record_addr(0);
        m.adversary().tamper(rec, TamperKind::BitFlip { bit: 3 });
        assert!(m.read_block(0).is_err());
    }

    #[test]
    fn detects_relocation() {
        // Copy block 1's record over block 0's: the address binding fails.
        let mut m = mem();
        m.write_block(0, &[1u8; 64]);
        m.write_block(64, &[2u8; 64]);
        let src = m.raw_record_addr(64);
        let dst = m.raw_record_addr(0);
        let len = m.raw_record_len();
        m.adversary().tamper(dst, TamperKind::CopyFrom { src, len });
        assert!(
            m.read_block(0).is_err(),
            "relocated record must fail the address-bound MAC"
        );
        assert!(m.read_block(64).is_ok());
    }

    #[test]
    fn replay_succeeds_the_vulnerability() {
        // The §4.4 attack: stale (data, MAC) at the same address verifies.
        let mut m = mem();
        m.write_block(0, &[1u8; 64]);
        let rec = m.raw_record_addr(0);
        let len = m.raw_record_len();
        let snap = m.adversary().snapshot(rec, len);
        m.write_block(0, &[2u8; 64]);
        m.adversary().replay(&snap);
        // XOM accepts the stale value: freshness is not protected.
        assert_eq!(m.read_block(0).unwrap(), vec![1u8; 64]);
    }

    #[test]
    #[should_panic(expected = "not block-aligned")]
    fn misaligned_rejected() {
        let mut m = mem();
        let _ = m.read_block(13);
    }

    #[test]
    fn try_new_rejects_bad_geometry() {
        use crate::error::ConfigError;
        assert!(matches!(
            XomMemory::try_new(1024, 0, [0u8; 16]),
            Err(ConfigError::ZeroSize { what: "block" })
        ));
        assert!(matches!(
            XomMemory::try_new(0, 64, [0u8; 16]),
            Err(ConfigError::EmptySegment)
        ));
        assert!(matches!(
            XomMemory::try_new(100, 64, [0u8; 16]),
            Err(ConfigError::DataNotBlockMultiple {
                data_bytes: 100,
                block_bytes: 64
            })
        ));
        assert!(XomMemory::try_new(1024, 64, [0u8; 16]).is_ok());
    }
}
