//! Multiple protected compartments on one processor (§5.5's open
//! problem, §4.2/§4.3 motivation).
//!
//! The paper verifies one contiguous physical segment and notes that for
//! XOM-style systems — where an untrusted OS multiplexes mutually
//! mistrusting applications — "ensuring correctness when multiple
//! applications have data in the cache is a difficult problem that has
//! yet to be studied in detail". This module implements the conservative
//! solution the paper's machinery makes possible today:
//!
//! * each compartment owns its own tree, root and per-compartment key
//!   (derived from the processor secret, as in §4.1);
//! * on-chip secure memory banks one root set per compartment;
//! * a context switch **flushes and empties** the trusted cache, because
//!   a cached line is only trustworthy relative to the tree that verified
//!   it — the cost the paper alludes to, measurable here via the
//!   functional counters.
//!
//! The scheduler (the untrusted OS) decides *when* to switch but can
//! neither read nor forge compartment contents: swapping memory between
//! compartments, replaying a compartment's old state, or tampering any
//! byte is detected by the owning tree exactly as in the single-segment
//! case.

use std::collections::BTreeMap;
use std::fmt;

use miv_hash::md5::Md5;

use crate::engine::{MemoryBuilder, Protection, VerifiedMemory};
use crate::error::IntegrityError;

/// Identifier of a compartment (the XOM "compartment tag").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompartmentId(pub u32);

impl fmt::Display for CompartmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compartment {}", self.0)
    }
}

/// A processor hosting several mutually mistrusting protected
/// compartments.
///
/// # Examples
///
/// ```
/// use miv_core::multi::{CompartmentId, SecureContextManager};
///
/// let mut cpu = SecureContextManager::new(*b"processor secret");
/// let a = cpu.create(CompartmentId(1), 16 * 1024).unwrap();
/// cpu.switch_to(a).unwrap();
/// cpu.current_mut().unwrap().write(0, b"private to A").unwrap();
/// ```
pub struct SecureContextManager {
    secret: [u8; 16],
    compartments: BTreeMap<CompartmentId, VerifiedMemory>,
    current: Option<CompartmentId>,
    /// Context switches performed (each costs a cache flush).
    switches: u64,
}

impl fmt::Debug for SecureContextManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecureContextManager")
            .field("compartments", &self.compartments.len())
            .field("current", &self.current)
            .field("switches", &self.switches)
            .finish()
    }
}

impl SecureContextManager {
    /// Creates a manager around the processor secret.
    pub fn new(secret: [u8; 16]) -> Self {
        SecureContextManager {
            secret,
            compartments: BTreeMap::new(),
            current: None,
            switches: 0,
        }
    }

    /// Derives a compartment's key from the processor secret (the §4.1
    /// collision-resistant combination, keyed per compartment).
    pub fn compartment_key(&self, id: CompartmentId) -> [u8; 16] {
        let mut ctx = Md5::new();
        ctx.update(&self.secret);
        ctx.update(b"compartment-key");
        ctx.update(&id.0.to_le_bytes());
        ctx.finalize().into_bytes()
    }

    /// Creates a compartment with `data_bytes` of protected memory.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError`] only from machinery (never for a fresh
    /// compartment); duplicate ids panic.
    ///
    /// # Panics
    ///
    /// Panics if the id already exists.
    pub fn create(
        &mut self,
        id: CompartmentId,
        data_bytes: u64,
    ) -> Result<CompartmentId, IntegrityError> {
        assert!(!self.compartments.contains_key(&id), "{id} already exists");
        let mem = MemoryBuilder::new()
            .data_bytes(data_bytes)
            .key(self.compartment_key(id))
            .protection(Protection::HashTree)
            .cache_blocks(256)
            .build();
        self.compartments.insert(id, mem);
        Ok(id)
    }

    /// Number of compartments.
    pub fn len(&self) -> usize {
        self.compartments.len()
    }

    /// Returns `true` if no compartments exist.
    pub fn is_empty(&self) -> bool {
        self.compartments.is_empty()
    }

    /// The currently scheduled compartment.
    pub fn current_id(&self) -> Option<CompartmentId> {
        self.current
    }

    /// Context switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Switches execution to `id`, flushing and emptying the outgoing
    /// compartment's trusted cache (a cached line is only trusted
    /// relative to the tree that verified it).
    ///
    /// An outgoing compartment whose flush raises an integrity exception
    /// is **destroyed**: the paper's processor aborts a tampered task and
    /// never uses its key again, so there is nothing left to schedule.
    ///
    /// # Errors
    ///
    /// Never fails for the incoming compartment; returns the outgoing
    /// compartment's [`IntegrityError`] (after destroying it and still
    /// completing the switch) so callers can observe the abort.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist.
    pub fn switch_to(&mut self, id: CompartmentId) -> Result<(), IntegrityError> {
        assert!(self.compartments.contains_key(&id), "{id} does not exist");
        if self.current == Some(id) {
            return Ok(());
        }
        let mut aborted = None;
        if let Some(out) = self.current.take() {
            let mem = self.compartments.get_mut(&out).expect("current exists");
            if let Err(err) = mem.clear_cache() {
                // Tampered (poisoned) task: destroy it, per §5.8.
                self.compartments.remove(&out);
                aborted = Some(err);
            }
            self.switches += 1;
        }
        self.current = Some(id);
        match aborted {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// The scheduled compartment's memory.
    pub fn current_mut(&mut self) -> Option<&mut VerifiedMemory> {
        let id = self.current?;
        self.compartments.get_mut(&id)
    }

    /// Direct access to a compartment (tests / adversary plumbing).
    pub fn compartment_mut(&mut self, id: CompartmentId) -> Option<&mut VerifiedMemory> {
        self.compartments.get_mut(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::TamperKind;

    const SECRET: [u8; 16] = *b"fab-fused-secret";

    fn two_compartments() -> (SecureContextManager, CompartmentId, CompartmentId) {
        let mut cpu = SecureContextManager::new(SECRET);
        let a = cpu.create(CompartmentId(1), 16 * 1024).unwrap();
        let b = cpu.create(CompartmentId(2), 16 * 1024).unwrap();
        (cpu, a, b)
    }

    #[test]
    fn compartments_are_isolated_state() {
        let (mut cpu, a, b) = two_compartments();
        cpu.switch_to(a).unwrap();
        cpu.current_mut()
            .unwrap()
            .write(0, b"belongs to A")
            .unwrap();
        cpu.switch_to(b).unwrap();
        cpu.current_mut()
            .unwrap()
            .write(0, b"belongs to B")
            .unwrap();
        cpu.switch_to(a).unwrap();
        assert_eq!(
            cpu.current_mut().unwrap().read_vec(0, 12).unwrap(),
            b"belongs to A"
        );
        cpu.switch_to(b).unwrap();
        assert_eq!(
            cpu.current_mut().unwrap().read_vec(0, 12).unwrap(),
            b"belongs to B"
        );
        assert_eq!(cpu.switches(), 3);
    }

    #[test]
    fn keys_differ_per_compartment() {
        let cpu = SecureContextManager::new(SECRET);
        assert_ne!(
            cpu.compartment_key(CompartmentId(1)),
            cpu.compartment_key(CompartmentId(2))
        );
        // And per processor secret.
        let other = SecureContextManager::new(*b"other secret....");
        assert_ne!(
            cpu.compartment_key(CompartmentId(1)),
            other.compartment_key(CompartmentId(1))
        );
    }

    #[test]
    fn cross_compartment_transplant_is_detected() {
        // The OS copies compartment B's (plaintext-identical layout)
        // memory over compartment A's: A's tree rejects it even though
        // B's contents were self-consistent under B's tree.
        let (mut cpu, a, b) = two_compartments();
        cpu.switch_to(a).unwrap();
        cpu.current_mut().unwrap().write(0, b"AAAAAAAA").unwrap();
        cpu.current_mut().unwrap().flush().unwrap();
        cpu.switch_to(b).unwrap();
        cpu.current_mut().unwrap().write(0, b"BBBBBBBB").unwrap();
        cpu.current_mut().unwrap().flush().unwrap();

        // Steal B's whole physical image...
        let total = {
            let mem = cpu.compartment_mut(b).unwrap();
            let l = *mem.layout();
            l.total_chunks() * l.chunk_bytes() as u64
        };
        let stolen = {
            let mem = cpu.compartment_mut(b).unwrap();
            mem.adversary().snapshot(0, total as usize)
        };
        // ...and transplant it into A.
        let mem_a = cpu.compartment_mut(a).unwrap();
        mem_a.clear_cache().unwrap();
        mem_a.adversary().replay(&stolen);
        assert!(
            mem_a.read_vec(0, 8).is_err(),
            "A's secure root must reject B's image"
        );
    }

    #[test]
    fn tampering_one_compartment_leaves_others_healthy() {
        let (mut cpu, a, b) = two_compartments();
        cpu.switch_to(a).unwrap();
        cpu.current_mut().unwrap().write(0x100, b"healthy").unwrap();
        cpu.current_mut().unwrap().flush().unwrap();
        // Attack B.
        cpu.switch_to(b).unwrap();
        cpu.current_mut().unwrap().write(0x100, b"target!").unwrap();
        cpu.current_mut().unwrap().clear_cache().unwrap();
        let phys = {
            let mem = cpu.compartment_mut(b).unwrap();
            mem.layout().data_phys_addr(0x100)
        };
        cpu.compartment_mut(b)
            .unwrap()
            .adversary()
            .tamper(phys, TamperKind::BitFlip { bit: 0 });
        assert!(cpu.compartment_mut(b).unwrap().read_vec(0x100, 7).is_err());
        // Switching away destroys the aborted compartment and reports it;
        // A is unaffected and still works.
        let abort = cpu.switch_to(a);
        assert!(abort.is_err(), "the outgoing poisoned task is reported");
        assert!(cpu.compartment_mut(b).is_none(), "B was destroyed");
        assert_eq!(cpu.current_id(), Some(a));
        assert_eq!(
            cpu.current_mut().unwrap().read_vec(0x100, 7).unwrap(),
            b"healthy"
        );
    }

    #[test]
    fn switch_to_same_compartment_is_free() {
        let (mut cpu, a, _) = two_compartments();
        cpu.switch_to(a).unwrap();
        cpu.switch_to(a).unwrap();
        assert_eq!(cpu.switches(), 0, "no outgoing flush on a no-op switch");
        assert_eq!(cpu.current_id(), Some(a));
    }

    #[test]
    fn context_switches_cost_cold_misses() {
        // The flush on switch makes the incoming compartment's reads cold
        // again: functional counters show re-verification.
        let (mut cpu, a, b) = two_compartments();
        cpu.switch_to(a).unwrap();
        cpu.current_mut().unwrap().write(0, &[7u8; 64]).unwrap();
        cpu.current_mut().unwrap().reset_stats();
        // Warm read: no verification.
        cpu.current_mut().unwrap().read_vec(0, 64).unwrap();
        assert_eq!(cpu.current_mut().unwrap().stats().chunk_verifications, 0);
        // Round trip through B...
        cpu.switch_to(b).unwrap();
        cpu.switch_to(a).unwrap();
        // ...and the same read now re-verifies.
        cpu.current_mut().unwrap().reset_stats();
        cpu.current_mut().unwrap().read_vec(0, 64).unwrap();
        assert!(cpu.current_mut().unwrap().stats().chunk_verifications > 0);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_id_rejected() {
        let mut cpu = SecureContextManager::new(SECRET);
        cpu.create(CompartmentId(1), 8192).unwrap();
        cpu.create(CompartmentId(1), 8192).unwrap();
    }

    #[test]
    fn empty_manager() {
        let mut cpu = SecureContextManager::new(SECRET);
        assert!(cpu.is_empty());
        assert_eq!(cpu.len(), 0);
        assert_eq!(cpu.current_id(), None);
        assert!(cpu.current_mut().is_none());
        assert!(!format!("{cpu:?}").is_empty());
    }
}
