//! Saving and restoring a verified memory across power cycles.
//!
//! The related work the paper builds on (Maheshwari, Vingralek and
//! Shapiro's trusted database on untrusted storage) treats persistent
//! state the same way the processor treats RAM: the bulk lives on
//! untrusted media, and only the tree root must survive inside the trust
//! boundary. This module gives the functional engine that capability:
//!
//! * [`VerifiedMemory::export_state`] flushes and serializes the
//!   *untrusted* image — chunk contents, everything an adversary could
//!   see anyway — plus the layout geometry;
//! * [`VerifiedMemory::export_root`] returns the secure-root bytes, which
//!   the caller must store **inside the trust boundary** (the paper's
//!   processor keeps them in on-chip secure memory);
//! * [`restore`] rebuilds a live engine from the pair, verifying that the
//!   untrusted image still matches the root — a stale or tampered image
//!   is rejected exactly like a replayed RAM chunk.

use std::fmt;

use miv_hash::digest::{ChunkHasher, DIGEST_BYTES};

use crate::engine::{MemoryBuilder, Protection, VerifiedMemory};
use crate::error::{ConfigError, IntegrityError};
use crate::layout::TreeLayout;

/// Magic prefix of the serialized untrusted image.
const MAGIC: [u8; 8] = *b"MIVMEM01";

/// Size of the serialized image header: magic plus three little-endian
/// u64 geometry words (data, chunk and block bytes).
const HEADER_BYTES: usize = 32;

/// A serialized trust-boundary artifact failed structural validation.
///
/// Raised by [`SavedImage::from_bytes`] and by the `miv-store` on-disk
/// format parsers (superblock, trusted-root blob, journal entries) —
/// one typed vocabulary for "these bytes are not a well-formed X".
/// Structural damage is *not* an integrity violation: it indicates
/// corruption or truncation that any storage stack would notice, and is
/// reported before (and independently of) the root verification that
/// catches deliberate tampering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The magic prefix did not match.
    BadMagic {
        /// Which artifact was being parsed.
        what: &'static str,
    },
    /// Fewer bytes than the fixed header/frame requires.
    Truncated {
        /// Which artifact was being parsed.
        what: &'static str,
        /// Bytes the frame requires.
        needed: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A header field holds a value outside its representable range.
    FieldRange {
        /// Which field was malformed.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A declared length does not match the bytes that follow.
    LengthMismatch {
        /// Which artifact was being parsed.
        what: &'static str,
        /// Length the header declares.
        expected: u64,
        /// Length actually present.
        got: u64,
    },
    /// An embedded checksum over the frame did not match.
    ChecksumMismatch {
        /// Which artifact was being parsed.
        what: &'static str,
    },
    /// The header's geometry cannot produce a working layout.
    Geometry(ConfigError),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic { what } => write!(f, "{what}: bad magic"),
            FormatError::Truncated { what, needed, got } => {
                write!(f, "{what}: truncated ({got} bytes, need {needed})")
            }
            FormatError::FieldRange { what, value } => {
                write!(f, "{what}: value {value} out of range")
            }
            FormatError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: length {got} does not match declared {expected}"),
            FormatError::ChecksumMismatch { what } => write!(f, "{what}: checksum mismatch"),
            FormatError::Geometry(e) => write!(f, "malformed geometry: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<ConfigError> for FormatError {
    fn from(e: ConfigError) -> Self {
        FormatError::Geometry(e)
    }
}

/// The serialized untrusted state (safe to store anywhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedImage {
    bytes: Vec<u8>,
}

impl SavedImage {
    /// Raw serialized bytes (e.g. to write to a file).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wraps raw serialized bytes read back from storage, validating the
    /// `MIVMEM01` magic, the geometry words and the body length up
    /// front.
    ///
    /// Structural validation here is what lets [`restore`] treat a
    /// malformed header as unreachable: every `SavedImage` was either
    /// produced by [`VerifiedMemory::export_state`] or passed this
    /// check.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] describing the first structural problem
    /// found: truncation, a bad magic, geometry words that overflow
    /// `u32` or cannot form a [`TreeLayout`], or a body whose length
    /// does not match the declared geometry.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, FormatError> {
        if bytes.len() < HEADER_BYTES {
            return Err(FormatError::Truncated {
                what: "image header",
                needed: HEADER_BYTES as u64,
                got: bytes.len() as u64,
            });
        }
        if bytes[..8] != MAGIC {
            return Err(FormatError::BadMagic {
                what: "image header",
            });
        }
        let word = |i: usize| {
            u64::from_le_bytes(
                bytes[8 + 8 * i..16 + 8 * i]
                    .try_into()
                    .expect("documented invariant"),
            )
        };
        let data_bytes = word(0);
        let chunk_bytes: u32 = word(1).try_into().map_err(|_| FormatError::FieldRange {
            what: "image chunk_bytes",
            value: word(1),
        })?;
        let block_bytes: u32 = word(2).try_into().map_err(|_| FormatError::FieldRange {
            what: "image block_bytes",
            value: word(2),
        })?;
        let layout = TreeLayout::try_new(data_bytes, chunk_bytes, block_bytes)?;
        let body = (bytes.len() - HEADER_BYTES) as u64;
        if body != layout.physical_bytes() {
            return Err(FormatError::LengthMismatch {
                what: "image body",
                expected: layout.physical_bytes(),
                got: body,
            });
        }
        Ok(SavedImage { bytes })
    }
}

/// The trusted root material (must be stored inside the trust boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedRoot {
    protection: Protection,
    key: [u8; 16],
    slots: Vec<[u8; DIGEST_BYTES]>,
}

impl VerifiedMemory {
    /// Flushes all dirty state and serializes the untrusted image.
    ///
    /// # Errors
    ///
    /// Propagates verification errors from the flush.
    pub fn export_state(&mut self) -> Result<SavedImage, IntegrityError> {
        self.flush()?;
        let layout = *self.layout();
        let mut bytes = Vec::with_capacity(layout.physical_bytes() as usize + 64);
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&layout.data_bytes().to_le_bytes());
        bytes.extend_from_slice(&(layout.chunk_bytes() as u64).to_le_bytes());
        bytes.extend_from_slice(&(layout.block_bytes() as u64).to_le_bytes());
        bytes.extend_from_slice(&self.adversary_read_raw(0, layout.physical_bytes() as usize));
        Ok(SavedImage { bytes })
    }

    /// Returns the trusted root material for [`restore`].
    pub fn export_root(&self, protection: Protection, key: [u8; 16]) -> SavedRoot {
        SavedRoot {
            protection,
            key,
            slots: self.secure_root().to_vec(),
        }
    }
}

/// Rebuilds a verified memory from an untrusted image and the trusted
/// root, verifying the pairing.
///
/// `cache_blocks` and `hasher` configure the revived engine (they are
/// machine properties, not persistent state).
///
/// # Errors
///
/// Returns [`IntegrityError`] if the image does not verify against the
/// root — tampered or stale storage is rejected just like tampered RAM.
/// Structurally malformed images cannot reach this function: every
/// [`SavedImage`] was either produced by
/// [`VerifiedMemory::export_state`] or validated by
/// [`SavedImage::from_bytes`], so the header assertions below are
/// defensive invariants, not an error path.
pub fn restore(
    image: &SavedImage,
    root: &SavedRoot,
    cache_blocks: usize,
    hasher: Box<dyn ChunkHasher + Send + Sync>,
) -> Result<VerifiedMemory, IntegrityError> {
    let b = &image.bytes;
    assert!(b.len() >= 32 && b[..8] == MAGIC, "malformed image header");
    let word =
        |i: usize| u64::from_le_bytes(b[8 + 8 * i..16 + 8 * i].try_into().expect("header word"));
    let data_bytes = word(0);
    // A forged header with an over-u32 geometry must fail loudly, not
    // silently truncate into some other (possibly valid) geometry.
    let chunk_bytes: u32 = word(1)
        .try_into()
        .expect("malformed image header: chunk_bytes");
    let block_bytes: u32 = word(2)
        .try_into()
        .expect("malformed image header: block_bytes");
    let body = &b[32..];

    // Rebuild an engine with the same geometry, then overwrite its
    // physical segment and secure root with the saved pair.
    let mut mem = MemoryBuilder::new()
        .data_bytes(data_bytes)
        .chunk_bytes(chunk_bytes)
        .block_bytes(block_bytes)
        .protection(root.protection)
        .key(root.key)
        .hasher(hasher)
        .cache_blocks(cache_blocks)
        .build();
    assert_eq!(
        body.len() as u64,
        mem.layout().physical_bytes(),
        "image body does not match the layout geometry"
    );
    mem.adversary_write_raw(0, body);
    mem.restore_secure_root(&root.slots);
    // The root either blesses this image or the restore fails wholesale.
    mem.verify_all()?;
    Ok(mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::TamperKind;
    use miv_hash::digest::Md5Hasher;

    const KEY: [u8; 16] = *b"persistence-key!";

    fn build() -> VerifiedMemory {
        MemoryBuilder::new()
            .data_bytes(8 * 1024)
            .key(KEY)
            .cache_blocks(64)
            .build()
    }

    #[test]
    fn roundtrip_restores_contents() {
        let mut mem = build();
        mem.write(0x100, b"persistent payload").unwrap();
        let image = mem.export_state().unwrap();
        let root = mem.export_root(Protection::HashTree, KEY);

        let mut revived = restore(&image, &root, 64, Box::new(Md5Hasher)).unwrap();
        assert_eq!(revived.read_vec(0x100, 18).unwrap(), b"persistent payload");
        revived.write(0x100, b"and writable too!!").unwrap();
        revived.verify_all().unwrap();
    }

    #[test]
    fn tampered_image_is_rejected() {
        let mut mem = build();
        mem.write(0, b"original").unwrap();
        let mut image = mem.export_state().unwrap();
        let root = mem.export_root(Protection::HashTree, KEY);
        // Flip one bit somewhere in the stored body.
        let idx = image.bytes.len() - 100;
        image.bytes[idx] ^= 0x10;
        assert!(restore(&image, &root, 64, Box::new(Md5Hasher)).is_err());
    }

    #[test]
    fn stale_image_is_rejected() {
        // The rollback attack on persistent storage: saving, updating,
        // then restoring the OLD image against the NEW root fails.
        let mut mem = build();
        mem.write(0, b"version 1").unwrap();
        let old_image = mem.export_state().unwrap();
        mem.write(0, b"version 2").unwrap();
        mem.flush().unwrap();
        let new_root = mem.export_root(Protection::HashTree, KEY);
        assert!(
            restore(&old_image, &new_root, 64, Box::new(Md5Hasher)).is_err(),
            "rollback to version 1 must not verify against the current root"
        );
    }

    #[test]
    fn wrong_root_is_rejected() {
        let mut a = build();
        a.write(0, b"machine A").unwrap();
        let image = a.export_state().unwrap();
        let mut other = build();
        other.write(0, b"machine B").unwrap();
        other.flush().unwrap();
        let wrong_root = other.export_root(Protection::HashTree, KEY);
        assert!(restore(&image, &wrong_root, 64, Box::new(Md5Hasher)).is_err());
    }

    #[test]
    fn mac_scheme_roundtrips_too() {
        let mut mem = MemoryBuilder::new()
            .data_bytes(8 * 1024)
            .chunk_bytes(128)
            .block_bytes(64)
            .protection(Protection::IncrementalMac)
            .key(KEY)
            .cache_blocks(64)
            .build();
        mem.write(0x40, b"mac persisted").unwrap();
        let image = mem.export_state().unwrap();
        let root = mem.export_root(Protection::IncrementalMac, KEY);
        let mut revived = restore(&image, &root, 64, Box::new(Md5Hasher)).unwrap();
        assert_eq!(revived.read_vec(0x40, 13).unwrap(), b"mac persisted");
        // ...and tampering the image still fails under the MAC.
        let phys = revived.layout().data_phys_addr(0x40);
        revived
            .adversary()
            .tamper(phys, TamperKind::BitFlip { bit: 0 });
        revived.clear_cache().unwrap();
        assert!(revived.read_vec(0x40, 13).is_err());
    }

    #[test]
    fn garbage_image_is_rejected_with_typed_errors() {
        // Truncated: shorter than the fixed header.
        assert_eq!(
            SavedImage::from_bytes(vec![0; 8]),
            Err(FormatError::Truncated {
                what: "image header",
                needed: 32,
                got: 8,
            })
        );
        // Right length, wrong magic.
        assert_eq!(
            SavedImage::from_bytes(vec![0; 64]),
            Err(FormatError::BadMagic {
                what: "image header",
            })
        );
        // Valid magic, geometry word overflowing u32.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"MIVMEM01");
        bytes.extend_from_slice(&4096u64.to_le_bytes());
        bytes.extend_from_slice(&(u64::MAX).to_le_bytes());
        bytes.extend_from_slice(&64u64.to_le_bytes());
        assert_eq!(
            SavedImage::from_bytes(bytes.clone()),
            Err(FormatError::FieldRange {
                what: "image chunk_bytes",
                value: u64::MAX,
            })
        );
        // Valid header words that cannot form a layout.
        bytes[16..24].copy_from_slice(&16u64.to_le_bytes());
        assert_eq!(
            SavedImage::from_bytes(bytes.clone()),
            Err(FormatError::Geometry(ConfigError::ChunkNotBlockMultiple {
                chunk_bytes: 16,
                block_bytes: 64,
            }))
        );
        // Valid geometry, body length mismatch.
        bytes[16..24].copy_from_slice(&64u64.to_le_bytes());
        bytes.extend_from_slice(&[0; 10]);
        match SavedImage::from_bytes(bytes) {
            Err(FormatError::LengthMismatch {
                what: "image body",
                got: 10,
                ..
            }) => {}
            other => panic!("expected body length mismatch, got {other:?}"),
        }
    }

    #[test]
    fn from_bytes_accepts_a_real_image_roundtrip() {
        // The regression the typed validation must not introduce: a
        // genuine exported image still round-trips through from_bytes.
        let mut mem = build();
        mem.write(0x40, b"validated payload").unwrap();
        let image = mem.export_state().unwrap();
        let root = mem.export_root(Protection::HashTree, KEY);
        let reloaded = SavedImage::from_bytes(image.as_bytes().to_vec()).unwrap();
        assert_eq!(reloaded, image);
        let mut revived = restore(&reloaded, &root, 64, Box::new(Md5Hasher)).unwrap();
        assert_eq!(revived.read_vec(0x40, 17).unwrap(), b"validated payload");
        // Errors render a readable description.
        let err = SavedImage::from_bytes(vec![1; 40]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(!boxed.to_string().is_empty());
    }
}
