//! Hash-tree memory integrity verification — the core of the HPCA'03
//! reproduction.
//!
//! This crate implements the paper's contribution:
//!
//! * [`layout`] — the §5.5 linear chunk layout of an almost-balanced
//!   m-ary hash tree over a contiguous physical segment.
//! * [`engine`] — the **functional** engine ([`VerifiedMemory`]): real
//!   bytes, real MD5/SHA-1 digests or incremental MACs, real detection of
//!   tampering by a physical [`Adversary`].
//! * [`timing`] — the **cycle-level** checker ([`timing::L2Controller`]):
//!   the L2 cache with integrated tree machinery, read/write hash
//!   buffers, background verification, and the four schemes the paper
//!   evaluates ([`Scheme::Naive`], [`Scheme::CHash`], [`Scheme::MHash`],
//!   [`Scheme::IHash`]) plus the unprotected [`Scheme::Base`].
//! * [`storage`] — untrusted memory and the attacker model (bit flips,
//!   relocation, replay).
//! * [`dma`] — §5.7 device transfers: unchecked reads, raw DMA writes,
//!   and local tree rebuilds that adopt the data.
//! * [`multi`] — several mutually mistrusting compartments on one
//!   processor (the open problem §5.5 flags, solved conservatively).
//! * [`persist`] — save/restore across power cycles with rollback
//!   rejection (the trusted-storage connection from related work).
//! * [`xom`] — a per-block MAC memory in the style of XOM, *without*
//!   freshness, used to demonstrate the §4.4 replay attack that hash
//!   trees defeat.
//!
//! # Quick start
//!
//! ```
//! use miv_core::{MemoryBuilder, TamperKind};
//!
//! let mut mem = MemoryBuilder::new().data_bytes(32 * 1024).build();
//! mem.write(0, b"launch code: 0000").unwrap();
//! mem.flush().unwrap();
//! mem.clear_cache().unwrap();
//!
//! // Physical attack on external RAM:
//! let phys = mem.layout().data_phys_addr(13);
//! mem.adversary().tamper(phys, TamperKind::BitFlip { bit: 0 });
//!
//! let err = mem.read_vec(0, 17).unwrap_err();
//! println!("detected: {err}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod dma;
pub mod engine;
pub mod error;
pub mod hash_unit;
pub mod layout;
pub mod multi;
pub mod observe;
pub mod persist;
pub mod storage;
pub mod timing;
pub mod trusted_cache;
pub mod xom;

pub use adversary::{parent_slot_addr, timestamp_byte_addr, Adversary, Snapshot, TamperKind};
pub use engine::{EngineStats, MemoryBuilder, Protection, VerifiedMemory};
pub use error::{ConfigError, IntegrityError};
pub use layout::{ParentRef, TreeLayout};
pub use observe::HashUnitObserver;
pub use persist::{restore, FormatError, SavedImage, SavedRoot};
pub use storage::UntrustedMemory;
pub use timing::{
    CheckerConfig, CheckerEvent, CheckerStats, L2Controller, Scheme, TamperDetection,
};
