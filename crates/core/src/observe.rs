//! Telemetry hooks for the checker: hash-unit queue metrics and the
//! event handles the timing controller records walks into.
//!
//! Mirrors the observer pattern in `miv-cache`/`miv-mem`: bundles of
//! pre-registered `miv-obs` handles, disabled by default, attached in one
//! call by the simulation harness.

use miv_obs::{Counter, EventSink, Histogram, Registry, SimEvent};

/// Hash-unit telemetry. Attach with
/// [`HashEngine::set_observer`](crate::hash_unit::HashEngine::set_observer).
#[derive(Debug, Clone, Default)]
pub struct HashUnitObserver {
    /// Hash operations issued.
    pub ops: Counter,
    /// Bytes digested.
    pub bytes: Counter,
    /// Cycles each operation queued for the issue port.
    pub queue_wait: Histogram,
    /// Enqueue/dequeue events.
    pub events: EventSink,
}

impl HashUnitObserver {
    /// A no-op observer (the default).
    pub fn disabled() -> Self {
        HashUnitObserver::default()
    }

    /// Registers `{prefix}.ops`, `{prefix}.bytes` and a
    /// `{prefix}.queue_wait` histogram, recording enqueue/dequeue events
    /// into `events`.
    pub fn for_registry(registry: &Registry, prefix: &str, events: EventSink) -> Self {
        HashUnitObserver {
            ops: registry.counter(&format!("{prefix}.ops")),
            bytes: registry.counter(&format!("{prefix}.bytes")),
            queue_wait: registry.histogram(&format!("{prefix}.queue_wait")),
            events,
        }
    }

    /// Records one scheduled operation: `bytes` arriving at `now`, issue
    /// granted at `start`.
    #[inline]
    pub fn record(&self, now: u64, start: u64, bytes: u64) {
        self.ops.inc();
        self.bytes.add(bytes);
        self.queue_wait.record(start - now);
        if self.events.is_enabled() {
            self.events.record(
                now,
                SimEvent::HashEnqueue {
                    // One op never moves 4 GiB; saturate rather than
                    // truncate if that ever changes.
                    bytes: u32::try_from(bytes).unwrap_or(u32::MAX),
                },
            );
            self.events
                .record(start, SimEvent::HashDequeue { wait: start - now });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miv_obs::EventTrace;

    #[test]
    fn registers_under_prefix() {
        let reg = Registry::new();
        let trace = EventTrace::bounded(8);
        let obs = HashUnitObserver::for_registry(&reg, "hash_unit", trace.sink());
        obs.record(100, 120, 64);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["hash_unit.ops"], 1);
        assert_eq!(snap.counters["hash_unit.bytes"], 64);
        assert_eq!(snap.histograms["hash_unit.queue_wait"].count, 1);
        assert_eq!(snap.histograms["hash_unit.queue_wait"].sum, 20);
        assert_eq!(trace.recorded(), 2);
    }

    #[test]
    fn default_is_disabled() {
        let obs = HashUnitObserver::default();
        obs.record(0, 10, 64);
        assert!(!obs.ops.is_enabled());
        assert_eq!(obs.ops.get(), 0);
    }
}
