//! Direct Memory Access into protected regions (§5.7).
//!
//! A device writing through DMA bypasses the processor, so the hash tree
//! is *not* updated — and must not be, since the data has an untrusted
//! origin. The paper gives two ways to cope:
//!
//! 1. mark a subtree as unprotected, perform the transfer, then rebuild
//!    the relevant part of the tree;
//! 2. DMA into unprotected memory, then copy into protected memory.
//!
//! Either way the processor touches all the data before it becomes
//! protected, and the application then checks its integrity by its own
//! means (e.g. a digest the peer sent). The paper also requires a special
//! `ReadWithoutChecking` instruction so a program cannot be *tricked*
//! into consuming unprotected data where it expects protected data.
//!
//! This module implements both paths on top of the functional engine:
//!
//! * [`VerifiedMemory::dma_write`] — a device write straight into the
//!   protected segment's backing store (approach 1's transfer step);
//! * [`VerifiedMemory::read_without_checking`] — the explicit unchecked
//!   read;
//! * [`VerifiedMemory::reprotect`] — rebuilds the hashes covering a
//!   range (approach 1's rebuild step), touching only the affected
//!   chunks and their ancestor paths;
//! * [`VerifiedMemory::adopt`] — approach 2 in one call: the processor
//!   reads staged bytes without checking and stores them through normal
//!   verified writes.

use crate::engine::VerifiedMemory;
use crate::error::IntegrityError;

impl VerifiedMemory {
    /// A device DMA transfer into the protected segment: writes the raw
    /// bytes at data address `addr` directly to untrusted memory, without
    /// updating the tree.
    ///
    /// Until [`reprotect`](Self::reprotect) runs over the range, checked
    /// reads of these chunks raise [`IntegrityError`] — by design: DMA
    /// data has an untrusted origin.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the data segment.
    pub fn dma_write(&mut self, addr: u64, data: &[u8]) {
        assert!(
            addr + data.len() as u64 <= self.layout().data_bytes(),
            "DMA range out of bounds"
        );
        // Invalidate any (stale) cached copies of the blocks the device
        // overwrites: hardware DMA would snoop/invalidate the hierarchy.
        let block_bytes = self.layout().block_bytes() as u64;
        let phys_base = self.layout().data_phys_addr(addr);
        let first_block = phys_base & !(block_bytes - 1);
        let phys_end = phys_base + data.len() as u64;
        let mut block = first_block;
        while block < phys_end {
            self.drop_cached_block(block);
            block += block_bytes;
        }
        self.adversary_write_raw(phys_base, data);
    }

    /// `ReadWithoutChecking` (§5.7): reads raw bytes from the data
    /// segment, bypassing cache and verification.
    ///
    /// Programs must use this only where they *expect* unprotected data
    /// (e.g. a DMA buffer before adoption); ordinary reads always check.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the data segment.
    pub fn read_without_checking(&mut self, addr: u64, len: usize) -> Vec<u8> {
        assert!(
            addr + len as u64 <= self.layout().data_bytes(),
            "read range out of bounds"
        );
        let phys = self.layout().data_phys_addr(addr);
        self.adversary_read_raw(phys, len)
    }

    /// Rebuilds the tree over `[addr, addr + len)` after a DMA transfer
    /// (approach 1's rebuild): recomputes each touched chunk's digest from
    /// the current memory image and stores it through the normal parent
    /// `Write` path, so only the affected chunks and their ancestors are
    /// touched.
    ///
    /// The adopted data is *authentic-as-received*; checking that the
    /// device delivered the right bytes remains the application's job.
    ///
    /// # Errors
    ///
    /// Propagates [`IntegrityError`] if an *ancestor* path fails its own
    /// verification while being updated (i.e. unrelated tampering).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the data segment.
    pub fn reprotect(&mut self, addr: u64, len: u64) -> Result<(), IntegrityError> {
        assert!(
            addr + len <= self.layout().data_bytes(),
            "range out of bounds"
        );
        let chunk_bytes = self.layout().chunk_bytes() as u64;
        let first = self.layout().data_chunk_for(addr);
        let last = self
            .layout()
            .data_chunk_for((addr + len - 1).min(self.layout().data_bytes() - 1));
        let _ = chunk_bytes;
        for chunk in first..=last {
            self.rebuild_chunk_slot(chunk)?;
        }
        Ok(())
    }

    /// Approach 2 in one call: adopts `len` bytes that a device staged at
    /// unprotected data address `staging` into protected address `dest`,
    /// by reading them with [`read_without_checking`](Self::read_without_checking)
    /// and storing them through ordinary verified writes.
    ///
    /// # Errors
    ///
    /// Propagates verification errors from the write path.
    pub fn adopt(&mut self, staging: u64, dest: u64, len: usize) -> Result<(), IntegrityError> {
        let bytes = self.read_without_checking(staging, len);
        self.write(dest, &bytes)
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::MemoryBuilder;
    use crate::storage::TamperKind;

    #[test]
    fn dma_data_is_untrusted_until_reprotected() {
        let mut mem = MemoryBuilder::new()
            .data_bytes(16 * 1024)
            .cache_blocks(128)
            .build();
        mem.dma_write(0x400, &[0xEEu8; 256]);
        // A checked read of the DMA'd region fails (by design)...
        assert!(mem.read_vec(0x400, 16).is_err());
    }

    #[test]
    fn reprotect_adopts_dma_data() {
        let mut mem = MemoryBuilder::new()
            .data_bytes(16 * 1024)
            .cache_blocks(128)
            .build();
        mem.dma_write(0x400, &[0xEEu8; 256]);
        // The unchecked read sees the device's bytes.
        assert_eq!(mem.read_without_checking(0x400, 4), vec![0xEE; 4]);
        mem.reprotect(0x400, 256).unwrap();
        // Now checked reads succeed and the whole tree is consistent.
        assert_eq!(mem.read_vec(0x400, 256).unwrap(), vec![0xEE; 256]);
        mem.verify_all().unwrap();
        mem.audit_invariant().unwrap();
    }

    #[test]
    fn reprotect_is_local() {
        // Rebuilding a small range must not rehash the whole segment.
        let mut mem = MemoryBuilder::new()
            .data_bytes(64 * 1024)
            .cache_blocks(256)
            .build();
        mem.reset_stats();
        mem.dma_write(0, &[7u8; 64]);
        mem.reprotect(0, 64).unwrap();
        let s = mem.stats();
        let depth = mem.layout().levels() as u64 + 1;
        assert!(
            s.hash_computations <= 3 * depth,
            "local rebuild: {} hash ops for depth {}",
            s.hash_computations,
            depth
        );
    }

    #[test]
    fn unaligned_dma_ranges() {
        let mut mem = MemoryBuilder::new()
            .data_bytes(16 * 1024)
            .cache_blocks(128)
            .build();
        mem.write(0x7f0, &[1u8; 64]).unwrap();
        mem.flush().unwrap();
        // DMA a misaligned range straddling chunk boundaries.
        mem.dma_write(0x7f8, &[9u8; 100]);
        mem.reprotect(0x7f8, 100).unwrap();
        let got = mem.read_vec(0x7f0, 120).unwrap();
        assert_eq!(&got[0..8], &[1u8; 8]);
        assert_eq!(&got[8..108], &[9u8; 100]);
        mem.verify_all().unwrap();
    }

    #[test]
    fn adopt_moves_staged_data_into_protection() {
        let mut mem = MemoryBuilder::new()
            .data_bytes(16 * 1024)
            .cache_blocks(128)
            .build();
        // Device stages a payload at the top of the segment.
        mem.dma_write(12 * 1024, b"incoming packet payload!");
        // The processor adopts it into a protected buffer.
        mem.adopt(12 * 1024, 0x100, 24).unwrap();
        assert_eq!(
            mem.read_vec(0x100, 24).unwrap(),
            b"incoming packet payload!"
        );
        // The staging buffer itself stays unprotected until reclaimed
        // (a checked read there would raise — and poison the engine — so
        // a real program uses read_without_checking until this point).
        mem.reprotect(12 * 1024, 24).unwrap();
        mem.flush().unwrap();
        mem.verify_all().unwrap();
    }

    #[test]
    fn dma_cannot_mask_unrelated_tampering() {
        // Reprotecting one range must not bless tampering elsewhere.
        let mut mem = MemoryBuilder::new()
            .data_bytes(16 * 1024)
            .cache_blocks(128)
            .build();
        mem.write(0x2000, &[5u8; 64]).unwrap();
        mem.flush().unwrap();
        mem.clear_cache().unwrap();
        let victim = mem.layout().data_phys_addr(0x2000);
        mem.adversary()
            .tamper(victim, TamperKind::BitFlip { bit: 1 });
        mem.dma_write(0, &[1u8; 64]);
        mem.reprotect(0, 64).unwrap();
        assert!(
            mem.read_vec(0x2000, 8).is_err(),
            "tamper must still be caught"
        );
    }

    #[test]
    fn dma_invalidates_stale_cached_copies() {
        let mut mem = MemoryBuilder::new()
            .data_bytes(16 * 1024)
            .cache_blocks(128)
            .build();
        mem.write(0x800, &[3u8; 64]).unwrap(); // cached dirty
        mem.dma_write(0x800, &[4u8; 64]); // device overwrites in RAM
        mem.reprotect(0x800, 64).unwrap();
        // The cached stale copy must not win.
        assert_eq!(mem.read_vec(0x800, 8).unwrap(), vec![4u8; 8]);
    }
}
