//! Bulk-build determinism: the level-by-level parallel tree build must
//! produce **byte-identical** tree state — secure roots and every
//! interior slot — at any worker count, and match the scalar serial
//! reference build exactly.
//!
//! This is the invariant the `build-determinism` CI job re-checks from
//! the CLI (`mivsim` runs at `--jobs 1` vs `--jobs 4`); here it is
//! pinned directly at the engine layer across geometries, hash units
//! and both protection mechanisms.

use miv_core::{MemoryBuilder, Protection};
use miv_hash::HashAlgo;

/// Full observable tree state: the on-chip secure roots plus the entire
/// physical segment (hash chunks and data chunks alike).
fn tree_state(mem: &mut miv_core::VerifiedMemory) -> (Vec<[u8; 16]>, Vec<u8>) {
    let roots = mem.secure_root().to_vec();
    let bytes = mem.layout().physical_bytes() as usize;
    let image = mem.adversary().observe(0, bytes);
    (roots, image)
}

fn patterned(bytes: usize, salt: u8) -> Vec<u8> {
    (0..bytes)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

fn builder(data_bytes: u64, chunk: u32, block: u32, salt: u8) -> MemoryBuilder {
    MemoryBuilder::new()
        .data_bytes(data_bytes)
        .chunk_bytes(chunk)
        .block_bytes(block)
        .cache_blocks(256)
        .initial_data(patterned(data_bytes as usize, salt))
}

#[test]
fn bulk_build_is_byte_identical_at_any_jobs() {
    // Geometries: 4-ary single-block chunks, 8-ary wide chunks, and a
    // multi-block mhash-style chunk.
    for (data, chunk, block) in [
        (64 << 10, 64, 64),
        (32 << 10, 128, 128),
        (64 << 10, 128, 64),
    ] {
        for algo in HashAlgo::ALL {
            let mut base = builder(data, chunk, block, 0x5a)
                .hasher(algo.hasher())
                .build_jobs(1)
                .build();
            let want = tree_state(&mut base);
            for jobs in [2, 3, 4, 7] {
                let mut mem = builder(data, chunk, block, 0x5a)
                    .hasher(algo.hasher())
                    .build_jobs(jobs)
                    .build();
                let got = tree_state(&mut mem);
                assert_eq!(
                    got.0,
                    want.0,
                    "secure roots differ at jobs={jobs} ({}, {data}B/{chunk}/{block})",
                    algo.label()
                );
                assert_eq!(
                    got.1,
                    want.1,
                    "interior slots differ at jobs={jobs} ({}, {data}B/{chunk}/{block})",
                    algo.label()
                );
            }
        }
    }
}

#[test]
fn bulk_build_matches_serial_reference() {
    for algo in HashAlgo::ALL {
        let mut bulk = builder(64 << 10, 64, 64, 0xc3)
            .hasher(algo.hasher())
            .build_jobs(4)
            .build();
        let bulk_state = tree_state(&mut bulk);

        // Re-run the pre-bulk scalar reference over the same contents:
        // it must reproduce the bulk-built state exactly.
        let mut reference = builder(64 << 10, 64, 64, 0xc3)
            .hasher(algo.hasher())
            .build_jobs(2)
            .build();
        reference.rebuild_tree_serial();
        let serial_state = tree_state(&mut reference);

        assert_eq!(bulk_state.0, serial_state.0, "{} roots", algo.label());
        assert_eq!(bulk_state.1, serial_state.1, "{} slots", algo.label());
    }
}

#[test]
fn mac_scheme_build_is_deterministic_across_jobs() {
    let mut base = builder(32 << 10, 128, 64, 0x11)
        .protection(Protection::IncrementalMac)
        .build_jobs(1)
        .build();
    let want = tree_state(&mut base);
    for jobs in [2, 4] {
        let mut mem = builder(32 << 10, 128, 64, 0x11)
            .protection(Protection::IncrementalMac)
            .build_jobs(jobs)
            .build();
        assert_eq!(tree_state(&mut mem), want, "mac build at jobs={jobs}");
    }
}

#[test]
fn parallel_build_passes_ground_truth_audit_and_serves_reads() {
    for algo in HashAlgo::ALL {
        let data = 64u64 << 10;
        let mut mem = builder(data, 64, 64, 0x77)
            .hasher(algo.hasher())
            .build_jobs(4)
            .build();
        mem.audit_invariant()
            .unwrap_or_else(|e| panic!("{}: {e}", algo.label()));
        let init = patterned(data as usize, 0x77);
        let mut buf = [0u8; 16];
        for addr in [0u64, 4096, data - 16] {
            mem.read(addr, &mut buf).expect("verified read");
            assert_eq!(buf[..], init[addr as usize..addr as usize + 16]);
        }
    }
}
