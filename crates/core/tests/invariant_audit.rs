//! Whole-tree invariant audits under small-cache stress.
//!
//! These run the engine's ground-truth `audit_invariant` (which checks,
//! for every chunk, that the current slot value matches the digest of the
//! chunk's memory image) after every write — much stronger than the
//! black-box stress tests, at O(total chunks) per step.

use miv_core::{MemoryBuilder, Protection};

#[test]
fn hash_scheme_invariant_holds_under_stress() {
    let mut mem = MemoryBuilder::new()
        .data_bytes(8 * 1024)
        .cache_blocks(40)
        .build();
    mem.audit_invariant().expect("initial tree consistent");
    let mut state = 0x12345678u64;
    for i in 0..400 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let addr = (state >> 16) % (8 * 1024 - 16);
        let val = [(state >> 40) as u8; 16];
        mem.write(addr, &val).unwrap();
        mem.audit_invariant()
            .unwrap_or_else(|e| panic!("audit after write {i} (addr {addr:#x}): {e}"));
        if i % 100 == 0 {
            mem.flush().unwrap();
            mem.audit_invariant()
                .unwrap_or_else(|e| panic!("audit after flush {i}: {e}"));
        }
    }
}

#[test]
fn mac_scheme_invariant_holds_under_stress() {
    let mut mem = MemoryBuilder::new()
        .data_bytes(8 * 1024)
        .chunk_bytes(128)
        .block_bytes(64)
        .protection(Protection::IncrementalMac)
        .cache_blocks(48)
        .build();
    mem.audit_invariant().expect("initial tree consistent");
    let mut state = 7u64;
    for i in 0..300 {
        state = state
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let addr = (state >> 12) % (8 * 1024 - 32);
        let val = [(state >> 30) as u8; 32];
        mem.write(addr, &val).unwrap();
        mem.audit_invariant()
            .unwrap_or_else(|e| panic!("audit after write {i} (addr {addr:#x}): {e}"));
    }
    mem.flush().unwrap();
    mem.audit_invariant().expect("after final flush");
}

#[test]
fn reads_preserve_invariant() {
    let mut mem = MemoryBuilder::new()
        .data_bytes(8 * 1024)
        .cache_blocks(40)
        .build();
    for addr in (0..8 * 1024).step_by(256) {
        mem.write(addr, &[addr as u8; 8]).unwrap();
    }
    // Cold reads of everything (with evictions along the way).
    let mut state = 1u64;
    for _ in 0..300 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let addr = (state >> 16) % (8 * 1024 - 8);
        mem.read_vec(addr, 8).unwrap();
        mem.audit_invariant()
            .expect("reads must not disturb the tree");
    }
}
