//! Functional tests of the verification engine: read/write correctness,
//! write-back cascades, tamper/replay/relocation detection, scheme
//! equivalence and the initialization procedure.

use miv_core::{MemoryBuilder, Protection, TamperKind, VerifiedMemory};
use miv_hash::digest::Sha1Hasher;

fn hash_mem(cache_blocks: usize) -> VerifiedMemory {
    MemoryBuilder::new()
        .data_bytes(16 * 1024)
        .cache_blocks(cache_blocks)
        .build()
}

fn mac_mem(cache_blocks: usize) -> VerifiedMemory {
    MemoryBuilder::new()
        .data_bytes(16 * 1024)
        .chunk_bytes(128)
        .block_bytes(64)
        .protection(Protection::IncrementalMac)
        .cache_blocks(cache_blocks)
        .build()
}

#[test]
fn fresh_memory_reads_zero() {
    let mut mem = hash_mem(256);
    assert_eq!(mem.read_vec(0, 64).unwrap(), vec![0u8; 64]);
    assert_eq!(mem.read_vec(16 * 1024 - 8, 8).unwrap(), vec![0u8; 8]);
}

#[test]
fn read_your_writes_across_chunks() {
    let mut mem = hash_mem(256);
    let data: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
    mem.write(100, &data).unwrap(); // spans several 64-B chunks, misaligned
    assert_eq!(mem.read_vec(100, 300).unwrap(), data);
    // Overwrite the middle.
    mem.write(150, b"XYZ").unwrap();
    let got = mem.read_vec(100, 300).unwrap();
    assert_eq!(&got[50..53], b"XYZ");
    assert_eq!(got[49], data[49]);
    assert_eq!(got[53], data[53]);
}

#[test]
fn data_survives_flush_and_cold_read() {
    let mut mem = hash_mem(256);
    let data = vec![0xc3u8; 777];
    mem.write(4096, &data).unwrap();
    mem.clear_cache().unwrap();
    assert_eq!(mem.read_vec(4096, 777).unwrap(), data);
}

#[test]
fn small_cache_forces_writeback_cascades() {
    // A cache barely above the enforced minimum thrashes constantly;
    // correctness must be unaffected.
    let mut mem = MemoryBuilder::new()
        .data_bytes(64 * 1024)
        .cache_blocks(64)
        .build();
    let mut expected = vec![0u8; 64 * 1024];
    // Deterministic pseudo-random write pattern.
    let mut state = 0x12345678u64;
    for i in 0..2000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let addr = (state >> 16) % (64 * 1024 - 16);
        let val = [(state >> 40) as u8; 16];
        mem.write(addr, &val).unwrap();
        expected[addr as usize..addr as usize + 16].copy_from_slice(&val);
        if i % 400 == 0 {
            mem.flush().unwrap();
        }
    }
    mem.flush().unwrap();
    mem.verify_all().unwrap();
    for start in (0..64 * 1024).step_by(4096) {
        assert_eq!(
            mem.read_vec(start, 4096).unwrap(),
            expected[start as usize..start as usize + 4096].to_vec(),
            "mismatch at {start:#x}"
        );
    }
}

#[test]
fn detects_bit_flip_in_data() {
    let mut mem = hash_mem(256);
    mem.write(0, b"sensitive").unwrap();
    mem.clear_cache().unwrap();
    let phys = mem.layout().data_phys_addr(3);
    mem.adversary().tamper(phys, TamperKind::BitFlip { bit: 7 });
    let err = mem.read_vec(0, 9).unwrap_err();
    assert_eq!(err.scheme(), "hash-tree");
    // The engine is poisoned: everything fails now.
    assert!(mem.read_vec(1024, 4).is_err());
    assert!(mem.write(0, b"x").is_err());
}

#[test]
fn detects_bit_flip_in_hash_chunk() {
    let mut mem = hash_mem(256);
    mem.write(0, b"data").unwrap();
    mem.clear_cache().unwrap();
    // Tamper with an interior hash chunk (chunk 1 exists for this size).
    assert!(mem.layout().hash_chunks() > 1);
    let hash_addr = mem.layout().chunk_addr(1) + 5;
    mem.adversary()
        .tamper(hash_addr, TamperKind::BitFlip { bit: 0 });
    // A full audit must catch it even if a targeted read might not
    // traverse that chunk.
    assert!(mem.verify_all().is_err());
}

#[test]
fn detects_relocation_between_chunks() {
    let mut mem = hash_mem(256);
    mem.write(0, &[1u8; 64]).unwrap();
    mem.write(64, &[2u8; 64]).unwrap();
    mem.clear_cache().unwrap();
    let a = mem.layout().data_phys_addr(0);
    let b = mem.layout().data_phys_addr(64);
    mem.adversary()
        .tamper(a, TamperKind::CopyFrom { src: b, len: 64 });
    assert!(
        mem.read_vec(0, 64).is_err(),
        "copying an identical-format chunk to another address must fail"
    );
}

#[test]
fn detects_replay_of_stale_data() {
    // The §4.4 freshness attack, applied to the tree: snapshot a chunk,
    // let the program overwrite it, replay the stale bytes. The parent
    // hash has moved on, so the replay is caught.
    let mut mem = hash_mem(256);
    mem.write(512, b"value-v1........").unwrap();
    mem.flush().unwrap();
    let phys = mem.layout().data_phys_addr(512);
    let snap = mem.adversary().snapshot(phys, 64);
    mem.write(512, b"value-v2........").unwrap();
    mem.clear_cache().unwrap();
    mem.adversary().tamper(snap.addr(), snap.to_rollback());
    assert!(mem.read_vec(512, 16).is_err(), "stale data must not verify");
}

#[test]
fn whole_subtree_replay_is_detected() {
    // Replaying data *and* all its ancestor hash chunks still fails,
    // because the root lives in secure on-chip memory.
    let mut mem = hash_mem(256);
    mem.write(0, b"old").unwrap();
    mem.flush().unwrap();
    let total = mem.layout().total_chunks() * mem.layout().chunk_bytes() as u64;
    let snap = mem.adversary().snapshot(0, total as usize);
    mem.write(0, b"new").unwrap();
    mem.flush().unwrap();
    mem.clear_cache().unwrap();
    mem.adversary().replay(&snap);
    assert!(
        mem.read_vec(0, 3).is_err(),
        "replaying the entire untrusted memory must fail against the secure root"
    );
}

#[test]
fn untampered_memory_never_errors() {
    let mut mem = hash_mem(128);
    for round in 0..5 {
        for addr in (0..16 * 1024).step_by(512) {
            mem.write(addr, &[round as u8; 32]).unwrap();
        }
        mem.flush().unwrap();
        mem.verify_all().unwrap();
    }
}

#[test]
fn sha1_hasher_works_too() {
    let mut mem = MemoryBuilder::new()
        .data_bytes(8 * 1024)
        .hasher(Box::new(Sha1Hasher))
        .build();
    mem.write(100, b"sha1 backed").unwrap();
    mem.clear_cache().unwrap();
    assert_eq!(mem.read_vec(100, 11).unwrap(), b"sha1 backed");
    // Drop the cache again so the tampered block is re-fetched.
    mem.clear_cache().unwrap();
    let phys = mem.layout().data_phys_addr(100);
    mem.adversary().tamper(phys, TamperKind::BitFlip { bit: 1 });
    assert!(mem.read_vec(100, 11).is_err());
}

// ---------------------------------------------------------------------
// Incremental-MAC (ihash) scheme
// ---------------------------------------------------------------------

#[test]
fn mac_scheme_read_write_roundtrip() {
    let mut mem = mac_mem(256);
    let data: Vec<u8> = (0..500u16).map(|i| (i * 7) as u8).collect();
    mem.write(1000, &data).unwrap();
    mem.flush().unwrap();
    mem.clear_cache().unwrap();
    assert_eq!(mem.read_vec(1000, 500).unwrap(), data);
    mem.verify_all().unwrap();
}

#[test]
fn mac_scheme_detects_tamper() {
    let mut mem = mac_mem(256);
    mem.write(0, b"macintosh").unwrap();
    mem.clear_cache().unwrap();
    let phys = mem.layout().data_phys_addr(2);
    mem.adversary().tamper(phys, TamperKind::BitFlip { bit: 4 });
    let err = mem.read_vec(0, 9).unwrap_err();
    assert_eq!(err.scheme(), "incremental-mac");
}

#[test]
fn mac_scheme_detects_replay_via_timestamp() {
    // Even when the adversary replays data *and* knows the MAC slot was
    // updated in place, the flipped timestamp bit defeats the §5.4
    // cancellation attacks.
    let mut mem = mac_mem(256);
    mem.write(256, b"v1-payload").unwrap();
    mem.flush().unwrap();
    let phys = mem.layout().data_phys_addr(256);
    let snap = mem.adversary().snapshot(phys, 64);
    mem.write(256, b"v2-payload").unwrap();
    mem.flush().unwrap();
    mem.clear_cache().unwrap();
    mem.adversary().tamper(snap.addr(), snap.to_rollback());
    assert!(mem.read_vec(256, 10).is_err());
}

#[test]
fn mac_scheme_partial_chunk_writeback() {
    // Write only one block of a two-block chunk and flush: the ihash
    // write-back must not need the sibling block, and the result must
    // verify.
    let mut mem = mac_mem(256);
    mem.write(0, &[0xaau8; 64]).unwrap(); // block 0 of chunk, whole-block
    let before = mem.stats();
    mem.flush().unwrap();
    let after = mem.stats();
    assert!(after.mac_updates > before.mac_updates);
    mem.clear_cache().unwrap();
    mem.verify_all().unwrap();
    assert_eq!(mem.read_vec(0, 64).unwrap(), vec![0xaau8; 64]);
}

#[test]
fn mac_scheme_small_cache_stress() {
    let mut mem = MemoryBuilder::new()
        .data_bytes(32 * 1024)
        .chunk_bytes(128)
        .block_bytes(64)
        .protection(Protection::IncrementalMac)
        .cache_blocks(80)
        .build();
    let mut expected = vec![0u8; 32 * 1024];
    let mut state = 99u64;
    for _ in 0..1500 {
        state = state
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let addr = (state >> 12) % (32 * 1024 - 8);
        let val = [(state >> 33) as u8; 8];
        mem.write(addr, &val).unwrap();
        expected[addr as usize..addr as usize + 8].copy_from_slice(&val);
    }
    mem.flush().unwrap();
    mem.verify_all().unwrap();
    assert_eq!(mem.read_vec(0, 32 * 1024).unwrap(), expected);
}

#[test]
fn ihash_writeback_reads_fewer_blocks() {
    // Functional counterpart of the paper's i-scheme advantage: flushing
    // a partially-resident chunk costs the MAC scheme one unchecked block
    // read instead of a verified gather of the whole chunk.
    let mut hash = MemoryBuilder::new()
        .data_bytes(16 * 1024)
        .chunk_bytes(256)
        .block_bytes(64)
        .cache_blocks(256)
        .build();
    let mut mac = MemoryBuilder::new()
        .data_bytes(16 * 1024)
        .chunk_bytes(256)
        .block_bytes(64)
        .protection(Protection::IncrementalMac)
        .cache_blocks(256)
        .build();
    // Dirty exactly one whole block per chunk (no fetch on allocate),
    // then flush, then drop the cache so the next round is partial again.
    for round in 0..4u8 {
        for chunk_start in (0..16 * 1024).step_by(256) {
            hash.write(chunk_start, &[round; 64]).unwrap();
            mac.write(chunk_start, &[round; 64]).unwrap();
        }
        hash.clear_cache().unwrap();
        mac.clear_cache().unwrap();
    }
    let h = hash.stats();
    let m = mac.stats();
    // The hash scheme gathers the 3 sibling blocks per write-back; the
    // MAC scheme reads 1 unchecked block per write-back.
    assert!(
        m.block_reads + m.unchecked_block_reads < h.block_reads,
        "mac reads {} + {} unchecked vs hash {}",
        m.block_reads,
        m.unchecked_block_reads,
        h.block_reads
    );
    assert!(m.mac_updates > 0 && h.hash_computations > 0);
}

// ---------------------------------------------------------------------
// Initialization (§5.6.2)
// ---------------------------------------------------------------------

#[test]
fn touch_initialization_is_idempotent_on_valid_tree() {
    let mut mem = MemoryBuilder::new()
        .data_bytes(8 * 1024)
        .initial_data(vec![0x11u8; 8 * 1024])
        .build();
    let root_before = mem.secure_root().to_vec();
    mem.initialize_via_touch().unwrap();
    assert_eq!(mem.secure_root(), &root_before[..]);
    mem.verify_all().unwrap();
}

#[test]
fn touch_initialization_repairs_scrambled_hash_tree() {
    // The literal §5.6.2 procedure rebuilds a consistent tree from
    // whatever state memory is in (hash scheme only — see footnote 7).
    let mut mem = MemoryBuilder::new().data_bytes(8 * 1024).build();
    mem.write(0, b"payload to preserve").unwrap();
    mem.flush().unwrap();
    mem.clear_cache().unwrap();
    // Scramble every hash chunk.
    for c in 0..mem.layout().hash_chunks() {
        let addr = mem.layout().chunk_addr(c);
        mem.adversary().tamper(
            addr,
            TamperKind::Replace {
                data: vec![0xff; 64],
            },
        );
    }
    // With exceptions on, reads fail. Run the init procedure instead.
    mem.initialize_via_touch().unwrap();
    mem.verify_all().unwrap();
    assert_eq!(mem.read_vec(0, 19).unwrap(), b"payload to preserve");
}

#[test]
fn builder_and_touch_initialization_agree() {
    // Building bottom-up and running the touch procedure on identical
    // contents must produce identical secure roots (the procedures are
    // equivalent).
    let data = vec![0x42u8; 4 * 1024];
    let mut a = MemoryBuilder::new()
        .data_bytes(4 * 1024)
        .initial_data(data.clone())
        .build();
    let mut b = MemoryBuilder::new()
        .data_bytes(4 * 1024)
        .initial_data(data)
        .build();
    b.initialize_via_touch().unwrap();
    b.clear_cache().unwrap();
    assert_eq!(a.secure_root(), b.secure_root());
    a.verify_all().unwrap();
    b.verify_all().unwrap();
}

// ---------------------------------------------------------------------
// Counters / amortization
// ---------------------------------------------------------------------

#[test]
fn caching_amortizes_verifications() {
    let mut mem = hash_mem(512);
    mem.read_vec(0, 64).unwrap();
    let cold = mem.stats().chunk_verifications;
    assert!(cold >= 1);
    mem.reset_stats();
    // Re-reading cached data verifies nothing.
    for _ in 0..100 {
        mem.read_vec(0, 64).unwrap();
    }
    assert_eq!(mem.stats().chunk_verifications, 0);
    // Sequential streaming shares parents: far fewer verifications than
    // the naive log-depth per access.
    mem.reset_stats();
    for addr in (0..16 * 1024).step_by(64) {
        mem.read_vec(addr, 64).unwrap();
    }
    let s = mem.stats();
    let accesses = 16 * 1024 / 64;
    let depth = mem.layout().levels() as u64 + 1;
    assert!(
        s.chunk_verifications < accesses * depth / 2,
        "caching must amortize: {} verifications for {} accesses (depth {})",
        s.chunk_verifications,
        accesses,
        depth
    );
}

#[test]
fn whole_block_writes_skip_fetch() {
    let mut mem = hash_mem(256);
    mem.write(0, &[1u8; 64]).unwrap();
    let s = mem.stats();
    assert_eq!(s.alloc_no_fetch, 1);
    assert_eq!(s.block_reads, 0, "no fetch, no check for a full overwrite");
    // A partial write does fetch.
    mem.write(4096, &[2u8; 8]).unwrap();
    assert!(mem.stats().block_reads > 0);
}

#[test]
fn stats_reset() {
    let mut mem = hash_mem(256);
    mem.write(0, &[1u8; 64]).unwrap();
    assert_ne!(mem.stats(), Default::default());
    mem.reset_stats();
    assert_eq!(mem.stats(), Default::default());
    let (h, m) = mem.cache_counters();
    assert!(h + m > 0);
}
