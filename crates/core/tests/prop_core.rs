//! Property-based tests: layout arithmetic, engine-vs-shadow-memory
//! equivalence, and universal tamper detection.

use miv_core::layout::{ParentRef, TreeLayout};
use miv_core::{MemoryBuilder, Protection, TamperKind};
use proptest::prelude::*;

proptest! {
    /// Every child found via `children` names its parent via `parent`,
    /// for arbitrary segment sizes and both chunk geometries.
    #[test]
    fn layout_parent_children_roundtrip(
        data_chunks in 1u64..5000,
        geometry in 0usize..3,
    ) {
        let (chunk, block) = [(64u32, 64u32), (128, 64), (128, 128)][geometry];
        let l = TreeLayout::new(data_chunks * chunk as u64, chunk, block);
        prop_assert!(l.data_chunks() >= data_chunks);
        for c in 0..l.total_chunks() {
            for child in l.children(c) {
                prop_assert_eq!(
                    l.parent(child),
                    ParentRef::Chunk { chunk: c, index: (child % l.arity() as u64) as u32 }
                );
            }
        }
    }

    /// Hash-slot assignments are injective: no two chunks share a slot.
    #[test]
    fn layout_slots_unique(data_chunks in 1u64..3000) {
        let l = TreeLayout::new(data_chunks * 64, 64, 64);
        let mut seen = std::collections::HashSet::new();
        for c in 0..l.total_chunks() {
            let key = match l.parent(c) {
                ParentRef::Secure { index } => (u64::MAX, index),
                ParentRef::Chunk { chunk, index } => (chunk, index),
            };
            prop_assert!(seen.insert(key));
        }
        // And every parent referenced is a hash chunk.
        for c in 0..l.total_chunks() {
            if let ParentRef::Chunk { chunk, .. } = l.parent(c) {
                prop_assert!(l.is_hash_chunk(chunk));
            }
        }
    }

    /// Depth is log-bounded: at most ceil(log_m(total)) + 1.
    #[test]
    fn layout_depth_is_logarithmic(data_chunks in 1u64..100_000) {
        let l = TreeLayout::new(data_chunks * 64, 64, 64);
        let m = l.arity() as f64;
        let bound = (l.total_chunks() as f64).log(m).ceil() as u32 + 1;
        prop_assert!(l.levels() <= bound, "{} > {}", l.levels(), bound);
    }
}

/// Operations for the engine-vs-shadow test.
#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, len: usize, fill: u8 },
    Read { addr: u64, len: usize },
    Flush,
    ClearCache,
}

fn op_strategy(data_bytes: u64) -> impl Strategy<Value = Op> {
    let addr = 0..data_bytes - 64;
    prop_oneof![
        4 => (addr.clone(), 1usize..64, any::<u8>())
            .prop_map(|(addr, len, fill)| Op::Write { addr, len, fill }),
        3 => (addr, 1usize..64).prop_map(|(addr, len)| Op::Read { addr, len }),
        1 => Just(Op::Flush),
        1 => Just(Op::ClearCache),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The verified memory behaves exactly like a flat byte array under
    /// arbitrary op sequences (no adversary): reads always match a shadow
    /// model and nothing ever raises.
    #[test]
    fn engine_matches_shadow_memory(
        ops in proptest::collection::vec(op_strategy(4096), 1..120),
        mac in any::<bool>(),
    ) {
        let data_bytes = 4096u64;
        let mut mem = if mac {
            MemoryBuilder::new()
                .data_bytes(data_bytes)
                .chunk_bytes(128)
                .block_bytes(64)
                .protection(Protection::IncrementalMac)
                .cache_blocks(48)
                .build()
        } else {
            MemoryBuilder::new().data_bytes(data_bytes).cache_blocks(40).build()
        };
        let mut shadow = vec![0u8; data_bytes as usize];
        for op in &ops {
            match *op {
                Op::Write { addr, len, fill } => {
                    let data = vec![fill; len];
                    mem.write(addr, &data).unwrap();
                    shadow[addr as usize..addr as usize + len].copy_from_slice(&data);
                }
                Op::Read { addr, len } => {
                    let got = mem.read_vec(addr, len).unwrap();
                    prop_assert_eq!(&got[..], &shadow[addr as usize..addr as usize + len]);
                }
                Op::Flush => mem.flush().unwrap(),
                Op::ClearCache => mem.clear_cache().unwrap(),
            }
        }
        mem.flush().unwrap();
        mem.verify_all().unwrap();
        prop_assert_eq!(mem.read_vec(0, data_bytes as usize).unwrap(), shadow);
    }

    /// Flipping ANY single bit anywhere in the physical segment (data or
    /// hash chunks alike) is detected by a full audit.
    #[test]
    fn any_single_bit_flip_is_detected(
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
        mac in any::<bool>(),
    ) {
        let mut mem = if mac {
            MemoryBuilder::new()
                .data_bytes(2048)
                .chunk_bytes(128)
                .block_bytes(64)
                .protection(Protection::IncrementalMac)
                .cache_blocks(48)
                .build()
        } else {
            MemoryBuilder::new().data_bytes(2048).cache_blocks(40).build()
        };
        // Put nonzero content in and push everything to memory.
        for addr in (0..2048).step_by(64) {
            mem.write(addr, &[(addr % 251) as u8; 64]).unwrap();
        }
        mem.clear_cache().unwrap();
        let total = mem.layout().total_chunks() * mem.layout().chunk_bytes() as u64;
        let target = ((total - 1) as f64 * byte_frac) as u64;
        mem.adversary().tamper(target, TamperKind::BitFlip { bit });
        prop_assert!(
            mem.verify_all().is_err(),
            "flip of bit {bit} at {target:#x} (of {total:#x}) went undetected"
        );
    }

    /// Replay of any chunk-aligned stale snapshot is detected after the
    /// chunk has been legitimately rewritten.
    #[test]
    fn replay_of_any_chunk_is_detected(chunk_frac in 0.0f64..1.0) {
        let mut mem = MemoryBuilder::new().data_bytes(2048).cache_blocks(40).build();
        for addr in (0..2048).step_by(64) {
            mem.write(addr, &[1u8; 64]).unwrap();
        }
        mem.flush().unwrap();
        // Snapshot one data chunk.
        let data_chunks = mem.layout().data_chunks();
        let which = ((data_chunks - 1) as f64 * chunk_frac) as u64;
        let data_addr = which * 64;
        let phys = mem.layout().data_phys_addr(data_addr);
        let snap = mem.adversary().snapshot(phys, 64);
        // Legitimate update, then replay.
        mem.write(data_addr, &[2u8; 64]).unwrap();
        mem.flush().unwrap();
        mem.clear_cache().unwrap();
        mem.adversary().replay(&snap);
        prop_assert!(mem.read_vec(data_addr, 64).is_err());
    }
}
