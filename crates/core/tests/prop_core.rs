//! Randomized property tests: layout arithmetic, engine-vs-shadow-memory
//! equivalence, and universal tamper detection, driven by the
//! workspace's deterministic PRNG (`miv_obs::rng`).

use miv_core::layout::{ParentRef, TreeLayout};
use miv_core::{EngineStats, MemoryBuilder, Protection, TamperKind, VerifiedMemory};
use miv_obs::rng::Rng;

/// Every child found via `children` names its parent via `parent`,
/// for arbitrary segment sizes and both chunk geometries.
#[test]
fn layout_parent_children_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x1a01);
    for _case in 0..48 {
        let data_chunks = rng.gen_range_u64(1, 5000);
        let (chunk, block) = [(64u32, 64u32), (128, 64), (128, 128)][rng.gen_range_usize(0, 3)];
        let l = TreeLayout::new(data_chunks * chunk as u64, chunk, block);
        assert!(l.data_chunks() >= data_chunks);
        for c in 0..l.total_chunks() {
            for child in l.children(c) {
                assert_eq!(
                    l.parent(child),
                    ParentRef::Chunk {
                        chunk: c,
                        index: (child % l.arity() as u64) as u32
                    }
                );
            }
        }
    }
}

/// Hash-slot assignments are injective: no two chunks share a slot.
#[test]
fn layout_slots_unique() {
    let mut rng = Rng::seed_from_u64(0x1a02);
    for _case in 0..48 {
        let data_chunks = rng.gen_range_u64(1, 3000);
        let l = TreeLayout::new(data_chunks * 64, 64, 64);
        let mut seen = std::collections::HashSet::new();
        for c in 0..l.total_chunks() {
            let key = match l.parent(c) {
                ParentRef::Secure { index } => (u64::MAX, index),
                ParentRef::Chunk { chunk, index } => (chunk, index),
            };
            assert!(seen.insert(key));
        }
        // And every parent referenced is a hash chunk.
        for c in 0..l.total_chunks() {
            if let ParentRef::Chunk { chunk, .. } = l.parent(c) {
                assert!(l.is_hash_chunk(chunk));
            }
        }
    }
}

/// Depth is log-bounded: at most ceil(log_m(total)) + 1.
#[test]
fn layout_depth_is_logarithmic() {
    let mut rng = Rng::seed_from_u64(0x1a03);
    for _case in 0..64 {
        let data_chunks = rng.gen_range_u64(1, 100_000);
        let l = TreeLayout::new(data_chunks * 64, 64, 64);
        let m = l.arity() as f64;
        let bound = (l.total_chunks() as f64).log(m).ceil() as u32 + 1;
        assert!(l.levels() <= bound, "{} > {}", l.levels(), bound);
    }
}

/// Operations for the engine-vs-shadow test.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write { addr: u64, len: usize, fill: u8 },
    Read { addr: u64, len: usize },
    Flush,
    ClearCache,
}

fn random_op(rng: &mut Rng, data_bytes: u64) -> Op {
    let addr = rng.gen_range_u64(0, data_bytes - 64);
    match rng.pick_weighted(&[4, 3, 1, 1]) {
        0 => Op::Write {
            addr,
            len: rng.gen_range_usize(1, 64),
            fill: rng.gen_u8(),
        },
        1 => Op::Read {
            addr,
            len: rng.gen_range_usize(1, 64),
        },
        2 => Op::Flush,
        _ => Op::ClearCache,
    }
}

fn build_memory(data_bytes: u64, mac: bool) -> VerifiedMemory {
    if mac {
        MemoryBuilder::new()
            .data_bytes(data_bytes)
            .chunk_bytes(128)
            .block_bytes(64)
            .protection(Protection::IncrementalMac)
            .cache_blocks(48)
            .build()
    } else {
        MemoryBuilder::new()
            .data_bytes(data_bytes)
            .cache_blocks(40)
            .build()
    }
}

/// The verified memory behaves exactly like a flat byte array under
/// arbitrary op sequences (no adversary): reads always match a shadow
/// model and nothing ever raises.
#[test]
fn engine_matches_shadow_memory() {
    let mut rng = Rng::seed_from_u64(0xe5e1);
    for case in 0..64 {
        let data_bytes = 4096u64;
        let mut mem = build_memory(data_bytes, case % 2 == 0);
        let mut shadow = vec![0u8; data_bytes as usize];
        let n = rng.gen_range_usize(1, 120);
        for _ in 0..n {
            match random_op(&mut rng, data_bytes) {
                Op::Write { addr, len, fill } => {
                    let data = vec![fill; len];
                    mem.write(addr, &data).unwrap();
                    shadow[addr as usize..addr as usize + len].copy_from_slice(&data);
                }
                Op::Read { addr, len } => {
                    let got = mem.read_vec(addr, len).unwrap();
                    assert_eq!(&got[..], &shadow[addr as usize..addr as usize + len]);
                }
                Op::Flush => mem.flush().unwrap(),
                Op::ClearCache => mem.clear_cache().unwrap(),
            }
        }
        mem.flush().unwrap();
        mem.verify_all().unwrap();
        assert_eq!(mem.read_vec(0, data_bytes as usize).unwrap(), shadow);
    }
}

/// Flipping ANY single bit anywhere in the physical segment (data or
/// hash chunks alike) is detected by a full audit.
#[test]
fn any_single_bit_flip_is_detected() {
    let mut rng = Rng::seed_from_u64(0xb17f);
    for case in 0..48 {
        let mut mem = build_memory(2048, case % 2 == 0);
        // Put nonzero content in and push everything to memory.
        for addr in (0..2048).step_by(64) {
            mem.write(addr, &[(addr % 251) as u8; 64]).unwrap();
        }
        mem.clear_cache().unwrap();
        let total = mem.layout().total_chunks() * mem.layout().chunk_bytes() as u64;
        let target = rng.gen_range_u64(0, total);
        let bit = rng.gen_range_u64(0, 8) as u8;
        mem.adversary().tamper(target, TamperKind::BitFlip { bit });
        assert!(
            mem.verify_all().is_err(),
            "flip of bit {bit} at {target:#x} (of {total:#x}) went undetected"
        );
    }
}

/// Replay of any chunk-aligned stale snapshot is detected after the
/// chunk has been legitimately rewritten.
#[test]
fn replay_of_any_chunk_is_detected() {
    let mut rng = Rng::seed_from_u64(0x4e91);
    for _case in 0..48 {
        let mut mem = MemoryBuilder::new()
            .data_bytes(2048)
            .cache_blocks(40)
            .build();
        for addr in (0..2048).step_by(64) {
            mem.write(addr, &[1u8; 64]).unwrap();
        }
        mem.flush().unwrap();
        // Snapshot one data chunk.
        let data_chunks = mem.layout().data_chunks();
        let which = rng.gen_range_u64(0, data_chunks);
        let data_addr = which * 64;
        let phys = mem.layout().data_phys_addr(data_addr);
        let snap = mem.adversary().snapshot(phys, 64);
        // Legitimate update, then replay.
        mem.write(data_addr, &[2u8; 64]).unwrap();
        mem.flush().unwrap();
        mem.clear_cache().unwrap();
        mem.adversary().replay(&snap);
        assert!(mem.read_vec(data_addr, 64).is_err());
    }
}

/// The five paper geometries at the functional-engine level: the
/// hash-tree chunk/block shapes the timing schemes use, plus the
/// incremental-MAC configuration.
fn five_geometries(data_bytes: u64) -> Vec<VerifiedMemory> {
    let tree = |chunk: u32, block: u32, cache: usize| {
        MemoryBuilder::new()
            .data_bytes(data_bytes)
            .chunk_bytes(chunk)
            .block_bytes(block)
            .protection(Protection::HashTree)
            .cache_blocks(cache)
            .build()
    };
    vec![
        tree(64, 64, 40),   // naive/chash shape, small cache
        tree(64, 64, 256),  // chash shape, roomy cache
        tree(128, 64, 48),  // mhash shape: wide chunks, narrow blocks
        tree(128, 128, 32), // whole-chunk blocks
        MemoryBuilder::new()
            .data_bytes(data_bytes)
            .chunk_bytes(128)
            .block_bytes(64)
            .protection(Protection::IncrementalMac)
            .cache_blocks(48)
            .build(), // ihash
    ]
}

/// Memoized + batched-flush operation is byte-identical to the
/// unmemoized, scalar-flush engine under arbitrary op interleavings, on
/// every scheme geometry: the fast paths are pure optimizations.
#[test]
fn memoized_engine_matches_unmemoized() {
    let mut rng = Rng::seed_from_u64(0x3e30);
    for case in 0..40 {
        let data_bytes = 4096u64;
        let which = case % five_geometries(data_bytes).len();
        let mut fast = five_geometries(data_bytes).swap_remove(which);
        let mut slow = five_geometries(data_bytes).swap_remove(which);
        slow.set_memoization(false);
        slow.set_flush_batch_lanes(1);
        assert!(fast.memoization());

        let n = rng.gen_range_usize(20, 150);
        for _ in 0..n {
            match random_op(&mut rng, data_bytes) {
                Op::Write { addr, len, fill } => {
                    let data = vec![fill; len];
                    fast.write(addr, &data).unwrap();
                    slow.write(addr, &data).unwrap();
                }
                Op::Read { addr, len } => {
                    assert_eq!(
                        fast.read_vec(addr, len).unwrap(),
                        slow.read_vec(addr, len).unwrap()
                    );
                }
                Op::Flush => {
                    fast.flush().unwrap();
                    slow.flush().unwrap();
                }
                Op::ClearCache => {
                    fast.clear_cache().unwrap();
                    slow.clear_cache().unwrap();
                }
            }
        }
        fast.flush().unwrap();
        slow.flush().unwrap();
        fast.verify_all().unwrap();
        slow.verify_all().unwrap();
        assert_eq!(
            fast.read_vec(0, data_bytes as usize).unwrap(),
            slow.read_vec(0, data_bytes as usize).unwrap()
        );
        // The memoized engine never hashes more than the scalar one.
        assert!(fast.stats().hash_computations <= slow.stats().hash_computations);
    }
}

/// The memo fast path actually fires on repeated-access workloads, and
/// disabling it restores per-access verification.
#[test]
fn memoization_elides_repeat_verifications() {
    let run = |memoize: bool| {
        let mut mem = MemoryBuilder::new()
            .data_bytes(4096)
            .cache_blocks(20)
            .build();
        mem.set_memoization(memoize);
        for addr in (0..4096).step_by(64) {
            mem.write(addr, &[0xab; 64]).unwrap();
        }
        mem.flush().unwrap();
        mem.clear_cache().unwrap();
        // Re-read everything twice: the tiny cache forces re-fetches.
        for _ in 0..2 {
            for addr in (0..4096).step_by(64) {
                mem.read_vec(addr, 64).unwrap();
            }
        }
        mem.stats()
    };
    let on = run(true);
    let off = run(false);
    assert!(on.memo_hits > 0, "memo path never fired");
    assert_eq!(off.memo_hits, 0);
    assert!(
        on.chunk_verifications < off.chunk_verifications,
        "memoization must elide verifications: {} vs {}",
        on.chunk_verifications,
        off.chunk_verifications
    );
}

fn random_engine_stats(rng: &mut Rng) -> EngineStats {
    EngineStats {
        chunk_verifications: rng.gen_range_u64(0, 1000),
        hash_computations: rng.gen_range_u64(0, 1000),
        mac_updates: rng.gen_range_u64(0, 1000),
        block_reads: rng.gen_range_u64(0, 1000),
        unchecked_block_reads: rng.gen_range_u64(0, 1000),
        block_writes: rng.gen_range_u64(0, 1000),
        writebacks: rng.gen_range_u64(0, 1000),
        alloc_no_fetch: rng.gen_range_u64(0, 1000),
        memo_hits: rng.gen_range_u64(0, 1000),
        batched_writebacks: rng.gen_range_u64(0, 1000),
    }
}

/// `EngineStats::merge` is associative and commutative with the default
/// as identity, and `delta` inverts it — so any segmentation of a run
/// sums identically.
#[test]
fn engine_stats_merge_is_associative() {
    let mut rng = Rng::seed_from_u64(0xe57a);
    for _case in 0..200 {
        let a = random_engine_stats(&mut rng);
        let b = random_engine_stats(&mut rng);
        let c = random_engine_stats(&mut rng);

        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);

        let mut with_zero = a;
        with_zero.merge(&EngineStats::default());
        assert_eq!(with_zero, a);

        let mut sum = a;
        sum.merge(&b);
        assert_eq!(sum.delta(&a), b);
    }
}

/// Segmenting a run at `reset_stats` boundaries and merging the
/// per-segment stats reproduces an uninterrupted run's totals.
#[test]
fn engine_stats_segments_sum_to_whole() {
    let mut rng = Rng::seed_from_u64(0x5e95);
    for _case in 0..16 {
        let data_bytes = 4096u64;
        let n = rng.gen_range_usize(10, 80);
        let cut = rng.gen_range_usize(1, n);
        let ops: Vec<Op> = (0..n).map(|_| random_op(&mut rng, data_bytes)).collect();

        let apply = |mem: &mut VerifiedMemory, op: Op| match op {
            Op::Write { addr, len, fill } => mem.write(addr, &vec![fill; len]).unwrap(),
            Op::Read { addr, len } => {
                mem.read_vec(addr, len).unwrap();
            }
            Op::Flush => mem.flush().unwrap(),
            Op::ClearCache => mem.clear_cache().unwrap(),
        };

        let mut whole = build_memory(data_bytes, false);
        for &op in &ops {
            apply(&mut whole, op);
        }

        let mut segmented = build_memory(data_bytes, false);
        let mut merged = EngineStats::default();
        for (i, &op) in ops.iter().enumerate() {
            if i == cut {
                merged.merge(&segmented.stats());
                segmented.reset_stats();
            }
            apply(&mut segmented, op);
        }
        merged.merge(&segmented.stats());
        assert_eq!(merged, whole.stats());
    }
}
