//! Scheme-level behavioural tests of the cycle-level checker, beyond the
//! unit tests in `timing.rs`: cross-scheme invariants, traffic
//! accounting, and the ablation knobs.

use miv_cache::{CacheConfig, ReplacementPolicy};
use miv_core::timing::{CheckerConfig, CheckerEvent, L2Controller, Scheme};
use miv_mem::{MemoryBusConfig, TrafficClass};

fn controller(scheme: Scheme, l2_kb: u64, line: u32, chunk: u32) -> L2Controller {
    let mut cfg = CheckerConfig::hpca03(scheme);
    cfg.chunk_bytes = chunk;
    cfg.protected_bytes = 16 << 20;
    L2Controller::new(
        cfg,
        CacheConfig::l2(l2_kb << 10, line),
        MemoryBusConfig::default(),
    )
}

/// Drives a mixed read/write pattern and returns the controller.
fn drive(mut ctl: L2Controller, accesses: u64, stride: u64, write_every: u64) -> L2Controller {
    let mut now = 0;
    for i in 0..accesses {
        let write = write_every > 0 && i % write_every == 0;
        now = ctl.access(now, (i * stride) % (8 << 20), write, false);
    }
    ctl
}

#[test]
fn every_scheme_services_the_same_pattern() {
    for scheme in Scheme::ALL {
        let chunk = match scheme {
            Scheme::MHash | Scheme::IHash => 128,
            _ => 64,
        };
        let ctl = drive(controller(scheme, 256, 64, chunk), 3000, 64 * 37, 5);
        let s = ctl.stats();
        assert!(s.data_fetches > 0, "{scheme}");
        if scheme.verifies() {
            assert!(s.verifications > 0, "{scheme}");
            assert!(ctl.verification_horizon() > 0, "{scheme}");
        } else {
            assert_eq!(s.verifications, 0);
            assert_eq!(ctl.bus_stats().hash_bytes(), 0);
        }
    }
}

#[test]
fn verification_horizon_is_monotone() {
    let mut ctl = controller(Scheme::CHash, 256, 64, 64);
    let mut now = 0;
    let mut last_horizon = 0;
    for i in 0..2000u64 {
        now = ctl.access(now, (i * 64 * 131) % (8 << 20), i % 7 == 0, false);
        let h = ctl.verification_horizon();
        assert!(
            h >= last_horizon,
            "horizon went backwards: {h} < {last_horizon}"
        );
        last_horizon = h;
    }
}

#[test]
fn data_ready_never_exceeds_verification_horizon_under_blocking() {
    let mut cfg = CheckerConfig::hpca03(Scheme::CHash);
    cfg.protected_bytes = 16 << 20;
    cfg.block_on_verify = true;
    let mut ctl = L2Controller::new(
        cfg,
        CacheConfig::l2(256 << 10, 64),
        MemoryBusConfig::default(),
    );
    let mut now = 0;
    for i in 0..500u64 {
        let ready = ctl.access(now, (i * 64 * 61) % (8 << 20), false, false);
        // With blocking semantics the returned time includes this access's
        // verification, which the horizon also covers.
        assert!(ctl.verification_horizon() >= ready || ready == now + 10);
        now = ready;
    }
}

#[test]
fn naive_writebacks_walk_the_tree() {
    // A write-heavy thrash pattern forces dirty evictions; in the naive
    // scheme every write-back does a read-modify-write per tree level.
    let ctl = drive(controller(Scheme::Naive, 256, 64, 64), 8000, 64 * 4099, 1);
    let s = ctl.stats();
    assert!(s.writebacks > 100, "write-backs occurred: {}", s.writebacks);
    let bus = ctl.bus_stats();
    let hash_writes = bus.bytes_for(TrafficClass::HashWrite);
    assert!(
        hash_writes > s.writebacks * 64 * 3,
        "each naive write-back rewrites several ancestor chunks: {hash_writes}"
    );
}

#[test]
fn chash_writebacks_update_parents_in_cache() {
    // Moderate locality so hash lines get reuse (a total thrash would
    // push chash toward naive's traffic).
    let ctl = drive(controller(Scheme::CHash, 256, 64, 64), 8000, 64 * 37, 4);
    let s = ctl.stats();
    assert!(s.writebacks > 50, "write-backs occurred: {}", s.writebacks);
    // Hash write-back traffic exists (dirty hash lines eventually spill)
    // but stays far below naive's per-level rewrite.
    let naive = drive(controller(Scheme::Naive, 256, 64, 64), 8000, 64 * 37, 4);
    let c_hash_bytes = ctl.bus_stats().hash_bytes();
    let n_hash_bytes = naive.bus_stats().hash_bytes();
    assert!(
        c_hash_bytes * 2 < n_hash_bytes,
        "chash {c_hash_bytes} vs naive {n_hash_bytes}"
    );
}

#[test]
fn mhash_sibling_fills_count_as_data_traffic() {
    let mut ctl = controller(Scheme::MHash, 1024, 64, 128);
    let mut now = 0;
    for i in 0..200u64 {
        now = ctl.access(now, i * 128, false, false);
    }
    let s = ctl.stats();
    // Every chunk miss fetched the demand block plus its sibling.
    assert_eq!(s.data_fetches, 200);
    assert_eq!(s.extra_data_fetches, 200);
    // Accessing all the siblings afterwards is free (they were filled).
    let before = ctl.stats().data_fetches;
    for i in 0..200u64 {
        now = ctl.access(now, i * 128 + 64, false, false);
    }
    assert_eq!(ctl.stats().data_fetches, before, "siblings were prefetched");
}

#[test]
fn ihash_writeback_traffic_shape() {
    // ihash write-backs: one unchecked old-value read + one block write +
    // MAC work; no sibling gather even when siblings are absent.
    let mut cfg = CheckerConfig::hpca03(Scheme::IHash);
    cfg.chunk_bytes = 256; // 4 blocks per chunk
    cfg.protected_bytes = 16 << 20;
    let mut ctl = L2Controller::new(
        cfg,
        CacheConfig::l2(256 << 10, 64),
        MemoryBusConfig::default(),
    );
    let mut now = 0;
    for i in 0..6000u64 {
        now = ctl.access(now, (i * 256 * 1021) % (8 << 20), true, true);
    }
    let s = ctl.stats();
    assert!(s.writebacks > 100);
    // With whole-line store allocation the read path never gathers, so
    // extra fetches ≈ one per write-back (the unchecked old read).
    let per_wb = s.extra_data_fetches as f64 / s.writebacks as f64;
    assert!(per_wb < 1.5, "ihash extra fetches per write-back: {per_wb}");
}

#[test]
fn replacement_policy_changes_behaviour_deterministically() {
    let run = |policy: ReplacementPolicy| {
        let mut cfg = CheckerConfig::hpca03(Scheme::CHash);
        cfg.protected_bytes = 16 << 20;
        cfg.l2_policy = policy;
        let ctl = L2Controller::new(
            cfg,
            CacheConfig::l2(256 << 10, 64),
            MemoryBusConfig::default(),
        );
        let ctl = drive(ctl, 5000, 64 * 97, 9);
        (ctl.l2_stats().data.misses(), ctl.stats().hash_fetches)
    };
    let lru = run(ReplacementPolicy::Lru);
    let fifo = run(ReplacementPolicy::Fifo);
    let random = run(ReplacementPolicy::Random);
    // Deterministic per policy.
    assert_eq!(lru, run(ReplacementPolicy::Lru));
    assert_eq!(random, run(ReplacementPolicy::Random));
    // The policies genuinely differ on this pattern.
    assert!(lru != fifo || lru != random, "{lru:?} {fifo:?} {random:?}");
}

#[test]
fn protected_segment_size_sets_walk_depth() {
    // A deeper tree (bigger protected segment) costs the naive scheme
    // proportionally more hash fetches per miss.
    let fetches = |protected: u64| {
        let mut cfg = CheckerConfig::hpca03(Scheme::Naive);
        cfg.protected_bytes = protected;
        let mut ctl = L2Controller::new(
            cfg,
            CacheConfig::l2(256 << 10, 64),
            MemoryBusConfig::default(),
        );
        ctl.access(0, 0, false, false);
        ctl.stats().hash_fetches
    };
    let shallow = fetches(1 << 20);
    let deep = fetches(256 << 20);
    assert!(deep >= shallow + 3, "deep {deep} vs shallow {shallow}");
}

#[test]
fn probe_records_a_cold_miss_walk() {
    let mut ctl = controller(Scheme::CHash, 1024, 64, 64);
    ctl.enable_probe();
    let ready = ctl.access(0, 0, false, false);
    let events = ctl.take_probe();
    let demands = events
        .iter()
        .filter(|e| matches!(e, CheckerEvent::DemandFetch { .. }))
        .count();
    let hash_fetches = events
        .iter()
        .filter(|e| matches!(e, CheckerEvent::HashFetch { .. }))
        .count();
    let verifies: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            CheckerEvent::VerifyComplete { chunk, done } => Some((*chunk, *done)),
            _ => None,
        })
        .collect();
    assert_eq!(demands, 1);
    let depth = ctl.layout().unwrap().levels() as usize;
    assert_eq!(hash_fetches, depth, "cold walk fetches one chunk per level");
    assert_eq!(verifies.len(), depth + 1, "every level verifies");
    // The demand data returns before the background checks complete.
    let last_verify = verifies.iter().map(|(_, d)| *d).max().unwrap();
    assert!(ready < last_verify);
    // Probe is consumed.
    assert!(ctl.take_probe().is_empty());
    // Disabled by default: a fresh controller records nothing.
    let mut quiet = controller(Scheme::CHash, 1024, 64, 64);
    quiet.access(0, 0, false, false);
    assert!(quiet.take_probe().is_empty());
}

#[test]
fn probe_records_writebacks() {
    let mut ctl = controller(Scheme::CHash, 256, 64, 64);
    // Dirty enough lines to force write-backs, then probe one more round.
    let mut now = 0;
    for i in 0..5000u64 {
        now = ctl.access(now, (i * 64 * 4099) % (8 << 20), true, true);
    }
    ctl.enable_probe();
    for i in 5000..5300u64 {
        now = ctl.access(now, (i * 64 * 4099) % (8 << 20), true, true);
    }
    let events = ctl.take_probe();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, CheckerEvent::WriteBack { .. })),
        "write-backs must be recorded"
    );
}

#[test]
fn miss_latency_stat_tracks_speculation() {
    let avg = |block: bool| {
        let mut cfg = CheckerConfig::hpca03(Scheme::CHash);
        cfg.protected_bytes = 16 << 20;
        cfg.block_on_verify = block;
        let ctl = L2Controller::new(
            cfg,
            CacheConfig::l2(256 << 10, 64),
            MemoryBusConfig::default(),
        );
        let ctl = drive(ctl, 2000, 64 * 61, 0);
        ctl.stats().avg_miss_latency()
    };
    let speculative = avg(false);
    let blocking = avg(true);
    assert!(
        blocking > speculative + 50.0,
        "blocking {blocking} must exceed speculative {speculative} by the hash latency"
    );
}
