//! Randomized property tests for the cycle-level checker: arbitrary
//! access streams never panic, timing is monotone and deterministic,
//! accounting invariants hold for every scheme, and attached telemetry
//! mirrors the built-in statistics.

use miv_cache::CacheConfig;
use miv_core::timing::{CheckerConfig, CheckerStats, L2Controller, Scheme};
use miv_mem::MemoryBusConfig;
use miv_obs::rng::Rng;
use miv_obs::{EventTrace, Registry};

#[derive(Debug, Clone, Copy)]
struct Access {
    addr: u64,
    write: bool,
    full_line: bool,
}

fn random_access(rng: &mut Rng) -> Access {
    let write = rng.gen_bool(0.5);
    Access {
        addr: rng.gen_range_u64(0, 4 << 20),
        write,
        full_line: write && rng.gen_bool(0.5),
    }
}

fn controller(scheme: Scheme, buffer_entries: u32) -> L2Controller {
    let mut cfg = CheckerConfig::hpca03(scheme);
    cfg.protected_bytes = 8 << 20;
    cfg.buffer_entries = buffer_entries;
    cfg.chunk_bytes = match scheme {
        Scheme::MHash | Scheme::IHash => 128,
        _ => 64,
    };
    L2Controller::new(
        cfg,
        CacheConfig::l2(128 << 10, 64),
        MemoryBusConfig::default(),
    )
}

/// No access stream panics, data-ready times are sane, and the
/// bookkeeping adds up, for every scheme.
#[test]
fn any_stream_is_serviced() {
    let mut rng = Rng::seed_from_u64(0x7a11);
    for case in 0..48 {
        let scheme = Scheme::ALL[case % Scheme::ALL.len()];
        let buffers = rng.gen_range_u64(1, 20) as u32;
        let mut ctl = controller(scheme, buffers);
        let mut now = 0;
        let mut horizon = 0;
        let n = rng.gen_range_usize(1, 300);
        for _ in 0..n {
            let a = random_access(&mut rng);
            let ready = ctl.access(now, a.addr, a.write, a.full_line);
            assert!(ready >= now, "time went backwards");
            let h = ctl.verification_horizon();
            assert!(h >= horizon, "horizon went backwards");
            horizon = h;
            now = ready;
        }
        let s = ctl.stats();
        let l2 = ctl.l2_stats();
        // Every timed miss corresponds to an L2 data miss.
        assert_eq!(s.misses_timed, l2.data.misses());
        // Demand fetches + no-fetch allocations cover all misses for the
        // single-block schemes (multi-block chunks may satisfy a miss from
        // an earlier sibling fill).
        if matches!(scheme, Scheme::Base | Scheme::Naive | Scheme::CHash) {
            assert_eq!(s.data_fetches + s.alloc_no_fetch, l2.data.misses());
        } else {
            assert!(s.data_fetches + s.alloc_no_fetch <= l2.data.misses());
        }
        // Bus bytes are line-granular.
        assert_eq!(ctl.bus_stats().total_bytes() % 64, 0);
        if !scheme.verifies() {
            assert_eq!(ctl.bus_stats().hash_bytes(), 0);
            assert_eq!(ctl.verification_horizon(), 0);
        }
    }
}

/// Identical streams produce identical results (full determinism), and
/// attaching telemetry changes neither timing nor statistics.
#[test]
fn deterministic_and_observation_is_free() {
    let mut rng = Rng::seed_from_u64(0xde7e);
    for _case in 0..24 {
        let n = rng.gen_range_usize(1, 150);
        let accesses: Vec<Access> = (0..n).map(|_| random_access(&mut rng)).collect();
        let run = |observe: bool| {
            let mut ctl = controller(Scheme::CHash, 16);
            let registry = Registry::new();
            let trace = EventTrace::bounded(4096);
            if observe {
                ctl.attach_observability(&registry, trace.sink());
            }
            let mut now = 0;
            for a in &accesses {
                now = ctl.access(now, a.addr, a.write, a.full_line);
            }
            (
                now,
                ctl.stats(),
                *ctl.l2_stats(),
                ctl.bus_stats().total_bytes(),
            )
        };
        assert_eq!(run(false), run(false));
        assert_eq!(run(false), run(true));
    }
}

/// Verification makes nothing faster: for the same stream, chash
/// total time is at least base's, and naive at least chash's.
#[test]
fn scheme_cost_ordering() {
    let mut rng = Rng::seed_from_u64(0x0c05);
    for _case in 0..24 {
        let n = rng.gen_range_usize(20, 200);
        let accesses: Vec<Access> = (0..n).map(|_| random_access(&mut rng)).collect();
        let total = |scheme| {
            let mut ctl = controller(scheme, 16);
            let mut now = 0;
            for a in &accesses {
                now = ctl.access(now, a.addr, a.write, a.full_line);
            }
            now
        };
        let base = total(Scheme::Base);
        let chash = total(Scheme::CHash);
        let naive = total(Scheme::Naive);
        assert!(chash >= base, "chash {chash} < base {base}");
        assert!(naive >= chash, "naive {naive} < chash {chash}");
    }
}

/// Registry counters attached via `attach_observability` agree exactly
/// with the controller's own statistics, and the walk-depth histogram
/// counts one sample per verified demand miss.
#[test]
fn telemetry_mirrors_stats() {
    let mut rng = Rng::seed_from_u64(0x0b5e);
    for case in 0..24 {
        let scheme = [Scheme::Naive, Scheme::CHash, Scheme::MHash, Scheme::IHash][case % 4];
        let mut ctl = controller(scheme, 16);
        let registry = Registry::new();
        let trace = EventTrace::bounded(1 << 16);
        ctl.attach_observability(&registry, trace.sink());
        let mut now = 0;
        let n = rng.gen_range_usize(10, 200);
        for _ in 0..n {
            let a = random_access(&mut rng);
            now = ctl.access(now, a.addr, a.write, a.full_line);
        }
        let snap = registry.snapshot();
        let l2 = ctl.l2_stats();
        assert_eq!(snap.counters["l2.data.read_hits"], l2.data.read_hits);
        assert_eq!(snap.counters["l2.data.read_misses"], l2.data.read_misses);
        assert_eq!(snap.counters["l2.data.write_misses"], l2.data.write_misses);
        assert_eq!(snap.counters["l2.hash.read_hits"], l2.hash.read_hits);
        assert_eq!(snap.counters["l2.hash.evictions"], l2.hash.evictions);
        assert_eq!(
            snap.counters["bus.busy_cycles"],
            ctl.bus_stats().busy_cycles
        );
        assert_eq!(
            snap.histograms["bus.wait_cycles"].sum,
            ctl.bus_stats().wait_cycles
        );
        let engine = ctl.engine_stats();
        assert_eq!(snap.counters["hash_unit.ops"], engine.ops);
        assert_eq!(snap.counters["hash_unit.bytes"], engine.bytes);
        assert_eq!(
            snap.histograms["hash_unit.queue_wait"].sum,
            engine.wait_cycles
        );
        // One walk-depth sample per verified demand fetch (no-fetch
        // allocations and write-back walks are not demand walks).
        let walks = snap.histograms["checker.walk_depth"].count;
        assert_eq!(walks, ctl.stats().data_fetches);
        // Event stream saw one l2_miss per timed miss.
        let misses = trace
            .records()
            .iter()
            .filter(|r| r.event.kind() == "l2_miss")
            .count() as u64;
        assert_eq!(trace.dropped(), 0, "ring sized for the whole run");
        assert_eq!(misses, ctl.stats().misses_timed);
    }
}

fn random_checker_stats(rng: &mut Rng) -> CheckerStats {
    CheckerStats {
        data_fetches: rng.gen_range_u64(0, 1000),
        hash_fetches: rng.gen_range_u64(0, 1000),
        extra_data_fetches: rng.gen_range_u64(0, 1000),
        verifications: rng.gen_range_u64(0, 1000),
        writebacks: rng.gen_range_u64(0, 1000),
        alloc_no_fetch: rng.gen_range_u64(0, 1000),
        read_buffer_wait: rng.gen_range_u64(0, 1000),
        write_buffer_wait: rng.gen_range_u64(0, 1000),
        miss_latency: rng.gen_range_u64(0, 1000),
        misses_timed: rng.gen_range_u64(0, 1000),
    }
}

/// `CheckerStats::merge` is associative and commutative with the default
/// as identity, and `delta` inverts it.
#[test]
fn checker_stats_merge_is_associative() {
    let mut rng = Rng::seed_from_u64(0xc57a);
    for _case in 0..200 {
        let a = random_checker_stats(&mut rng);
        let b = random_checker_stats(&mut rng);
        let c = random_checker_stats(&mut rng);

        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);

        let mut with_zero = a;
        with_zero.merge(&CheckerStats::default());
        assert_eq!(with_zero, a);

        let mut sum = a;
        sum.merge(&b);
        assert_eq!(sum.delta(&a), b);
    }
}
