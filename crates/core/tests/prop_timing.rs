//! Property tests for the cycle-level checker: arbitrary access streams
//! never panic, timing is monotone and deterministic, and accounting
//! invariants hold for every scheme.

use miv_cache::CacheConfig;
use miv_core::timing::{CheckerConfig, L2Controller, Scheme};
use miv_mem::MemoryBusConfig;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Access {
    addr: u64,
    write: bool,
    full_line: bool,
}

fn access_strategy() -> impl Strategy<Value = Access> {
    (0u64..(4 << 20), any::<bool>(), any::<bool>())
        .prop_map(|(addr, write, full_line)| Access { addr, write, full_line: write && full_line })
}

fn controller(scheme: Scheme, buffer_entries: u32) -> L2Controller {
    let mut cfg = CheckerConfig::hpca03(scheme);
    cfg.protected_bytes = 8 << 20;
    cfg.buffer_entries = buffer_entries;
    cfg.chunk_bytes = match scheme {
        Scheme::MHash | Scheme::IHash => 128,
        _ => 64,
    };
    L2Controller::new(cfg, CacheConfig::l2(128 << 10, 64), MemoryBusConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No access stream panics, data-ready times are sane, and the
    /// bookkeeping adds up, for every scheme.
    #[test]
    fn any_stream_is_serviced(
        accesses in proptest::collection::vec(access_strategy(), 1..300),
        scheme_idx in 0usize..5,
        buffers in 1u32..20,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let mut ctl = controller(scheme, buffers);
        let mut now = 0;
        let mut horizon = 0;
        for a in &accesses {
            let ready = ctl.access(now, a.addr, a.write, a.full_line);
            prop_assert!(ready >= now, "time went backwards");
            let h = ctl.verification_horizon();
            prop_assert!(h >= horizon, "horizon went backwards");
            horizon = h;
            now = ready;
        }
        let s = ctl.stats();
        let l2 = ctl.l2_stats();
        // Every timed miss corresponds to an L2 data miss.
        prop_assert_eq!(s.misses_timed, l2.data.misses());
        // Demand fetches + no-fetch allocations cover all misses for the
        // single-block schemes (multi-block chunks may satisfy a miss from
        // an earlier sibling fill).
        if matches!(scheme, Scheme::Base | Scheme::Naive | Scheme::CHash) {
            prop_assert_eq!(s.data_fetches + s.alloc_no_fetch, l2.data.misses());
        } else {
            prop_assert!(s.data_fetches + s.alloc_no_fetch <= l2.data.misses());
        }
        // Bus bytes are line-granular.
        prop_assert_eq!(ctl.bus_stats().total_bytes() % 64, 0);
        if !scheme.verifies() {
            prop_assert_eq!(ctl.bus_stats().hash_bytes(), 0);
            prop_assert_eq!(ctl.verification_horizon(), 0);
        }
    }

    /// Identical streams produce identical results (full determinism).
    #[test]
    fn deterministic(accesses in proptest::collection::vec(access_strategy(), 1..150)) {
        let run = || {
            let mut ctl = controller(Scheme::CHash, 16);
            let mut now = 0;
            for a in &accesses {
                now = ctl.access(now, a.addr, a.write, a.full_line);
            }
            (now, ctl.stats(), *ctl.l2_stats(), ctl.bus_stats().total_bytes())
        };
        prop_assert_eq!(run(), run());
    }

    /// Verification makes nothing faster: for the same stream, chash
    /// total time is at least base's, and naive at least chash's.
    #[test]
    fn scheme_cost_ordering(accesses in proptest::collection::vec(access_strategy(), 20..200)) {
        let total = |scheme| {
            let mut ctl = controller(scheme, 16);
            let mut now = 0;
            for a in &accesses {
                now = ctl.access(now, a.addr, a.write, a.full_line);
            }
            now
        };
        let base = total(Scheme::Base);
        let chash = total(Scheme::CHash);
        let naive = total(Scheme::Naive);
        prop_assert!(chash >= base, "chash {chash} < base {base}");
        prop_assert!(naive >= chash, "naive {naive} < chash {chash}");
    }
}
