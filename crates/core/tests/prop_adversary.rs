//! Randomized adversary property: under every protection scheme, a
//! single-bit flip injected anywhere in the physical segment (data or
//! hash/MAC region) *between* accesses is detected before the corrupted
//! value is ever returned — reads either match the pre-attack shadow
//! model or raise, the flip itself always raises by the end of a full
//! scan, and the engine stays poisoned afterwards (§5.8 abort
//! semantics).

use miv_core::{MemoryBuilder, Protection, TamperKind, VerifiedMemory};
use miv_obs::rng::Rng;

const DATA_BYTES: u64 = 64 << 10;
const BLOCK: u64 = 64;

fn random_memory(rng: &mut Rng, init: &[u8]) -> VerifiedMemory {
    // Geometry grid: every scheme family the checker models — one-block
    // chunks (naive/chash), multi-block hash chunks (mhash), and the
    // incremental MAC with its §5.4 timestamped slots (ihash).
    let (protection, chunk) = [
        (Protection::HashTree, 64u32),
        (Protection::HashTree, 128),
        (Protection::HashTree, 256),
        (Protection::IncrementalMac, 128),
        (Protection::IncrementalMac, 256),
    ][rng.gen_range_usize(0, 5)];
    MemoryBuilder::new()
        .data_bytes(DATA_BYTES)
        .chunk_bytes(chunk)
        .block_bytes(BLOCK as u32)
        .protection(protection)
        .cache_blocks(rng.gen_range_usize(48, 160))
        .initial_data(init.to_vec())
        .build()
}

#[test]
fn bit_flip_between_accesses_never_leaks_corrupted_data() {
    let mut rng = Rng::seed_from_u64(0xad5e_7a11);
    for case in 0..40 {
        let mut shadow = vec![0u8; DATA_BYTES as usize];
        rng.fill_bytes(&mut shadow);
        let mut mem = random_memory(&mut rng, &shadow);

        // A burst of legitimate activity so caches and tree state are
        // warm and partially dirty when the attacker strikes.
        for _ in 0..rng.gen_range_usize(5, 60) {
            let addr = rng.gen_range_u64(0, DATA_BYTES / BLOCK) * BLOCK;
            if rng.gen_bool(0.4) {
                let mut data = vec![0u8; rng.gen_range_usize(1, BLOCK as usize + 1)];
                rng.fill_bytes(&mut data);
                mem.write(addr, &data).unwrap();
                shadow[addr as usize..addr as usize + data.len()].copy_from_slice(&data);
            } else {
                let got = mem.read_vec(addr, BLOCK as usize).unwrap();
                assert_eq!(&got[..], &shadow[addr as usize..addr as usize + 64]);
            }
        }

        // Quiesce so the flip lands on the authoritative memory image
        // with no trusted on-chip copy left to mask it.
        mem.flush().unwrap();
        mem.clear_cache().unwrap();

        // Flip one bit anywhere in the physical segment: program data,
        // interior hash chunks, MAC tags and timestamp bytes alike.
        let physical = mem.layout().total_chunks() * mem.layout().chunk_bytes() as u64;
        let target = rng.gen_range_u64(0, physical);
        let bit = rng.gen_u8() % 8;
        mem.adversary().tamper(target, TamperKind::BitFlip { bit });

        // Scan every data block. Each read either returns exactly the
        // shadow bytes or raises; the corrupted value itself must never
        // come back.
        let mut detected_at = None;
        for block in 0..DATA_BYTES / BLOCK {
            let addr = block * BLOCK;
            match mem.read_vec(addr, BLOCK as usize) {
                Ok(got) => assert_eq!(
                    &got[..],
                    &shadow[addr as usize..addr as usize + 64],
                    "case {case}: corrupted or stale bytes returned at {addr:#x} \
                     after flipping bit {bit} of {target:#x}"
                ),
                Err(e) => {
                    detected_at = Some((addr, e));
                    break;
                }
            }
        }
        let (addr, err) = detected_at.unwrap_or_else(|| {
            panic!("case {case}: flip of bit {bit} at {target:#x} survived a full scan")
        });
        assert!(err.chunk() < mem.layout().total_chunks());

        // §5.8: one violation poisons the engine for good — every
        // further operation fails without touching memory.
        assert!(mem.read_vec(addr, 1).is_err(), "poisoned read must fail");
        assert!(mem.write(0, &[0]).is_err(), "poisoned write must fail");
        assert!(mem.verify_all().is_err(), "poisoned audit must fail");
    }
}

#[test]
fn hash_region_flips_are_detected_by_data_reads_alone() {
    // Corrupting only *metadata* (never program data) must still be
    // caught by ordinary reads: every data access verifies its path, and
    // paths cover every hash chunk.
    let mut rng = Rng::seed_from_u64(0x04a5_b0b1);
    for _case in 0..24 {
        let mut shadow = vec![0u8; DATA_BYTES as usize];
        rng.fill_bytes(&mut shadow);
        let mut mem = random_memory(&mut rng, &shadow);
        mem.flush().unwrap();
        mem.clear_cache().unwrap();

        let hash_bytes = mem.layout().hash_chunks() * mem.layout().chunk_bytes() as u64;
        let target = rng.gen_range_u64(0, hash_bytes);
        mem.adversary().tamper(
            target,
            TamperKind::HashNode {
                bit: rng.gen_u8() % 8,
            },
        );

        let mut detected = false;
        for block in 0..DATA_BYTES / BLOCK {
            match mem.read_vec(block * BLOCK, BLOCK as usize) {
                Ok(got) => assert_eq!(
                    &got[..],
                    &shadow[(block * BLOCK) as usize..(block * BLOCK + 64) as usize]
                ),
                Err(_) => {
                    detected = true;
                    break;
                }
            }
        }
        assert!(detected, "metadata flip at {target:#x} went undetected");
    }
}
