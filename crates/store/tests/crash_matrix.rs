//! The crash-point matrix: kill the store at *every* mutating device
//! step of a scripted two-commit workload, reopen from the trusted
//! root, and require the recovered data region to equal one of the
//! committed states byte-exactly — never a torn mixture.
//!
//! This is the executable form of the commit protocol's safety claim:
//! the shadow superblock plus the out-of-band root generation make the
//! root switch atomic, and the redo journal makes the main region
//! reconstructible on either side of it.

use miv_hash::Md5Hasher;
use miv_store::{BlockStore, CrashMedium, MemMedium, MemRootStore, StoreConfig, StoreError};

const DATA_BYTES: u64 = 4 * 1024;

fn config() -> StoreConfig {
    StoreConfig {
        data_bytes: DATA_BYTES,
        page_bytes: 128,
        cache_pages: 12,
        journal_slots: 0,
    }
}

/// The deterministic two-phase script. Phase 1 ends at the first
/// commit (state "old"), phase 2 at the second (state "new"). Any
/// error aborts the script — exactly what a crash does.
fn run_script(
    medium: CrashMedium<MemMedium>,
    roots: MemRootStore,
) -> Result<(u64, u64), StoreError> {
    let mut store = BlockStore::create(medium, roots, config(), Box::new(Md5Hasher))?;
    for i in 0..20u64 {
        let addr = (i * 211) % (DATA_BYTES - 32);
        store.write(addr, &[0x11 + i as u8; 32])?;
    }
    store.commit()?;
    let steps_old = store.medium().steps();
    for i in 0..20u64 {
        let addr = (i * 389) % (DATA_BYTES - 48);
        store.write(addr, &[0xA0 ^ i as u8; 48])?;
    }
    store.commit()?;
    let steps_new = store.medium().steps();
    Ok((steps_old, steps_new))
}

/// The expected data region per committed generation, replayed on a
/// plain in-memory model.
fn model(generation: u64) -> Vec<u8> {
    let mut data = vec![0u8; DATA_BYTES as usize];
    if generation >= 2 {
        for i in 0..20u64 {
            let addr = ((i * 211) % (DATA_BYTES - 32)) as usize;
            data[addr..addr + 32].copy_from_slice(&[0x11 + i as u8; 32]);
        }
    }
    if generation >= 3 {
        for i in 0..20u64 {
            let addr = ((i * 389) % (DATA_BYTES - 48)) as usize;
            data[addr..addr + 48].copy_from_slice(&[0xA0 ^ i as u8; 48]);
        }
    }
    data
}

#[test]
fn crash_at_every_step_recovers_old_or_new_never_torn() {
    // Unarmed probe: measure the script's device steps.
    let (steps_old, steps_new) =
        run_script(CrashMedium::new(MemMedium::new()), MemRootStore::new()).unwrap();
    assert!(steps_old > 2, "phase 1 must journal and commit");
    assert!(steps_new > steps_old + 2, "phase 2 must journal and commit");

    let mut recovered_old = 0u32;
    let mut recovered_new = 0u32;
    // Step 1 is create's image write; crashing there leaves no
    // committed root (nothing to recover), so the matrix starts at the
    // first step after create has published generation 1.
    for fail_at in 3..=steps_new {
        let mem = MemMedium::new();
        let roots = MemRootStore::new();
        let crash = CrashMedium::new(mem.clone()).arm(fail_at);
        let outcome = run_script(crash, roots.clone());
        assert!(
            matches!(outcome, Err(StoreError::Crashed)),
            "armed step {fail_at} must crash the script, got {outcome:?}"
        );

        // Power back on: reopen the surviving bytes from the trusted
        // root and fully verify the tree.
        let (mut store, report) = BlockStore::open(
            mem.clone(),
            roots.clone(),
            Box::new(Md5Hasher),
            config().cache_pages,
        )
        .unwrap_or_else(|e| panic!("reopen after crash at step {fail_at} failed: {e}"));
        assert!(
            (1..=3).contains(&report.generation),
            "impossible generation {} at step {fail_at}",
            report.generation
        );
        store
            .verify_all()
            .unwrap_or_else(|e| panic!("fsck after crash at step {fail_at} failed: {e}"));
        let data = store.read_vec(0, DATA_BYTES as usize).unwrap();
        assert_eq!(
            data,
            model(report.generation),
            "torn state at step {fail_at}: generation {} data mismatch",
            report.generation
        );
        match report.generation {
            3 => recovered_new += 1,
            _ => recovered_old += 1,
        }
    }
    // Both sides of the commit point must actually be exercised.
    assert!(recovered_old > 0, "no crash recovered the old state");
    assert!(recovered_new > 0, "no crash recovered the new state");
}

#[test]
fn crash_mid_commit_leaves_orphans_that_recovery_reports() {
    // Crash right before the second commit's root save: the journal
    // holds generation-3 frames, but the trusted root still says 2.
    let (steps_old, _) =
        run_script(CrashMedium::new(MemMedium::new()), MemRootStore::new()).unwrap();
    // Walk forward from the old commit until a crash produces orphans.
    let mut saw_orphans = false;
    let (_, steps_new) =
        run_script(CrashMedium::new(MemMedium::new()), MemRootStore::new()).unwrap();
    for fail_at in steps_old + 1..=steps_new {
        let mem = MemMedium::new();
        let roots = MemRootStore::new();
        let _ = run_script(CrashMedium::new(mem.clone()).arm(fail_at), roots.clone());
        let (_, report) =
            BlockStore::open(mem, roots, Box::new(Md5Hasher), config().cache_pages).unwrap();
        if report.generation == 2 && report.orphaned_entries > 0 {
            saw_orphans = true;
            break;
        }
    }
    assert!(
        saw_orphans,
        "no pre-commit-point crash surfaced orphaned journal entries"
    );
}
