//! The block store's error vocabulary.

use std::fmt;
use std::io;

use miv_core::{ConfigError, FormatError};

/// Anything the block store can fail with.
///
/// The variants split along the trust boundary the whole crate is
/// organized around: [`Config`](StoreError::Config) and
/// [`Format`](StoreError::Format) are *structural* problems any storage
/// stack would report; [`NoMatchingRoot`](StoreError::NoMatchingRoot)
/// and [`Integrity`](StoreError::Integrity) mean the untrusted medium
/// does not verify against the trusted root — the offline analogue of
/// the paper's memory-tampering exception; [`Crashed`](StoreError::Crashed)
/// surfaces an injected crash point (the medium died mid-operation);
/// [`Io`](StoreError::Io) is a genuine device error.
#[derive(Debug)]
pub enum StoreError {
    /// The requested geometry cannot produce a working store.
    Config(ConfigError),
    /// A persistent structure (superblock, root blob, journal entry)
    /// failed structural validation.
    Format(FormatError),
    /// A page's contents do not match the digest stored on its verified
    /// path to the trusted root.
    Integrity {
        /// The page whose verification failed.
        page: u64,
    },
    /// Neither superblock slot is both well-formed and consistent with
    /// the trusted root — a tampered superblock or a stale-image splice.
    NoMatchingRoot {
        /// The generation the trusted root demands.
        trusted_generation: u64,
    },
    /// The medium reported an injected crash; the store is dead and the
    /// caller must reopen from the trusted root to recover.
    Crashed,
    /// A previous operation failed; mirroring the engine's §5.8
    /// semantics, the store poisons itself and refuses further work.
    Poisoned,
    /// The journal region is full and cannot take another entry (an
    /// internal invariant violation: the auto-commit threshold is sized
    /// so this cannot happen).
    JournalFull,
    /// An underlying device error.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Config(e) => write!(f, "store configuration: {e}"),
            StoreError::Format(e) => write!(f, "store format: {e}"),
            StoreError::Integrity { page } => {
                write!(f, "store integrity violation: page {page} does not verify")
            }
            StoreError::NoMatchingRoot { trusted_generation } => write!(
                f,
                "no superblock matches trusted root generation {trusted_generation} \
                 (tampered superblock or stale image)"
            ),
            StoreError::Crashed => write!(f, "medium crashed (injected crash point)"),
            StoreError::Poisoned => write!(f, "store poisoned by an earlier failure"),
            StoreError::JournalFull => write!(f, "journal full (auto-commit threshold bug)"),
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ConfigError> for StoreError {
    fn from(e: ConfigError) -> Self {
        StoreError::Config(e)
    }
}

impl From<FormatError> for StoreError {
    fn from(e: FormatError) -> Self {
        StoreError::Format(e)
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        // The crash injector reports through `ErrorKind::Interrupted`
        // (see `medium::CrashMedium`), which real device paths never
        // surface from the whole-buffer helpers used here.
        if e.kind() == io::ErrorKind::Interrupted {
            StoreError::Crashed
        } else {
            StoreError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_interrupted_maps_to_crashed() {
        let e: StoreError = io::Error::new(io::ErrorKind::Interrupted, "injected").into();
        assert!(matches!(e, StoreError::Crashed));
        let e: StoreError = io::Error::other("disk on fire").into();
        assert!(matches!(e, StoreError::Io(_)));
    }

    #[test]
    fn display_is_descriptive() {
        for (err, needle) in [
            (StoreError::Integrity { page: 7 }, "page 7"),
            (
                StoreError::NoMatchingRoot {
                    trusted_generation: 3,
                },
                "generation 3",
            ),
            (StoreError::Crashed, "crash"),
            (StoreError::Poisoned, "poisoned"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
        let cfg: StoreError = ConfigError::EmptySegment.into();
        assert!(cfg.to_string().contains("configuration"));
    }
}
