//! On-disk formats and geometry of the verified block store.
//!
//! The block file has three regions, all untrusted:
//!
//! ```text
//! [ superblock slot 0 | superblock slot 1 ]   2 × 128 B
//! [ journal slot 0 | journal slot 1 | ... ]   journal_slots × (36 + page_bytes) B
//! [ main region: hash pages ++ data pages ]   layout.physical_bytes() B
//! ```
//!
//! The main region is the [`TreeLayout`] chunk array verbatim: hash
//! pages first, data pages after, one page per chunk. The only trusted
//! state is the [`TrustedRoot`] blob kept *outside* this file (modeling
//! the processor's on-chip non-volatile root registers): a generation
//! counter plus the root-level digests. The superblock slots are
//! shadow-paged — a commit always writes the *inactive* slot — and a
//! slot is only believed if its self-checksum passes **and** its
//! generation and root digest match the trusted root. A stale but
//! internally consistent image therefore fails at open: its slots carry
//! an older generation than the trusted root demands.

use miv_core::{ConfigError, FormatError, TreeLayout};
use miv_hash::digest::DIGEST_BYTES;
use miv_hash::ChunkHasher;

/// Magic opening each superblock slot.
pub const SUPERBLOCK_MAGIC: [u8; 8] = *b"MIVSBLK1";
/// Magic opening the trusted-root blob.
pub const ROOT_MAGIC: [u8; 8] = *b"MIVROOT1";
/// Magic opening each journal entry.
pub const JOURNAL_MAGIC: [u8; 4] = *b"MIVJ";
/// Fixed size of one superblock slot; two slots open the file.
pub const SUPER_SLOT_BYTES: u64 = 128;

const SUPER_CHECKED_BYTES: usize = 112;
const JOURNAL_HEADER_BYTES: u64 = 4 + 8 + 8;

/// One superblock slot, decoded.
///
/// Everything here is *untrusted* until cross-checked against the
/// [`TrustedRoot`]; the embedded self-digest only rejects torn or
/// bit-flipped slots, it does not authenticate them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Commit generation this slot describes.
    pub generation: u64,
    /// Protected data bytes (the tree's leaf capacity).
    pub data_bytes: u64,
    /// Page size in bytes (= tree chunk size).
    pub page_bytes: u32,
    /// Number of journal slots reserved between superblocks and main.
    pub journal_slots: u32,
    /// Journal entries that were live at this commit and must be
    /// replayed over the main region on open.
    pub journal_len: u32,
    /// Digest over the concatenated root-level digests at this commit.
    pub roots_digest: [u8; DIGEST_BYTES],
}

impl Superblock {
    /// Encodes into one fixed 128-byte slot, checksummed with `hasher`.
    pub fn encode(&self, hasher: &dyn ChunkHasher) -> [u8; SUPER_SLOT_BYTES as usize] {
        let mut slot = [0u8; SUPER_SLOT_BYTES as usize];
        slot[0..8].copy_from_slice(&SUPERBLOCK_MAGIC);
        slot[8..16].copy_from_slice(&self.generation.to_le_bytes());
        slot[16..24].copy_from_slice(&self.data_bytes.to_le_bytes());
        slot[24..28].copy_from_slice(&self.page_bytes.to_le_bytes());
        slot[28..32].copy_from_slice(&self.journal_slots.to_le_bytes());
        slot[32..36].copy_from_slice(&self.journal_len.to_le_bytes());
        // [36..40) pad, [40..56) roots digest, [56..112) pad: every
        // byte below the checksum is covered by it, so any offline flip
        // anywhere in the slot is caught at decode.
        slot[40..56].copy_from_slice(&self.roots_digest);
        let digest = hasher.digest(&slot[..SUPER_CHECKED_BYTES]).into_bytes();
        slot[SUPER_CHECKED_BYTES..].copy_from_slice(&digest);
        slot
    }

    /// Decodes and self-checks one slot.
    pub fn decode(slot: &[u8], hasher: &dyn ChunkHasher) -> Result<Self, FormatError> {
        if slot.len() < SUPER_SLOT_BYTES as usize {
            return Err(FormatError::Truncated {
                what: "superblock",
                needed: SUPER_SLOT_BYTES,
                got: slot.len() as u64,
            });
        }
        if slot[0..8] != SUPERBLOCK_MAGIC {
            return Err(FormatError::BadMagic { what: "superblock" });
        }
        let digest = hasher.digest(&slot[..SUPER_CHECKED_BYTES]).into_bytes();
        if slot[SUPER_CHECKED_BYTES..SUPER_SLOT_BYTES as usize] != digest {
            return Err(FormatError::ChecksumMismatch { what: "superblock" });
        }
        let mut roots_digest = [0u8; DIGEST_BYTES];
        roots_digest.copy_from_slice(&slot[40..56]);
        Ok(Superblock {
            generation: le_u64(&slot[8..16]),
            data_bytes: le_u64(&slot[16..24]),
            page_bytes: le_u32(&slot[24..28]),
            journal_slots: le_u32(&slot[28..32]),
            journal_len: le_u32(&slot[32..36]),
            roots_digest,
        })
    }
}

/// The store's only trusted state, held outside the block file.
///
/// Models the secure processor's on-chip non-volatile root storage: a
/// monotone commit generation plus the root-level digests (the tree
/// slots the engine pins in the trusted cache). Everything in the block
/// file is verified against this on open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustedRoot {
    /// Last committed generation.
    pub generation: u64,
    /// Protected data bytes.
    pub data_bytes: u64,
    /// Page size in bytes.
    pub page_bytes: u32,
    /// Journal slots in the block file.
    pub journal_slots: u32,
    /// Root-level digests, one per chunk directly under the secure root.
    pub roots: Vec<[u8; DIGEST_BYTES]>,
}

impl TrustedRoot {
    /// Serializes the blob (magic, fields, digest count, digests).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40 + self.roots.len() * DIGEST_BYTES);
        out.extend_from_slice(&ROOT_MAGIC);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.data_bytes.to_le_bytes());
        out.extend_from_slice(&self.page_bytes.to_le_bytes());
        out.extend_from_slice(&self.journal_slots.to_le_bytes());
        out.extend_from_slice(&(self.roots.len() as u64).to_le_bytes());
        for root in &self.roots {
            out.extend_from_slice(root);
        }
        out
    }

    /// Parses a blob produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FormatError> {
        if bytes.len() < 40 {
            return Err(FormatError::Truncated {
                what: "trusted root",
                needed: 40,
                got: bytes.len() as u64,
            });
        }
        if bytes[0..8] != ROOT_MAGIC {
            return Err(FormatError::BadMagic {
                what: "trusted root",
            });
        }
        let count = le_u64(&bytes[32..40]);
        let body = count
            .checked_mul(DIGEST_BYTES as u64)
            .and_then(|b| b.checked_add(40))
            .ok_or(FormatError::FieldRange {
                what: "trusted root count",
                value: count,
            })?;
        if bytes.len() as u64 != body {
            return Err(FormatError::LengthMismatch {
                what: "trusted root body",
                expected: body,
                got: bytes.len() as u64,
            });
        }
        let count = usize::try_from(count).map_err(|_| FormatError::FieldRange {
            what: "trusted root count",
            value: count,
        })?;
        let mut roots = Vec::with_capacity(count);
        for i in 0..count {
            let at = 40 + i * DIGEST_BYTES;
            let mut root = [0u8; DIGEST_BYTES];
            root.copy_from_slice(&bytes[at..at + DIGEST_BYTES]);
            roots.push(root);
        }
        Ok(TrustedRoot {
            generation: le_u64(&bytes[8..16]),
            data_bytes: le_u64(&bytes[16..24]),
            page_bytes: le_u32(&bytes[24..28]),
            journal_slots: le_u32(&bytes[28..32]),
            roots,
        })
    }

    /// Digest over the concatenated roots, as stored in the superblock.
    pub fn roots_digest(&self, hasher: &dyn ChunkHasher) -> [u8; DIGEST_BYTES] {
        let mut cat = Vec::with_capacity(self.roots.len() * DIGEST_BYTES);
        for root in &self.roots {
            cat.extend_from_slice(root);
        }
        hasher.digest(&cat).into_bytes()
    }
}

/// One write-back journal frame.
///
/// Evicted dirty pages land here before the commit copies them into the
/// main region; the generation stamp lets recovery distinguish entries
/// the last commit published (replay them) from entries of an
/// uncommitted epoch (orphans — ignore them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The commit generation this entry belongs to.
    pub generation: u64,
    /// The tree chunk (page) number the payload replaces.
    pub page: u64,
    /// Full page contents, exactly `page_bytes` long.
    pub payload: Vec<u8>,
}

impl JournalEntry {
    /// Frame size for a given page size.
    pub fn frame_bytes(page_bytes: u32) -> u64 {
        JOURNAL_HEADER_BYTES + u64::from(page_bytes) + DIGEST_BYTES as u64
    }

    /// Encodes the frame: magic, generation, page, payload, digest over
    /// `(generation || page || payload)`.
    pub fn encode(&self, hasher: &dyn ChunkHasher) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 36);
        out.extend_from_slice(&JOURNAL_MAGIC);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.page.to_le_bytes());
        out.extend_from_slice(&self.payload);
        let digest = hasher.digest(&out[4..]).into_bytes();
        out.extend_from_slice(&digest);
        out
    }

    /// Decodes and self-checks one frame of `page_bytes` payload.
    pub fn decode(
        frame: &[u8],
        page_bytes: u32,
        hasher: &dyn ChunkHasher,
    ) -> Result<Self, FormatError> {
        let need = Self::frame_bytes(page_bytes);
        if (frame.len() as u64) < need {
            return Err(FormatError::Truncated {
                what: "journal entry",
                needed: need,
                got: frame.len() as u64,
            });
        }
        if frame[0..4] != JOURNAL_MAGIC {
            return Err(FormatError::BadMagic {
                what: "journal entry",
            });
        }
        let payload_end = 20 + page_bytes as usize;
        let digest = hasher.digest(&frame[4..payload_end]).into_bytes();
        if frame[payload_end..payload_end + DIGEST_BYTES] != digest {
            return Err(FormatError::ChecksumMismatch {
                what: "journal entry",
            });
        }
        Ok(JournalEntry {
            generation: le_u64(&frame[4..12]),
            page: le_u64(&frame[12..20]),
            payload: frame[20..payload_end].to_vec(),
        })
    }
}

/// The block file's region map: a [`TreeLayout`] plus the journal and
/// superblock regions in front of it.
#[derive(Debug, Clone)]
pub struct StoreGeometry {
    layout: TreeLayout,
    journal_slots: u32,
}

impl StoreGeometry {
    /// Builds the geometry, validating the tree shape. Pages double as
    /// tree chunks, so `page_bytes` must satisfy the layout's arity
    /// floor (at least 64 bytes with 16-byte digests).
    pub fn new(data_bytes: u64, page_bytes: u32, journal_slots: u32) -> Result<Self, ConfigError> {
        let layout = TreeLayout::try_new(data_bytes, page_bytes, page_bytes)?;
        Ok(StoreGeometry {
            layout,
            journal_slots,
        })
    }

    /// The underlying hash-tree layout (pages are its chunks).
    pub fn layout(&self) -> &TreeLayout {
        &self.layout
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u32 {
        self.layout.chunk_bytes()
    }

    /// Number of journal slots.
    pub fn journal_slots(&self) -> u32 {
        self.journal_slots
    }

    /// File offset of superblock slot `slot` (0 or 1).
    pub fn slot_offset(&self, slot: usize) -> u64 {
        slot as u64 * SUPER_SLOT_BYTES
    }

    /// Which superblock slot generation `generation` lives in. Commits
    /// alternate slots, so the slot for `generation + 1` is never the
    /// slot holding the current trusted generation — a torn superblock
    /// write cannot destroy the committed one.
    pub fn slot_for(generation: u64) -> usize {
        (generation % 2) as usize
    }

    /// File offset of journal slot `idx`.
    pub fn journal_offset(&self, idx: u32) -> u64 {
        2 * SUPER_SLOT_BYTES + u64::from(idx) * JournalEntry::frame_bytes(self.page_bytes())
    }

    /// File offset where the main (tree chunk) region begins.
    pub fn main_offset(&self) -> u64 {
        self.journal_offset(self.journal_slots)
    }

    /// File offset of tree page (chunk) `page` in the main region.
    pub fn page_offset(&self, page: u64) -> u64 {
        self.main_offset() + self.layout.chunk_addr(page)
    }

    /// Total block-file size.
    pub fn total_bytes(&self) -> u64 {
        self.main_offset() + self.layout.physical_bytes()
    }
}

fn le_u64(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(b)
}

fn le_u32(bytes: &[u8]) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miv_hash::Md5Hasher;

    fn sb() -> Superblock {
        Superblock {
            generation: 7,
            data_bytes: 16 * 1024,
            page_bytes: 128,
            journal_slots: 40,
            journal_len: 3,
            roots_digest: [0xAB; DIGEST_BYTES],
        }
    }

    #[test]
    fn superblock_roundtrip_and_flip_detection() {
        let hasher = Md5Hasher;
        let slot = sb().encode(&hasher);
        assert_eq!(Superblock::decode(&slot, &hasher).unwrap(), sb());
        // Any single-byte flip anywhere in the slot is caught.
        for at in [0usize, 9, 33, 38, 47, 100, 120] {
            let mut bad = slot;
            bad[at] ^= 0x40;
            assert!(
                Superblock::decode(&bad, &hasher).is_err(),
                "flip at {at} must be detected"
            );
        }
        assert!(matches!(
            Superblock::decode(&slot[..64], &hasher),
            Err(FormatError::Truncated { .. })
        ));
    }

    #[test]
    fn trusted_root_roundtrip_and_rejection() {
        let root = TrustedRoot {
            generation: 9,
            data_bytes: 4096,
            page_bytes: 128,
            journal_slots: 16,
            roots: vec![[1; DIGEST_BYTES], [2; DIGEST_BYTES]],
        };
        let bytes = root.to_bytes();
        assert_eq!(TrustedRoot::from_bytes(&bytes).unwrap(), root);

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            TrustedRoot::from_bytes(&bad_magic),
            Err(FormatError::BadMagic { .. })
        ));
        assert!(matches!(
            TrustedRoot::from_bytes(&bytes[..bytes.len() - 1]),
            Err(FormatError::LengthMismatch { .. })
        ));
        assert!(matches!(
            TrustedRoot::from_bytes(&bytes[..16]),
            Err(FormatError::Truncated { .. })
        ));

        let digest = root.roots_digest(&Md5Hasher);
        assert_ne!(digest, [0; DIGEST_BYTES]);
    }

    #[test]
    fn journal_entry_roundtrip_and_corruption() {
        let hasher = Md5Hasher;
        let entry = JournalEntry {
            generation: 4,
            page: 17,
            payload: vec![0x5A; 128],
        };
        let frame = entry.encode(&hasher);
        assert_eq!(frame.len() as u64, JournalEntry::frame_bytes(128));
        assert_eq!(JournalEntry::decode(&frame, 128, &hasher).unwrap(), entry);

        let mut bad = frame.clone();
        bad[25] ^= 0x01; // payload byte
        assert!(matches!(
            JournalEntry::decode(&bad, 128, &hasher),
            Err(FormatError::ChecksumMismatch { .. })
        ));
        let mut bad = frame.clone();
        bad[5] ^= 0x01; // generation byte
        assert!(JournalEntry::decode(&bad, 128, &hasher).is_err());
        // An all-zero slot (never written) fails on magic.
        let zero = vec![0u8; frame.len()];
        assert!(matches!(
            JournalEntry::decode(&zero, 128, &hasher),
            Err(FormatError::BadMagic { .. })
        ));
    }

    #[test]
    fn geometry_regions_do_not_overlap() {
        let geom = StoreGeometry::new(4096, 128, 10).unwrap();
        assert_eq!(geom.slot_offset(0), 0);
        assert_eq!(geom.slot_offset(1), 128);
        assert_eq!(geom.journal_offset(0), 256);
        let frame = JournalEntry::frame_bytes(128);
        assert_eq!(geom.journal_offset(10), 256 + 10 * frame);
        assert_eq!(geom.main_offset(), geom.journal_offset(10));
        assert_eq!(geom.page_offset(0), geom.main_offset());
        assert_eq!(
            geom.total_bytes(),
            geom.main_offset() + geom.layout().physical_bytes()
        );
        assert_eq!(StoreGeometry::slot_for(1), 1);
        assert_eq!(StoreGeometry::slot_for(2), 0);
    }
}
