//! The verified block store proper.
//!
//! [`BlockStore`] maps the HPCA'03 hash tree onto an untrusted block
//! device ([`StoreMedium`]) and fronts it with a small *trusted* page
//! cache — the persistent analogue of the paper's trusted on-chip
//! cache. Pages double as tree chunks: hash pages hold children's
//! digests, data pages hold user bytes, and the only state believed
//! unconditionally is the [`TrustedRoot`] in the [`RootStore`]
//! (modeling on-chip NVRAM).
//!
//! # Commit protocol
//!
//! Mutations accumulate in the cache; evicted dirty pages go to the
//! write-back **journal**, stamped with the *next* generation, and an
//! overlay map remembers which journal slot shadows which page. The
//! main region is never touched between commits, so the on-disk image
//! for the committed generation stays intact while an epoch is open.
//! [`commit`](BlockStore::commit) then:
//!
//! 1. flushes every dirty cached page to the journal (hashing each one
//!    up its path, so the in-memory roots now describe the new state),
//! 2. syncs, writes the **inactive** superblock slot with
//!    `generation + 1` and the new roots digest, syncs again,
//! 3. saves the new [`TrustedRoot`] — **the commit point** —
//! 4. copies journal payloads into the main region and resets the
//!    journal.
//!
//! A crash before step 3 leaves the trusted root at the old generation:
//! the old superblock slot, old main region, and old-generation journal
//! prefix are all still on disk, so [`open`](BlockStore::open) recovers
//! the old state and counts the new-generation frames as orphans. A
//! crash after step 3 leaves the new trusted root: the new slot
//! verifies and the journal replay (step 4 redone) reconstructs the new
//! state. There is no window in which neither state is recoverable.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;
// miv-analyze: allow(rc-not-sent, reason="MemRootStore clones share one cell so the trusted root survives a simulated crash; root stores live and die on one worker, never crossing the sweep boundary")
use std::rc::Rc;

use miv_core::ParentRef;
use miv_hash::digest::DIGEST_BYTES;
use miv_hash::ChunkHasher;

use crate::error::StoreError;
use crate::format::{JournalEntry, StoreGeometry, Superblock, TrustedRoot};
use crate::medium::StoreMedium;

/// Geometry and cache sizing for [`BlockStore::create`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Protected data capacity in bytes.
    pub data_bytes: u64,
    /// Page size in bytes (power of two, ≥ 64 with 16-byte digests).
    pub page_bytes: u32,
    /// Trusted cache capacity in pages.
    pub cache_pages: usize,
    /// Journal slots; `0` picks an automatic size from the cache and
    /// tree depth.
    pub journal_slots: u32,
}

impl StoreConfig {
    /// A small default geometry used by examples and quick benches.
    pub fn small() -> Self {
        StoreConfig {
            data_bytes: 16 * 1024,
            page_bytes: 128,
            cache_pages: 16,
            journal_slots: 0,
        }
    }

    /// Pre-flights the geometry without touching a medium: the same
    /// checks [`BlockStore::create`] runs, so campaign drivers can
    /// reject a bad spec before fanning work out to a pool.
    pub fn validate(&self) -> Result<(), StoreError> {
        validate(self).map(|_| ())
    }
}

/// Trusted non-volatile storage for the [`TrustedRoot`].
///
/// This is the store's axiom: saves are assumed atomic and reads
/// faithful, exactly as the paper assumes the on-chip root register is
/// inside the trust boundary. Everything else — superblocks, journal,
/// pages — is verified against what this returns.
pub trait RootStore {
    /// Loads the last saved root.
    fn load(&self) -> Result<TrustedRoot, StoreError>;
    /// Durably replaces the root (the commit point).
    fn save(&mut self, root: &TrustedRoot) -> Result<(), StoreError>;
}

/// An in-memory [`RootStore`]; clones share one cell, so a test can
/// keep the trusted root across a simulated crash of the store.
#[derive(Debug, Clone, Default)]
pub struct MemRootStore {
    blob: Rc<RefCell<Option<Vec<u8>>>>,
}

impl MemRootStore {
    /// An empty root store (loads fail until the first save).
    pub fn new() -> Self {
        MemRootStore::default()
    }
}

impl RootStore for MemRootStore {
    fn load(&self) -> Result<TrustedRoot, StoreError> {
        match self.blob.borrow().as_deref() {
            Some(bytes) => Ok(TrustedRoot::from_bytes(bytes)?),
            None => Err(StoreError::Format(miv_core::FormatError::Truncated {
                what: "trusted root",
                needed: 40,
                got: 0,
            })),
        }
    }

    fn save(&mut self, root: &TrustedRoot) -> Result<(), StoreError> {
        *self.blob.borrow_mut() = Some(root.to_bytes());
        Ok(())
    }
}

/// A [`RootStore`] backed by a file.
///
/// The root file sits *inside* the trust boundary by assumption (the
/// paper's on-chip registers); its write is taken as atomic. Keeping it
/// beside the block file is fine for simulation — the offline-tamper
/// campaign only ever mutates the block file.
#[derive(Debug)]
pub struct FileRootStore {
    path: PathBuf,
}

impl FileRootStore {
    /// Uses `path` as the trusted root blob.
    pub fn new(path: PathBuf) -> Self {
        FileRootStore { path }
    }
}

impl RootStore for FileRootStore {
    fn load(&self) -> Result<TrustedRoot, StoreError> {
        let bytes = std::fs::read(&self.path)?;
        Ok(TrustedRoot::from_bytes(&bytes)?)
    }

    fn save(&mut self, root: &TrustedRoot) -> Result<(), StoreError> {
        Ok(std::fs::write(&self.path, root.to_bytes())?)
    }
}

/// Device and cache counters, cheap to copy out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Page-sized reads issued to the medium.
    pub device_reads: u64,
    /// Writes issued to the medium (pages, journal frames, superblocks).
    pub device_writes: u64,
    /// Bytes read from the medium.
    pub read_bytes: u64,
    /// Bytes written to the medium.
    pub write_bytes: u64,
    /// Sync barriers issued.
    pub syncs: u64,
    /// Page requests served from the trusted cache.
    pub cache_hits: u64,
    /// Page requests that had to load and verify from the medium.
    pub cache_misses: u64,
    /// Pages hashed (loads and write-backs).
    pub pages_hashed: u64,
    /// Pages whose digest was checked against the verified path.
    pub pages_verified: u64,
    /// Journal frames appended.
    pub journal_appends: u64,
    /// Commits performed (explicit and automatic).
    pub commits: u64,
    /// Commits triggered by the journal-pressure threshold.
    pub auto_commits: u64,
    /// Journal frames replayed during the last open.
    pub replayed_entries: u64,
}

/// What [`BlockStore::open`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The committed generation recovered.
    pub generation: u64,
    /// Which superblock slot carried it.
    pub slot: usize,
    /// Journal frames replayed into the main region.
    pub replayed_entries: u64,
    /// Well-formed frames from a *newer*, uncommitted generation —
    /// work in flight when the crash hit, correctly discarded.
    pub orphaned_entries: u64,
}

/// What a full [`BlockStore::verify_all`] walk found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsckReport {
    /// The recovery that opening performed.
    pub recovery: RecoveryReport,
    /// Tree pages verified against the trusted root (all of them).
    pub verified_pages: u64,
}

#[derive(Debug)]
struct PageEntry {
    data: Vec<u8>,
    dirty: bool,
    pinned: u32,
    last_used: u64,
}

/// The verified block store. See the module docs for the protocol.
#[derive(Debug)]
pub struct BlockStore<M: StoreMedium, R: RootStore> {
    medium: M,
    root_store: R,
    geom: StoreGeometry,
    hasher: Box<dyn ChunkHasher>,
    cache: BTreeMap<u64, PageEntry>,
    cache_pages: usize,
    /// page → journal slot holding its newest payload this epoch.
    overlay: BTreeMap<u64, u32>,
    journal_used: u32,
    journal_reserve: u32,
    committed_generation: u64,
    roots: Vec<[u8; DIGEST_BYTES]>,
    tick: u64,
    poisoned: bool,
    stats: StoreStats,
}

fn auto_reserve(cache_pages: usize, levels: u32) -> u32 {
    // Worst case per flushed page: the page itself plus one write-back
    // per tree level above it; +8 slack for the commit's own traffic.
    (cache_pages as u32) * (levels + 1) + 8
}

fn validate(config: &StoreConfig) -> Result<(StoreGeometry, u32), StoreError> {
    let probe = StoreGeometry::new(config.data_bytes, config.page_bytes, 0)?;
    let levels = probe.layout().levels();
    let min_pages = 2 * (levels as usize + 2);
    if config.cache_pages < min_pages {
        return Err(StoreError::Config(miv_core::ConfigError::CacheTooSmall {
            blocks: config.cache_pages,
            min_blocks: min_pages,
        }));
    }
    let reserve = auto_reserve(config.cache_pages, levels);
    let slots = if config.journal_slots == 0 {
        2 * reserve
    } else if config.journal_slots < reserve + config.cache_pages as u32 {
        return Err(StoreError::Config(miv_core::ConfigError::CacheTooSmall {
            blocks: config.journal_slots as usize,
            min_blocks: (reserve + config.cache_pages as u32) as usize,
        }));
    } else {
        config.journal_slots
    };
    let geom = StoreGeometry::new(config.data_bytes, config.page_bytes, slots)?;
    Ok((geom, reserve))
}

impl<M: StoreMedium, R: RootStore> BlockStore<M, R> {
    /// Formats `medium` as a fresh store: zeroed data, a consistent
    /// hash tree over it, generation 1 committed and saved to
    /// `root_store`.
    pub fn create(
        mut medium: M,
        mut root_store: R,
        config: StoreConfig,
        hasher: Box<dyn ChunkHasher>,
    ) -> Result<Self, StoreError> {
        let (geom, reserve) = validate(&config)?;
        let layout = *geom.layout();
        let page_bytes = geom.page_bytes() as usize;
        let arity = layout.arity() as u64;

        // Build the zeroed tree bottom-up in memory: walk chunks from
        // the highest number down so every chunk's digest is ready
        // before its parent consumes it.
        let total = layout.total_chunks();
        let mut pages: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut digests: BTreeMap<u64, [u8; DIGEST_BYTES]> = BTreeMap::new();
        let zero_leaf = vec![0u8; page_bytes];
        let zero_digest = hasher.digest(&zero_leaf).into_bytes();
        for chunk in (0..total).rev() {
            if layout.is_data_chunk(chunk) {
                digests.insert(chunk, zero_digest);
                continue;
            }
            let mut page = vec![0u8; page_bytes];
            for child in layout.children(chunk) {
                let at = layout.slot_offset((child % arity) as u32) as usize;
                let d = digests
                    .get(&child)
                    .expect("documented invariant: children numbered above parent");
                page[at..at + DIGEST_BYTES].copy_from_slice(d);
            }
            digests.insert(chunk, hasher.digest(&page).into_bytes());
            pages.insert(chunk, page);
        }
        let roots: Vec<[u8; DIGEST_BYTES]> = (0..arity.min(total)).map(|c| digests[&c]).collect();

        // Lay the image down: zero journal region, hash pages, zero
        // data pages, then the generation-1 superblock in its slot.
        let total_bytes = geom.total_bytes();
        let mut image = vec![0u8; usize::try_from(total_bytes).expect("documented invariant")];
        for (chunk, page) in &pages {
            let at = usize::try_from(geom.page_offset(*chunk)).expect("documented invariant");
            image[at..at + page_bytes].copy_from_slice(page);
        }
        let root = TrustedRoot {
            generation: 1,
            data_bytes: config.data_bytes,
            page_bytes: geom.page_bytes(),
            journal_slots: geom.journal_slots(),
            roots: roots.clone(),
        };
        let sb = Superblock {
            generation: 1,
            data_bytes: config.data_bytes,
            page_bytes: geom.page_bytes(),
            journal_slots: geom.journal_slots(),
            journal_len: 0,
            roots_digest: root.roots_digest(hasher.as_ref()),
        };
        let slot = StoreGeometry::slot_for(1);
        let at = usize::try_from(geom.slot_offset(slot)).expect("documented invariant");
        image[at..at + 128].copy_from_slice(&sb.encode(hasher.as_ref()));

        medium.write_at(0, &image)?;
        medium.sync()?;
        root_store.save(&root)?;

        let mut store = BlockStore {
            medium,
            root_store,
            geom,
            hasher,
            cache: BTreeMap::new(),
            cache_pages: config.cache_pages,
            overlay: BTreeMap::new(),
            journal_used: 0,
            journal_reserve: reserve,
            committed_generation: 1,
            roots,
            tick: 0,
            poisoned: false,
            stats: StoreStats::default(),
        };
        store.stats.device_writes += 1;
        store.stats.write_bytes += total_bytes;
        store.stats.syncs += 1;
        Ok(store)
    }

    /// Opens an existing store, recovering to the trusted root's
    /// generation: picks the matching superblock slot, replays its
    /// committed journal prefix, and discards orphaned frames.
    pub fn open(
        mut medium: M,
        root_store: R,
        hasher: Box<dyn ChunkHasher>,
        cache_pages: usize,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let root = root_store.load()?;
        let config = StoreConfig {
            data_bytes: root.data_bytes,
            page_bytes: root.page_bytes,
            cache_pages,
            journal_slots: root.journal_slots,
        };
        let (geom, reserve) = validate(&config)?;
        let mut stats = StoreStats::default();

        // Find the superblock slot that matches the trusted root. The
        // trusted generation pins exactly one slot; the other may hold
        // anything (an older commit, a torn write, an orphaned newer
        // commit whose root save never happened).
        let slot = StoreGeometry::slot_for(root.generation);
        let mut slot_buf = [0u8; 128];
        medium.read_at(geom.slot_offset(slot), &mut slot_buf)?;
        stats.device_reads += 1;
        stats.read_bytes += 128;
        let expected_digest = root.roots_digest(hasher.as_ref());
        let sb = match Superblock::decode(&slot_buf, hasher.as_ref()) {
            Ok(sb)
                if sb.generation == root.generation
                    && sb.roots_digest == expected_digest
                    && sb.data_bytes == root.data_bytes
                    && sb.page_bytes == root.page_bytes
                    && sb.journal_slots == root.journal_slots =>
            {
                sb
            }
            _ => {
                return Err(StoreError::NoMatchingRoot {
                    trusted_generation: root.generation,
                })
            }
        };

        // Replay the committed journal prefix into the main region
        // (idempotent: rerunning after a crash mid-replay is safe
        // because each frame is a whole-page overwrite). A prefix slot
        // may legitimately hold something else: once a commit's fold
        // completes, the next epoch reuses the journal from slot 0, so
        // a valid frame with a *newer* generation — or a torn one —
        // proves the fold already ran and replay is unnecessary. Such
        // frames are skipped, not errors; if the slot was instead
        // tampered with, the payload it would have carried is still
        // checked by tree verification against the trusted roots
        // (checksums only triage — the tree authenticates).
        let frame_bytes =
            usize::try_from(JournalEntry::frame_bytes(geom.page_bytes())).expect("frame fits");
        let mut frame = vec![0u8; frame_bytes];
        let mut replayed = 0u64;
        for idx in 0..sb.journal_len.min(geom.journal_slots()) {
            medium.read_at(geom.journal_offset(idx), &mut frame)?;
            stats.device_reads += 1;
            stats.read_bytes += frame.len() as u64;
            let entry = match JournalEntry::decode(&frame, geom.page_bytes(), hasher.as_ref()) {
                Ok(e) if e.generation == root.generation => e,
                _ => continue,
            };
            if entry.page >= geom.layout().total_chunks() {
                continue;
            }
            medium.write_at(geom.page_offset(entry.page), &entry.payload)?;
            stats.device_writes += 1;
            stats.write_bytes += entry.payload.len() as u64;
            replayed += 1;
        }

        // Orphan scan: valid frames anywhere in the journal carrying a
        // *newer* generation are in-flight work a crash abandoned.
        // They are informational only.
        let mut orphaned = 0u64;
        for idx in 0..geom.journal_slots() {
            if medium
                .read_at(geom.journal_offset(idx), &mut frame)
                .is_err()
            {
                break;
            }
            stats.device_reads += 1;
            stats.read_bytes += frame.len() as u64;
            match JournalEntry::decode(&frame, geom.page_bytes(), hasher.as_ref()) {
                Ok(e) if e.generation > root.generation => orphaned += 1,
                _ => {}
            }
        }
        if replayed > 0 {
            medium.sync()?;
            stats.syncs += 1;
        }
        stats.replayed_entries = replayed;

        let report = RecoveryReport {
            generation: root.generation,
            slot,
            replayed_entries: replayed,
            orphaned_entries: orphaned,
        };
        let store = BlockStore {
            medium,
            root_store,
            geom,
            hasher,
            cache: BTreeMap::new(),
            cache_pages,
            overlay: BTreeMap::new(),
            journal_used: 0,
            journal_reserve: reserve,
            committed_generation: root.generation,
            roots: root.roots,
            tick: 0,
            poisoned: false,
            stats,
        };
        Ok((store, report))
    }

    /// The store's geometry.
    pub fn geometry(&self) -> &StoreGeometry {
        &self.geom
    }

    /// The underlying medium (e.g. to read a crash injector's step
    /// counter).
    pub fn medium(&self) -> &M {
        &self.medium
    }

    /// The last committed generation.
    pub fn generation(&self) -> u64 {
        self.committed_generation
    }

    /// Counters so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.cache.len()
    }

    /// Journal slots consumed in the open epoch.
    pub fn journal_used(&self) -> u32 {
        self.journal_used
    }

    fn guard(&self) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        Ok(())
    }

    fn poison_on<T>(&mut self, r: Result<T, StoreError>) -> Result<T, StoreError> {
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    /// Reads `len` bytes at data address `addr`, verifying every page
    /// touched against the trusted root.
    pub fn read_vec(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, StoreError> {
        self.guard()?;
        let r = self.read_inner(addr, len);
        self.poison_on(r)
    }

    fn read_inner(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::with_capacity(len);
        let page_bytes = self.geom.page_bytes() as u64;
        let mut at = addr;
        let end = addr + len as u64;
        while at < end {
            let chunk = self.geom.layout().data_chunk_for(at);
            let in_page = (at % page_bytes) as usize;
            let take = ((page_bytes - at % page_bytes) as usize).min((end - at) as usize);
            self.ensure_page(chunk)?;
            let entry = self
                .cache
                .get(&chunk)
                .expect("documented invariant: ensure_page caches the page");
            out.extend_from_slice(&entry.data[in_page..in_page + take]);
            at += take as u64;
            self.enforce_capacity()?;
        }
        Ok(out)
    }

    /// Writes `data` at data address `addr` through the verified cache.
    /// May auto-commit first if the journal is near its reserve.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), StoreError> {
        self.guard()?;
        if self.journal_used + self.journal_reserve >= self.geom.journal_slots() {
            let r = self.commit_inner();
            self.poison_on(r)?;
            self.stats.auto_commits += 1;
        }
        let r = self.write_inner(addr, data);
        self.poison_on(r)
    }

    fn write_inner(&mut self, addr: u64, data: &[u8]) -> Result<(), StoreError> {
        let page_bytes = self.geom.page_bytes() as u64;
        let mut at = addr;
        let mut taken = 0usize;
        while taken < data.len() {
            let chunk = self.geom.layout().data_chunk_for(at);
            let in_page = (at % page_bytes) as usize;
            let take = ((page_bytes - at % page_bytes) as usize).min(data.len() - taken);
            self.ensure_page(chunk)?;
            let tick = self.bump_tick();
            let entry = self
                .cache
                .get_mut(&chunk)
                .expect("documented invariant: ensure_page caches the page");
            entry.data[in_page..in_page + take].copy_from_slice(&data[taken..taken + take]);
            entry.dirty = true;
            entry.last_used = tick;
            at += take as u64;
            taken += take;
            self.enforce_capacity()?;
        }
        Ok(())
    }

    fn bump_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Loads `page` into the cache if absent, verifying it against its
    /// parent's digest on the way in.
    fn ensure_page(&mut self, page: u64) -> Result<(), StoreError> {
        self.ensure_page_pinned(page)?;
        self.unpin(page);
        Ok(())
    }

    /// Like [`ensure_page`](Self::ensure_page) but returns with the
    /// page pinned, so nested capacity enforcement (which can run
    /// arbitrary write-back cascades) cannot evict it before the caller
    /// uses it. The caller must unpin.
    fn ensure_page_pinned(&mut self, page: u64) -> Result<(), StoreError> {
        if self.cache.contains_key(&page) {
            self.stats.cache_hits += 1;
            let tick = self.bump_tick();
            let entry = self
                .cache
                .get_mut(&page)
                .expect("documented invariant: just checked");
            entry.last_used = tick;
            entry.pinned += 1;
            return Ok(());
        }
        self.stats.cache_misses += 1;

        // Load the newest persisted payload: the epoch's journal
        // overlay shadows the main region.
        let page_bytes = self.geom.page_bytes() as usize;
        let mut data = vec![0u8; page_bytes];
        let offset = match self.overlay.get(&page) {
            Some(&idx) => self.geom.journal_offset(idx) + 20,
            None => self.geom.page_offset(page),
        };
        self.medium.read_at(offset, &mut data)?;
        self.stats.device_reads += 1;
        self.stats.read_bytes += page_bytes as u64;

        // Resolve the expected digest from the verified path above.
        let expected = match self.geom.layout().parent(page) {
            ParentRef::Secure { index } => self.roots[index as usize],
            ParentRef::Chunk { chunk, index } => {
                self.ensure_page_pinned(chunk)?;
                let parent = self
                    .cache
                    .get(&chunk)
                    .expect("documented invariant: pinned page stays cached");
                let at = self.geom.layout().slot_offset(index) as usize;
                let mut d = [0u8; DIGEST_BYTES];
                d.copy_from_slice(&parent.data[at..at + DIGEST_BYTES]);
                self.unpin(chunk);
                d
            }
        };
        self.stats.pages_hashed += 1;
        self.stats.pages_verified += 1;
        let actual = self.hasher.digest(&data).into_bytes();
        if actual != expected {
            return Err(StoreError::Integrity { page });
        }

        let tick = self.bump_tick();
        self.cache.insert(
            page,
            PageEntry {
                data,
                dirty: false,
                pinned: 1,
                last_used: tick,
            },
        );
        // Capacity is NOT enforced here: this runs inside write-back
        // cascades that hold pins up the ancestor chain, and evicting
        // mid-cascade could leave no unpinned victim. The public
        // read/write paths (and commit) enforce capacity afterwards,
        // when no pins are held; the cache may transiently exceed its
        // budget by one ancestor chain.
        Ok(())
    }

    fn pin(&mut self, page: u64) {
        if let Some(e) = self.cache.get_mut(&page) {
            e.pinned += 1;
        }
    }

    fn unpin(&mut self, page: u64) {
        if let Some(e) = self.cache.get_mut(&page) {
            e.pinned = e.pinned.saturating_sub(1);
        }
    }

    /// Writes a dirty page's payload to the journal and propagates its
    /// fresh digest into the parent (dirtying it) or the in-memory
    /// roots. The page stays cached, now clean.
    fn write_back(&mut self, page: u64) -> Result<(), StoreError> {
        self.pin(page);
        let r = self.write_back_inner(page);
        self.unpin(page);
        r
    }

    fn write_back_inner(&mut self, page: u64) -> Result<(), StoreError> {
        // Make the parent resident and pinned *before* publishing the
        // child, so the verified path stays intact throughout.
        let parent = self.geom.layout().parent(page);
        if let ParentRef::Chunk { chunk, .. } = parent {
            self.ensure_page_pinned(chunk)?;
        }
        let result = (|| {
            let entry = self
                .cache
                .get(&page)
                .expect("documented invariant: caller holds the page");
            let payload = entry.data.clone();
            self.stats.pages_hashed += 1;
            let digest = self.hasher.digest(&payload).into_bytes();

            if self.journal_used >= self.geom.journal_slots() {
                return Err(StoreError::JournalFull);
            }
            let idx = self.journal_used;
            let frame = JournalEntry {
                generation: self.committed_generation + 1,
                page,
                payload,
            }
            .encode(self.hasher.as_ref());
            self.medium
                .write_at(self.geom.journal_offset(idx), &frame)?;
            self.stats.device_writes += 1;
            self.stats.write_bytes += frame.len() as u64;
            self.stats.journal_appends += 1;
            self.journal_used = idx + 1;
            self.overlay.insert(page, idx);
            self.cache
                .get_mut(&page)
                .expect("documented invariant: caller holds the page")
                .dirty = false;

            match parent {
                ParentRef::Secure { index } => {
                    self.roots[index as usize] = digest;
                }
                ParentRef::Chunk { chunk, index } => {
                    let at = self.geom.layout().slot_offset(index) as usize;
                    let tick = self.bump_tick();
                    let p = self
                        .cache
                        .get_mut(&chunk)
                        .expect("documented invariant: parent pinned above");
                    p.data[at..at + DIGEST_BYTES].copy_from_slice(&digest);
                    p.dirty = true;
                    p.last_used = tick;
                }
            }
            Ok(())
        })();
        if let ParentRef::Chunk { chunk, .. } = parent {
            self.unpin(chunk);
        }
        result
    }

    fn enforce_capacity(&mut self) -> Result<(), StoreError> {
        while self.cache.len() > self.cache_pages {
            let victim = self
                .cache
                .iter()
                .filter(|(_, e)| e.pinned == 0)
                .min_by_key(|(page, e)| (e.last_used, **page))
                .map(|(page, _)| *page)
                .expect("documented invariant: cache floor leaves an unpinned page");
            let dirty = self
                .cache
                .get(&victim)
                .expect("documented invariant: victim cached")
                .dirty;
            if dirty {
                self.write_back(victim)?;
            }
            self.cache.remove(&victim);
        }
        Ok(())
    }

    /// Durably commits everything written so far; on return the
    /// trusted root names the new generation. See the module docs for
    /// the crash-safety argument.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        self.guard()?;
        let r = self.commit_inner();
        self.poison_on(r)
    }

    fn commit_inner(&mut self) -> Result<(), StoreError> {
        // Flush dirty pages to the journal, always taking the
        // highest-numbered one: its write-back only dirties pages
        // numbered *below* it, so each page flushes at most once.
        loop {
            let next = self
                .cache
                .iter()
                .rev()
                .find(|(_, e)| e.dirty)
                .map(|(page, _)| *page);
            match next {
                Some(page) => self.write_back(page)?,
                None => break,
            }
        }
        self.enforce_capacity()?;
        self.medium.sync()?;
        self.stats.syncs += 1;

        // Publish the new generation in the inactive slot.
        let generation = self.committed_generation + 1;
        let root = TrustedRoot {
            generation,
            data_bytes: self.geom.layout().data_bytes(),
            page_bytes: self.geom.page_bytes(),
            journal_slots: self.geom.journal_slots(),
            roots: self.roots.clone(),
        };
        let sb = Superblock {
            generation,
            data_bytes: root.data_bytes,
            page_bytes: root.page_bytes,
            journal_slots: root.journal_slots,
            journal_len: self.journal_used,
            roots_digest: root.roots_digest(self.hasher.as_ref()),
        };
        let slot = StoreGeometry::slot_for(generation);
        let encoded = sb.encode(self.hasher.as_ref());
        self.medium
            .write_at(self.geom.slot_offset(slot), &encoded)?;
        self.stats.device_writes += 1;
        self.stats.write_bytes += encoded.len() as u64;
        self.medium.sync()?;
        self.stats.syncs += 1;

        // THE COMMIT POINT: once the trusted root holds the new
        // generation, open() recovers the new state; before it, the old.
        self.root_store.save(&root)?;

        // Fold the journal into the main region (redone by open() if we
        // die here) and reset for the next epoch.
        let page_bytes = self.geom.page_bytes() as usize;
        let mut payload = vec![0u8; page_bytes];
        let pages: Vec<(u64, u32)> = self.overlay.iter().map(|(p, i)| (*p, *i)).collect();
        for (page, idx) in pages {
            self.medium
                .read_at(self.geom.journal_offset(idx) + 20, &mut payload)?;
            self.medium
                .write_at(self.geom.page_offset(page), &payload)?;
            self.stats.device_reads += 1;
            self.stats.read_bytes += page_bytes as u64;
            self.stats.device_writes += 1;
            self.stats.write_bytes += page_bytes as u64;
        }
        self.medium.sync()?;
        self.stats.syncs += 1;
        self.overlay.clear();
        self.journal_used = 0;
        self.committed_generation = generation;
        self.stats.commits += 1;
        Ok(())
    }

    /// Walks the whole tree, verifying every page against the trusted
    /// root. Returns the number of pages verified.
    pub fn verify_all(&mut self) -> Result<u64, StoreError> {
        self.guard()?;
        let r = self.verify_all_inner();
        self.poison_on(r)
    }

    fn verify_all_inner(&mut self) -> Result<u64, StoreError> {
        let layout = *self.geom.layout();
        let page_bytes = self.geom.page_bytes() as usize;
        // Memoize hash-page contents so each page is read exactly once;
        // the walk descends in chunk order, so a parent's bytes are
        // already verified (and memoized) before any child needs them.
        let mut hash_pages: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut verified = 0u64;
        let mut data = vec![0u8; page_bytes];
        for page in 0..layout.total_chunks() {
            let buf: &[u8] = if layout.is_hash_chunk(page) {
                self.medium
                    .read_at(self.geom.page_offset(page), &mut data)?;
                hash_pages.insert(page, data.clone());
                hash_pages
                    .get(&page)
                    .expect("documented invariant: just inserted")
            } else {
                self.medium
                    .read_at(self.geom.page_offset(page), &mut data)?;
                &data
            };
            self.stats.device_reads += 1;
            self.stats.read_bytes += page_bytes as u64;
            let expected = match layout.parent(page) {
                ParentRef::Secure { index } => self.roots[index as usize],
                ParentRef::Chunk { chunk, index } => {
                    let parent = hash_pages
                        .get(&chunk)
                        .expect("documented invariant: parents precede children");
                    let at = layout.slot_offset(index) as usize;
                    let mut d = [0u8; DIGEST_BYTES];
                    d.copy_from_slice(&parent[at..at + DIGEST_BYTES]);
                    d
                }
            };
            self.stats.pages_hashed += 1;
            self.stats.pages_verified += 1;
            if self.hasher.digest(buf).into_bytes() != expected {
                return Err(StoreError::Integrity { page });
            }
            verified += 1;
        }
        Ok(verified)
    }

    /// Opens and fully verifies a store: recovery plus a complete tree
    /// walk. This is `mivsim store fsck`'s engine.
    pub fn fsck(
        medium: M,
        root_store: R,
        hasher: Box<dyn ChunkHasher>,
        cache_pages: usize,
    ) -> Result<FsckReport, StoreError> {
        let (mut store, recovery) = Self::open(medium, root_store, hasher, cache_pages)?;
        let verified_pages = store.verify_all()?;
        Ok(FsckReport {
            recovery,
            verified_pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::MemMedium;
    use miv_hash::Md5Hasher;

    fn fresh(
        config: StoreConfig,
    ) -> (BlockStore<MemMedium, MemRootStore>, MemMedium, MemRootStore) {
        let medium = MemMedium::new();
        let roots = MemRootStore::new();
        let store =
            BlockStore::create(medium.clone(), roots.clone(), config, Box::new(Md5Hasher)).unwrap();
        (store, medium, roots)
    }

    #[test]
    fn create_then_reopen_verifies_clean() {
        let (store, medium, roots) = fresh(StoreConfig::small());
        drop(store);
        let report = BlockStore::fsck(medium, roots, Box::new(Md5Hasher), 16).unwrap();
        assert_eq!(report.recovery.generation, 1);
        assert_eq!(report.recovery.replayed_entries, 0);
        assert_eq!(report.recovery.orphaned_entries, 0);
        assert!(report.verified_pages > 0);
    }

    #[test]
    fn write_commit_reopen_reads_back() {
        let (mut store, medium, roots) = fresh(StoreConfig::small());
        store.write(100, b"the committed payload").unwrap();
        store.write(8000, &[0xC3; 700]).unwrap();
        store.commit().unwrap();
        assert_eq!(store.generation(), 2);
        drop(store);

        let (mut store, report) = BlockStore::open(medium, roots, Box::new(Md5Hasher), 16).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(store.read_vec(100, 21).unwrap(), b"the committed payload");
        assert_eq!(store.read_vec(8000, 700).unwrap(), vec![0xC3; 700]);
        assert_eq!(store.read_vec(121, 8).unwrap(), vec![0u8; 8]);
        assert!(store.verify_all().is_ok());
    }

    #[test]
    fn uncommitted_writes_roll_back_on_reopen() {
        let (mut store, medium, roots) = fresh(StoreConfig::small());
        store.write(0, b"durable").unwrap();
        store.commit().unwrap();
        store.write(0, b"ephemer").unwrap();
        // No commit; the epoch dies with the store.
        drop(store);
        let (mut store, report) = BlockStore::open(medium, roots, Box::new(Md5Hasher), 16).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(store.read_vec(0, 7).unwrap(), b"durable");
    }

    #[test]
    fn cache_stays_bounded_and_deterministic() {
        let mut config = StoreConfig::small();
        config.cache_pages = 10;
        let (mut store, _m, _r) = fresh(config);
        for i in 0..200u64 {
            let addr = (i * 977) % (16 * 1024 - 64);
            store.write(addr, &[i as u8; 64]).unwrap();
        }
        assert!(store.cached_pages() <= 10);
        store.commit().unwrap();
        assert!(store.verify_all().is_ok());
        let stats = store.stats();
        assert!(stats.cache_hits > 0 && stats.cache_misses > 0);
        assert!(stats.journal_appends > 0);
    }

    #[test]
    fn auto_commit_fires_under_journal_pressure() {
        let config = StoreConfig {
            data_bytes: 64 * 1024,
            page_bytes: 128,
            cache_pages: 12,
            journal_slots: 0,
        };
        let (mut store, _m, _r) = fresh(config);
        for i in 0..3000u64 {
            let addr = (i * 6151) % (64 * 1024 - 32);
            store.write(addr, &[(i % 251) as u8; 32]).unwrap();
        }
        store.commit().unwrap();
        assert!(store.stats().auto_commits > 0, "journal pressure never hit");
        assert!(store.verify_all().is_ok());
    }

    #[test]
    fn online_bit_flip_is_detected_on_read() {
        let (mut store, medium, roots) = fresh(StoreConfig::small());
        store.write(500, &[0xEE; 100]).unwrap();
        store.commit().unwrap();
        // Flip a byte in a page the committed journal does NOT shadow
        // (address 8192 was never written): open()'s redo replay would
        // heal a flip on a journaled page, by design.
        let chunk = store.geometry().layout().data_chunk_for(8192);
        let offset = store.geometry().page_offset(chunk) + 17;
        drop(store);
        medium.flip(offset, 0x10);
        let (mut store, _) = BlockStore::open(medium, roots, Box::new(Md5Hasher), 16).unwrap();
        let err = store.read_vec(8192, 4).unwrap_err();
        assert!(matches!(err, StoreError::Integrity { .. }), "{err}");
        // The store is poisoned afterwards.
        assert!(matches!(
            store.read_vec(0, 1).unwrap_err(),
            StoreError::Poisoned
        ));
    }

    #[test]
    fn journaled_page_flip_is_healed_by_replay() {
        // The committed journal is a redo log: a flip on a main-region
        // page the journal still shadows is overwritten at open. The
        // recovered state verifies and the data is intact — masked, not
        // missed.
        let (mut store, medium, roots) = fresh(StoreConfig::small());
        store.write(500, &[0xEE; 100]).unwrap();
        store.commit().unwrap();
        let chunk = store.geometry().layout().data_chunk_for(500);
        let offset = store.geometry().page_offset(chunk) + (500 % 128);
        drop(store);
        medium.flip(offset, 0x10);
        let (mut store, report) = BlockStore::open(medium, roots, Box::new(Md5Hasher), 16).unwrap();
        assert!(report.replayed_entries > 0);
        assert_eq!(store.read_vec(500, 4).unwrap(), vec![0xEE; 4]);
        assert!(store.verify_all().is_ok());
    }

    #[test]
    fn too_small_cache_is_rejected() {
        let medium = MemMedium::new();
        let roots = MemRootStore::new();
        let config = StoreConfig {
            cache_pages: 2,
            ..StoreConfig::small()
        };
        let err = BlockStore::create(medium, roots, config, Box::new(Md5Hasher)).unwrap_err();
        assert!(matches!(err, StoreError::Config(_)), "{err}");
    }
}
