//! Persistent verified block store for the HPCA'03 reproduction.
//!
//! The in-memory engine ([`miv_core`]) proves integrity across a bus;
//! this crate carries the same guarantee across a *power cycle*. Hash
//! tree pages live in an untrusted block file behind a small trusted
//! page cache, writes journal before they commit, and the root commit
//! is atomic: a shadow superblock pair plus a monotone generation
//! counter in trusted [`RootStore`] storage means a crash at **any**
//! device step recovers byte-exactly to either the old or the new
//! committed state — never a torn one. The crash-point matrix test and
//! `mivsim store fsck` enumerate every such step and prove it.
//!
//! Layering:
//!
//! * [`medium`] — the untrusted device seam: memory, file, and the
//!   deterministic crash injector.
//! * [`format`] — superblock/journal/trusted-root encodings and the
//!   block file's region map.
//! * [`store`] — [`BlockStore`]: the verified cache, write-back
//!   journaling, the commit protocol, recovery, and fsck.
//!
//! # Example
//!
//! ```
//! use miv_hash::Md5Hasher;
//! use miv_store::{BlockStore, MemMedium, MemRootStore, StoreConfig};
//!
//! let medium = MemMedium::new();
//! let roots = MemRootStore::new();
//! let mut store = BlockStore::create(
//!     medium.clone(), roots.clone(), StoreConfig::small(), Box::new(Md5Hasher),
//! ).unwrap();
//! store.write(0, b"survives power loss").unwrap();
//! store.commit().unwrap();
//! drop(store); // power off
//!
//! let (mut store, report) =
//!     BlockStore::open(medium, roots, Box::new(Md5Hasher), 16).unwrap();
//! assert_eq!(report.generation, 2);
//! assert_eq!(store.read_vec(0, 19).unwrap(), b"survives power loss");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod medium;
pub mod store;

pub use error::StoreError;
pub use format::{
    JournalEntry, StoreGeometry, Superblock, TrustedRoot, JOURNAL_MAGIC, ROOT_MAGIC,
    SUPERBLOCK_MAGIC, SUPER_SLOT_BYTES,
};
pub use medium::{CrashMedium, FileMedium, MemMedium, StoreMedium};
pub use store::{
    BlockStore, FileRootStore, FsckReport, MemRootStore, RecoveryReport, RootStore, StoreConfig,
    StoreStats,
};
