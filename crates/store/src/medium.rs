//! The untrusted block device under the store.
//!
//! [`StoreMedium`] is the narrow seam between the verified store logic
//! and whatever actually holds the bytes: a real file
//! ([`FileMedium`]), an in-memory buffer ([`MemMedium`], used by the
//! offline-tamper campaign and the crash-matrix tests), or either of
//! those wrapped in the deterministic crash injector ([`CrashMedium`]).
//!
//! The medium is modeled as *synchronous*: a completed `write_at` is
//! durable. Torn writes — the failure the atomic commit protocol must
//! survive — are modeled at the injected crash point, where the fatal
//! write persists only a prefix of its buffer. `sync` is therefore a
//! no-op for durability here, but every implementation still counts it
//! as a device step so the crash matrix enumerates the protocol's sync
//! boundaries too.

use std::cell::RefCell;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
// miv-analyze: allow(rc-not-sent, reason="MemMedium clones share one buffer so a reopened store sees the same simulated device; stores are built and used on a single worker, never crossing the sweep boundary")
use std::rc::Rc;

/// An untrusted byte device addressed by absolute offset.
pub trait StoreMedium {
    /// Fills `buf` from `offset`. Reading past the end is an error.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Writes `data` at `offset`, extending the device if needed.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Orders preceding writes before subsequent ones (a device step;
    /// see the module docs for the durability model).
    fn sync(&mut self) -> io::Result<()>;

    /// Current device length in bytes.
    fn len(&mut self) -> io::Result<u64>;

    /// Whether the device currently holds zero bytes.
    fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// An in-memory medium sharing one buffer across clones.
///
/// Clones alias the same bytes (the handle is reference-counted), so a
/// test can keep a handle, drive a store to death through another, and
/// then inspect or reopen the very same "disk". Deliberately `!Send` —
/// the store is single-threaded per instance, like the engine; parallel
/// harnesses construct stores on their workers.
#[derive(Debug, Clone, Default)]
pub struct MemMedium {
    bytes: Rc<RefCell<Vec<u8>>>,
}

impl MemMedium {
    /// An empty in-memory device.
    pub fn new() -> Self {
        MemMedium::default()
    }

    /// A copy of the current device contents.
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.borrow().clone()
    }

    /// Replaces the device contents wholesale — the stale-image splice
    /// primitive of the offline-tamper family.
    pub fn restore(&self, image: &[u8]) {
        *self.bytes.borrow_mut() = image.to_vec();
    }

    /// XORs one byte — the offline bit-flip primitive.
    pub fn flip(&self, offset: u64, mask: u8) {
        let mut bytes = self.bytes.borrow_mut();
        let idx = usize::try_from(offset).expect("documented invariant");
        if idx < bytes.len() {
            bytes[idx] ^= mask;
        }
    }
}

impl StoreMedium for MemMedium {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let bytes = self.bytes.borrow();
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "offset out of range"))?;
        let end = start.checked_add(buf.len()).filter(|&e| e <= bytes.len());
        match end {
            Some(end) => {
                buf.copy_from_slice(&bytes[start..end]);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of medium",
            )),
        }
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut bytes = self.bytes.borrow_mut();
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::OutOfMemory, "offset out of range"))?;
        let end = start.saturating_add(data.len());
        if bytes.len() < end {
            bytes.resize(end, 0);
        }
        bytes[start..end].copy_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.bytes.borrow().len() as u64)
    }
}

/// A medium backed by a real file via `std::fs`.
#[derive(Debug)]
pub struct FileMedium {
    file: File,
}

impl FileMedium {
    /// Creates (truncating) a fresh file device.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileMedium { file })
    }

    /// Opens an existing file device read-write.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(FileMedium { file })
    }
}

impl StoreMedium for FileMedium {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// Deterministic crash injection around any medium.
///
/// Mutating device steps (`write_at`, `sync`) are numbered from 1.
/// [`arm`](Self::arm)ing the injector at step *k* makes the *k*-th
/// mutating step fatal: a fatal `write_at` persists only the first half
/// of its buffer (a torn write), a fatal `sync` persists nothing
/// further, and every subsequent operation — reads included — fails.
/// All failures surface as `ErrorKind::Interrupted`, which the store
/// maps to [`StoreError::Crashed`](crate::StoreError::Crashed).
///
/// Running a scripted workload unarmed and reading
/// [`steps`](Self::steps) afterwards gives the exact number of
/// injection points; rerunning the same script armed at each step in
/// turn is the crash-point matrix.
#[derive(Debug)]
pub struct CrashMedium<M> {
    inner: M,
    steps: u64,
    fail_at: Option<u64>,
    dead: bool,
}

impl<M: StoreMedium> CrashMedium<M> {
    /// Wraps `inner` with the injector disarmed.
    pub fn new(inner: M) -> Self {
        CrashMedium {
            inner,
            steps: 0,
            fail_at: None,
            dead: false,
        }
    }

    /// Makes mutating step number `step` (1-based) fatal.
    pub fn arm(mut self, step: u64) -> Self {
        self.fail_at = Some(step);
        self
    }

    /// Mutating steps performed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.dead
    }

    fn step(&mut self) -> io::Result<bool> {
        if self.dead {
            return Err(crash_error());
        }
        self.steps += 1;
        if self.fail_at == Some(self.steps) {
            self.dead = true;
            return Ok(true);
        }
        Ok(false)
    }
}

fn crash_error() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected crash")
}

impl<M: StoreMedium> StoreMedium for CrashMedium<M> {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        if self.dead {
            return Err(crash_error());
        }
        self.inner.read_at(offset, buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        if self.step()? {
            // Torn write: only a prefix of the buffer reaches the
            // device before power dies.
            self.inner.write_at(offset, &data[..data.len() / 2])?;
            return Err(crash_error());
        }
        self.inner.write_at(offset, data)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.step()? {
            return Err(crash_error());
        }
        self.inner.sync()
    }

    fn len(&mut self) -> io::Result<u64> {
        if self.dead {
            return Err(crash_error());
        }
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_medium_clones_alias_one_buffer() {
        let a = MemMedium::new();
        let mut b = a.clone();
        b.write_at(4, b"shared").unwrap();
        assert_eq!(a.snapshot()[4..10].to_vec(), b"shared");
        let mut buf = [0u8; 6];
        b.read_at(4, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
        assert!(b.read_at(8, &mut buf).is_err(), "read past end fails");
        a.flip(4, 0x01);
        b.read_at(4, &mut buf).unwrap();
        assert_eq!(buf[0], b's' ^ 0x01);
        a.restore(b"xy");
        assert_eq!(b.len().unwrap(), 2);
    }

    #[test]
    fn crash_medium_counts_and_tears() {
        let mem = MemMedium::new();
        let mut m = CrashMedium::new(mem.clone());
        m.write_at(0, &[1; 8]).unwrap();
        m.sync().unwrap();
        m.write_at(8, &[2; 8]).unwrap();
        assert_eq!(m.steps(), 3);
        assert!(!m.crashed());

        // Same script armed at step 3: the second write tears.
        let mem = MemMedium::new();
        let mut m = CrashMedium::new(mem.clone()).arm(3);
        m.write_at(0, &[1; 8]).unwrap();
        m.sync().unwrap();
        let err = m.write_at(8, &[2; 8]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert!(m.crashed());
        // Half of the torn write landed; the device is then dead.
        assert_eq!(mem.snapshot().len(), 12);
        assert!(m.read_at(0, &mut [0u8; 1]).is_err());
        assert!(m.write_at(0, &[0]).is_err());
        assert!(m.sync().is_err());
        assert!(m.len().is_err());
    }

    #[test]
    fn crash_on_sync_persists_nothing_further() {
        let mem = MemMedium::new();
        let mut m = CrashMedium::new(mem.clone()).arm(2);
        m.write_at(0, &[7; 4]).unwrap();
        assert!(m.sync().is_err());
        assert_eq!(mem.snapshot(), vec![7; 4]);
    }
}
