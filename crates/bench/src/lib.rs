//! Shared helpers for the Criterion benchmarks.
//!
//! The benchmarks live in `benches/`:
//!
//! * `hash_primitives` — MD5 / SHA-1 / XOR-MAC software throughput (the
//!   quantities Table 1's hardware hash unit abstracts).
//! * `figures` — one benchmark per evaluation figure, each running a
//!   scaled-down version of the corresponding simulator sweep.
//! * `ablations` — the design-choice studies called out in `DESIGN.md`:
//!   hash caching, chunk geometry, incremental MAC, write-allocate
//!   optimization, speculative verification.
//! * `functional_engine` — byte-moving throughput of the functional
//!   `VerifiedMemory` engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use miv_core::timing::Scheme;
use miv_sim::{RunResult, System, SystemConfig};
use miv_trace::Benchmark;

/// Instructions for bench-sized simulator runs (small but non-trivial).
pub const BENCH_WARMUP: u64 = 5_000;
/// Measured instructions for bench-sized simulator runs.
pub const BENCH_MEASURE: u64 = 40_000;

/// Runs one bench-sized simulation.
pub fn bench_run(scheme: Scheme, l2_bytes: u64, line: u32, bench: Benchmark) -> RunResult {
    let cfg = SystemConfig::hpca03(scheme, l2_bytes, line);
    System::for_benchmark(cfg, bench, 42).run(BENCH_WARMUP, BENCH_MEASURE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_run_smoke() {
        let r = bench_run(Scheme::CHash, 256 << 10, 64, Benchmark::Gzip);
        assert!(r.ipc > 0.0);
        assert_eq!(r.instructions, BENCH_MEASURE);
    }
}
