//! Benchmark harness and shared helpers.
//!
//! The workspace builds offline, so instead of an external benchmark
//! framework the crate ships a small `std::time`-based [`Harness`]: each
//! `benches/` target is a plain `fn main()` (`harness = false`) that
//! registers closures and prints a throughput table. The benchmarks:
//!
//! * `hash_primitives` — MD5 / SHA-1 / XOR-MAC software throughput (the
//!   quantities Table 1's hardware hash unit abstracts).
//! * `figures` — one benchmark per evaluation figure, each running a
//!   scaled-down version of the corresponding simulator sweep.
//! * `ablations` — the design-choice studies called out in `DESIGN.md`:
//!   hash caching, chunk geometry, incremental MAC, write-allocate
//!   optimization, speculative verification.
//! * `functional_engine` — byte-moving throughput of the functional
//!   `VerifiedMemory` engine.
//! * `obs_overhead` — cost of the `miv-obs` recording handles, enabled
//!   versus disabled, standalone and inside a full simulation.
//!
//! Run with `cargo bench -p miv-bench`; pass a substring to run a subset
//! (`cargo bench -p miv-bench --bench figures -- fig4`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use miv_core::timing::Scheme;
use miv_sim::report::{f2, Table};
use miv_sim::{RunResult, System, SystemConfig};
use miv_trace::Benchmark;

/// Instructions for bench-sized simulator runs (small but non-trivial).
pub const BENCH_WARMUP: u64 = 5_000;
/// Measured instructions for bench-sized simulator runs.
pub const BENCH_MEASURE: u64 = 40_000;

/// Runs one bench-sized simulation.
pub fn bench_run(scheme: Scheme, l2_bytes: u64, line: u32, bench: Benchmark) -> RunResult {
    let cfg = SystemConfig::hpca03(scheme, l2_bytes, line);
    System::for_benchmark(cfg, bench, 42).run(BENCH_WARMUP, BENCH_MEASURE)
}

/// One finished benchmark row.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Iterations measured (after calibration).
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Throughput in MB/s when the routine moves a known byte count.
    pub mbps: Option<f64>,
}

/// A minimal wall-clock benchmark harness.
///
/// Batched routines are calibrated by doubling the batch size until one
/// batch takes at least ~2 ms, then the best of three batches is
/// reported, so sub-microsecond operations are still resolvable with a
/// plain [`Instant`].
///
/// # Examples
///
/// ```
/// let mut h = miv_bench::Harness::with_filter(None);
/// let mut acc = 0u64;
/// h.bench("wrapping_add", || acc = acc.wrapping_add(3));
/// assert_eq!(h.results().len(), 1);
/// ```
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    target: Duration,
    results: Vec<Measurement>,
}

impl Harness {
    /// Builds a harness filtering by the first non-flag CLI argument
    /// (`cargo bench -- <substring>`).
    pub fn from_args() -> Self {
        Harness::with_filter(std::env::args().skip(1).find(|a| !a.starts_with('-')))
    }

    /// Builds a harness with an explicit name filter.
    pub fn with_filter(filter: Option<String>) -> Self {
        Harness {
            filter,
            target: Duration::from_millis(200),
            results: Vec::new(),
        }
    }

    /// Sets the per-benchmark time budget (default 200 ms). Quick/CI
    /// modes shrink it; the calibration floor still guarantees a
    /// timeable batch.
    pub fn set_target(&mut self, target: Duration) {
        self.target = target;
    }

    fn skip(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    /// Benchmarks `f`, batching iterations inside one timing window.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.bench_inner(name, None, f);
    }

    /// Like [`bench`](Self::bench), reporting MB/s for a routine that
    /// processes `bytes` per iteration.
    pub fn bench_bytes<R>(&mut self, name: &str, bytes: u64, f: impl FnMut() -> R) {
        self.bench_inner(name, Some(bytes), f);
    }

    fn bench_inner<R>(&mut self, name: &str, bytes: Option<u64>, mut f: impl FnMut() -> R) {
        if self.skip(name) {
            return;
        }
        // Calibrate: double the batch until it is long enough to time.
        let mut batch = 1u64;
        let floor = Duration::from_millis(2);
        loop {
            // miv-analyze: allow(no-wall-clock, reason="the bench Harness exists to measure real time; sim/core never link it")
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            if t0.elapsed() >= floor || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        // Measure: best of up to three batches within the time budget.
        let rounds = 3;
        let mut best = f64::INFINITY;
        // miv-analyze: allow(no-wall-clock, reason="the bench Harness exists to measure real time; sim/core never link it")
        let deadline = Instant::now() + self.target;
        for round in 0..rounds {
            // miv-analyze: allow(no-wall-clock, reason="the bench Harness exists to measure real time; sim/core never link it")
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let per = t0.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(per);
            // miv-analyze: allow(no-wall-clock, reason="the bench Harness exists to measure real time; sim/core never link it")
            if round + 1 < rounds && Instant::now() >= deadline {
                break;
            }
        }
        self.push(name, batch, best, bytes);
    }

    /// Benchmarks `routine` with a fresh `setup()` value per iteration;
    /// only `routine` is timed. Intended for routines that are
    /// milliseconds long (whole simulation runs), so each iteration is
    /// timed individually and the best one is reported — the same
    /// best-of convention as the batched path, which keeps allocator and
    /// scheduler noise out of A/B comparisons.
    pub fn bench_with_setup<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        if self.skip(name) {
            return;
        }
        let mut iters = 0u64;
        let mut best = f64::INFINITY;
        let mut spent = Duration::ZERO;
        while iters < 3 || (spent < self.target && iters < 1000) {
            let input = setup();
            // miv-analyze: allow(no-wall-clock, reason="the bench Harness exists to measure real time; sim/core never link it")
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            let dt = t0.elapsed();
            best = best.min(dt.as_nanos() as f64);
            spent += dt;
            iters += 1;
        }
        self.push(name, iters, best, None);
    }

    fn push(&mut self, name: &str, iters: u64, ns_per_iter: f64, bytes: Option<u64>) {
        let mbps = bytes.map(|b| b as f64 * 1e9 / ns_per_iter / 1e6);
        self.results.push(Measurement {
            name: name.to_string(),
            iters,
            ns_per_iter,
            mbps,
        });
    }

    /// Measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the result table.
    pub fn finish(&self) {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "iters".into(),
            "ns/iter".into(),
            "MB/s".into(),
        ]);
        for m in &self.results {
            t.row(vec![
                m.name.clone(),
                m.iters.to_string(),
                f2(m.ns_per_iter),
                m.mbps.map_or_else(|| "-".into(), f2),
            ]);
        }
        print!("{}", t.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_run_smoke() {
        let r = bench_run(Scheme::CHash, 256 << 10, 64, Benchmark::Gzip);
        assert!(r.ipc > 0.0);
        assert_eq!(r.instructions, BENCH_MEASURE);
    }

    #[test]
    fn harness_measures_and_filters() {
        let mut h = Harness::with_filter(Some("keep".into()));
        h.target = Duration::from_millis(5);
        let mut acc = 0u64;
        h.bench("keep_this", || acc = acc.wrapping_add(1));
        h.bench("drop_this", || acc = acc.wrapping_add(1));
        h.bench_with_setup("also_dropped", || 1u64, |x| x + 1);
        assert_eq!(h.results().len(), 1);
        let m = &h.results()[0];
        assert_eq!(m.name, "keep_this");
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters >= 1);
    }

    #[test]
    fn harness_reports_throughput() {
        let mut h = Harness::with_filter(None);
        h.target = Duration::from_millis(5);
        let buf = vec![1u8; 4096];
        h.bench_bytes("sum_4k", 4096, || {
            buf.iter().map(|&b| b as u64).sum::<u64>()
        });
        let m = &h.results()[0];
        assert!(m.mbps.unwrap() > 0.0);
    }
}
