//! Cost of the `miv-obs` recording handles, enabled versus disabled.
//!
//! The telemetry layer's contract is that a *disabled* handle (the
//! default on every instrumented component) costs a single branch, so
//! instrumentation can stay compiled into the hot paths of the cache,
//! bus and checker. This bench quantifies that: per-operation costs of
//! counters/histograms/event sinks in both states, and the end-to-end
//! cost of a full simulation run with and without telemetry attached.
//! The companion test `tests/disabled_recorder.rs` asserts the disabled
//! path also performs zero allocations and records nothing.

use miv_bench::{Harness, BENCH_MEASURE, BENCH_WARMUP};
use miv_core::timing::Scheme;
use miv_obs::{Counter, EventSink, Histogram, Registry, SimEvent};
use miv_sim::{System, SystemConfig, Telemetry};
use miv_trace::Benchmark;

fn sim() -> System {
    let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64);
    System::for_benchmark(cfg, Benchmark::Gzip, 42)
}

fn main() {
    let mut h = Harness::from_args();
    let registry = Registry::new();

    let disabled = Counter::disabled();
    h.bench("counter/disabled_inc", || disabled.inc());
    let enabled = registry.counter("bench.counter");
    h.bench("counter/enabled_inc", || enabled.inc());

    let disabled = Histogram::default();
    let mut v = 0u64;
    h.bench("histogram/disabled_record", || {
        v = v.wrapping_add(17);
        disabled.record(v & 0xffff);
    });
    let enabled = registry.histogram("bench.hist");
    h.bench("histogram/enabled_record", || {
        v = v.wrapping_add(17);
        enabled.record(v & 0xffff);
    });

    let disabled = EventSink::disabled();
    let mut cycle = 0u64;
    h.bench("event_sink/disabled_record", || {
        cycle += 1;
        disabled.record(cycle, SimEvent::HashEnqueue { bytes: 64 });
    });
    let trace = miv_obs::EventTrace::bounded(1 << 12);
    let enabled = trace.sink();
    h.bench("event_sink/enabled_record", || {
        cycle += 1;
        enabled.record(cycle, SimEvent::HashEnqueue { bytes: 64 });
    });

    // End to end: the same simulation with all recorders disabled
    // (default) versus a fully attached telemetry bundle.
    h.bench_with_setup("sim_run/telemetry_disabled", sim, |mut sys| {
        sys.run(BENCH_WARMUP, BENCH_MEASURE).ipc
    });
    h.bench_with_setup(
        "sim_run/telemetry_enabled",
        || {
            let mut sys = sim();
            let telemetry = Telemetry::new();
            sys.attach_telemetry(&telemetry);
            (sys, telemetry)
        },
        |(mut sys, telemetry)| {
            let ipc = sys.run(BENCH_WARMUP, BENCH_MEASURE).ipc;
            drop(telemetry);
            ipc
        },
    );

    h.finish();
}
