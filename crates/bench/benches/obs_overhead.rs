//! Cost of the `miv-obs` recording handles, enabled versus disabled.
//!
//! The telemetry layer's contract is that a *disabled* handle (the
//! default on every instrumented component) costs a single branch, so
//! instrumentation can stay compiled into the hot paths of the cache,
//! bus and checker. This bench quantifies that: per-operation costs of
//! counters/histograms/event sinks in both states, and the end-to-end
//! cost of a full simulation run with and without telemetry attached.
//! The companion test `tests/disabled_recorder.rs` asserts the disabled
//! path also performs zero allocations and records nothing.

use miv_bench::{Harness, BENCH_MEASURE, BENCH_WARMUP};
use miv_cache::CacheConfig;
use miv_core::timing::{CheckerConfig, L2Controller, Scheme};
use miv_mem::MemoryBusConfig;
use miv_obs::{Counter, EventSink, Histogram, Registry, Rng, SimEvent, SpanTracer};
use miv_sim::{System, SystemConfig, Telemetry};
use miv_trace::Benchmark;

fn sim() -> System {
    let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64);
    System::for_benchmark(cfg, Benchmark::Gzip, 42)
}

/// The profiler's workload pass shape: an L2 controller with (or
/// without) a span tracer attached, driven by a seeded access stream.
fn controller() -> L2Controller {
    let mut checker = CheckerConfig::hpca03(Scheme::CHash);
    checker.protected_bytes = 256 << 10;
    L2Controller::new(
        checker,
        CacheConfig::l2(32 << 10, 64),
        MemoryBusConfig::default(),
    )
}

fn drive(ctl: &mut L2Controller, accesses: u64) -> u64 {
    let mut rng = Rng::seed_from_u64(42);
    let mut now = 0u64;
    for _ in 0..accesses {
        let addr = rng.gen_range_u64(0, 2048) * 64;
        let write = rng.gen_bool(0.3);
        now = ctl.access(now, addr, write, false);
    }
    ctl.quiesce(now)
}

fn main() {
    let mut h = Harness::from_args();
    let registry = Registry::new();

    let disabled = Counter::disabled();
    h.bench("counter/disabled_inc", || disabled.inc());
    let enabled = registry.counter("bench.counter");
    h.bench("counter/enabled_inc", || enabled.inc());

    let disabled = Histogram::default();
    let mut v = 0u64;
    h.bench("histogram/disabled_record", || {
        v = v.wrapping_add(17);
        disabled.record(v & 0xffff);
    });
    let enabled = registry.histogram("bench.hist");
    h.bench("histogram/enabled_record", || {
        v = v.wrapping_add(17);
        enabled.record(v & 0xffff);
    });

    let disabled = EventSink::disabled();
    let mut cycle = 0u64;
    h.bench("event_sink/disabled_record", || {
        cycle += 1;
        disabled.record(cycle, SimEvent::HashEnqueue { bytes: 64 });
    });
    let trace = miv_obs::EventTrace::bounded(1 << 12);
    let enabled = trace.sink();
    h.bench("event_sink/enabled_record", || {
        cycle += 1;
        enabled.record(cycle, SimEvent::HashEnqueue { bytes: 64 });
    });

    // Span enter/exit + attribution: the disabled path must stay a
    // single branch per call (the conservation-profiled hot path keeps
    // these compiled in permanently).
    let disabled = SpanTracer::disabled();
    let mut cyc = 0u64;
    h.bench("span/disabled_enter_exit", || {
        cyc = cyc.wrapping_add(13);
        let _g = disabled.span("hit");
        disabled.attribute(cyc & 0xff);
    });
    let enabled = SpanTracer::enabled();
    h.bench("span/enabled_enter_exit", || {
        cyc = cyc.wrapping_add(13);
        let _g = enabled.span("hit");
        enabled.attribute(cyc & 0xff);
    });

    // End to end on the profiler's workload pass: the same controller
    // stream with no tracer (default) versus a tracer attributing every
    // cycle — the number to hold next to the ~9% full-telemetry figure.
    h.bench_with_setup("l2_stream/spans_disabled", controller, |mut ctl| {
        drive(&mut ctl, 4_000)
    });
    h.bench_with_setup(
        "l2_stream/spans_enabled",
        || {
            let mut ctl = controller();
            let spans = SpanTracer::enabled();
            ctl.attach_spans(&spans);
            (ctl, spans)
        },
        |(mut ctl, spans)| {
            let done = drive(&mut ctl, 4_000);
            drop(spans);
            done
        },
    );

    // End to end: the same simulation with all recorders disabled
    // (default) versus a fully attached telemetry bundle.
    h.bench_with_setup("sim_run/telemetry_disabled", sim, |mut sys| {
        sys.run(BENCH_WARMUP, BENCH_MEASURE).ipc
    });
    h.bench_with_setup(
        "sim_run/telemetry_enabled",
        || {
            let mut sys = sim();
            let telemetry = Telemetry::new();
            sys.attach_telemetry(&telemetry);
            (sys, telemetry)
        },
        |(mut sys, telemetry)| {
            let ipc = sys.run(BENCH_WARMUP, BENCH_MEASURE).ipc;
            drop(telemetry);
            ipc
        },
    );

    h.finish();
}
