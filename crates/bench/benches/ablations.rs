//! Ablation studies for the design choices called out in `DESIGN.md` §6.
//!
//! Each group compares a design decision's "on" and "off" variants under
//! the same workload, so `cargo bench` records the cost/benefit:
//!
//! * `ablation_hash_caching` — the paper's headline: chash vs naive.
//! * `ablation_chunk_geometry` — 1 vs 2 blocks per chunk, 64 vs 128-B lines.
//! * `ablation_incremental_mac` — ihash vs mhash write-back machinery.
//! * `ablation_write_allocate` — §5.3 no-fetch overwrite optimization.
//! * `ablation_speculation` — §5.8 speculative use of unverified data.

use miv_bench::{bench_run, Harness, BENCH_MEASURE, BENCH_WARMUP};
use miv_core::timing::Scheme;
use miv_sim::{System, SystemConfig};
use miv_trace::Benchmark;

fn bench_variant(
    h: &mut Harness,
    name: &str,
    mutate: impl Fn(&mut SystemConfig) + Copy,
    bench: Benchmark,
) {
    h.bench_with_setup(
        name,
        move || {
            let mut cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64);
            mutate(&mut cfg);
            System::for_benchmark(cfg, bench, 42)
        },
        |mut sys| sys.run(BENCH_WARMUP, BENCH_MEASURE).ipc,
    );
}

fn main() {
    let mut h = Harness::from_args();

    h.bench_with_setup(
        "ablation_hash_caching/cached",
        || (),
        |()| bench_run(Scheme::CHash, 1 << 20, 64, Benchmark::Swim).ipc,
    );
    h.bench_with_setup(
        "ablation_hash_caching/naive",
        || (),
        |()| bench_run(Scheme::Naive, 1 << 20, 64, Benchmark::Swim).ipc,
    );

    for (label, scheme, line) in [
        ("one_block_64B", Scheme::CHash, 64u32),
        ("one_block_128B", Scheme::CHash, 128),
        ("two_blocks_64B", Scheme::MHash, 64),
    ] {
        h.bench_with_setup(
            &format!("ablation_chunk_geometry/{label}"),
            || (),
            move |()| bench_run(scheme, 1 << 20, line, Benchmark::Vortex).ipc,
        );
    }

    h.bench_with_setup(
        "ablation_incremental_mac/rehash_whole_chunk",
        || (),
        |()| bench_run(Scheme::MHash, 1 << 20, 64, Benchmark::Swim).bus_bytes,
    );
    h.bench_with_setup(
        "ablation_incremental_mac/incremental_update",
        || (),
        |()| bench_run(Scheme::IHash, 1 << 20, 64, Benchmark::Swim).bus_bytes,
    );

    bench_variant(
        &mut h,
        "ablation_write_allocate/no_fetch_on_overwrite",
        |cfg| cfg.checker.write_allocate_no_fetch = true,
        Benchmark::Swim,
    );
    bench_variant(
        &mut h,
        "ablation_write_allocate/always_fetch_and_check",
        |cfg| cfg.checker.write_allocate_no_fetch = false,
        Benchmark::Swim,
    );

    bench_variant(
        &mut h,
        "ablation_speculation/speculative_background_checks",
        |cfg| cfg.checker.block_on_verify = false,
        Benchmark::Mcf,
    );
    bench_variant(
        &mut h,
        "ablation_speculation/block_until_verified",
        |cfg| cfg.checker.block_on_verify = true,
        Benchmark::Mcf,
    );

    for policy in miv_cache::ReplacementPolicy::ALL {
        bench_variant(
            &mut h,
            &format!("ablation_replacement/{}", policy.label()),
            move |cfg| cfg.checker.l2_policy = policy,
            Benchmark::Twolf,
        );
    }

    h.finish();
}
