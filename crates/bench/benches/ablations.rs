//! Ablation studies for the design choices called out in `DESIGN.md` §6.
//!
//! Each group compares a design decision's "on" and "off" variants under
//! the same workload, so `cargo bench` records the cost/benefit:
//!
//! * `ablation_hash_caching` — the paper's headline: chash vs naive.
//! * `ablation_chunk_geometry` — 1 vs 2 blocks per chunk, 64 vs 128-B lines.
//! * `ablation_incremental_mac` — ihash vs mhash write-back machinery.
//! * `ablation_write_allocate` — §5.3 no-fetch overwrite optimization.
//! * `ablation_speculation` — §5.8 speculative use of unverified data.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use miv_bench::{bench_run, BENCH_MEASURE, BENCH_WARMUP};
use miv_core::timing::Scheme;
use miv_sim::{System, SystemConfig};
use miv_trace::Benchmark;

fn ablation_hash_caching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hash_caching");
    group.sample_size(10);
    group.bench_function("cached", |b| {
        b.iter(|| bench_run(Scheme::CHash, 1 << 20, 64, Benchmark::Swim).ipc)
    });
    group.bench_function("naive", |b| {
        b.iter(|| bench_run(Scheme::Naive, 1 << 20, 64, Benchmark::Swim).ipc)
    });
    group.finish();
}

fn ablation_chunk_geometry(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_chunk_geometry");
    group.sample_size(10);
    for (label, scheme, line) in [
        ("one_block_64B", Scheme::CHash, 64u32),
        ("one_block_128B", Scheme::CHash, 128),
        ("two_blocks_64B", Scheme::MHash, 64),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| bench_run(scheme, 1 << 20, line, Benchmark::Vortex).ipc)
        });
    }
    group.finish();
}

fn ablation_incremental_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_incremental_mac");
    group.sample_size(10);
    group.bench_function("rehash_whole_chunk", |b| {
        b.iter(|| bench_run(Scheme::MHash, 1 << 20, 64, Benchmark::Swim).bus_bytes)
    });
    group.bench_function("incremental_update", |b| {
        b.iter(|| bench_run(Scheme::IHash, 1 << 20, 64, Benchmark::Swim).bus_bytes)
    });
    group.finish();
}

fn run_with(
    mutate: impl Fn(&mut SystemConfig),
    bench: Benchmark,
) -> impl FnMut(&mut criterion::Bencher<'_>) {
    move |b| {
        b.iter_batched(
            || {
                let mut cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64);
                mutate(&mut cfg);
                System::for_benchmark(cfg, bench, 42)
            },
            |mut sys| sys.run(BENCH_WARMUP, BENCH_MEASURE).ipc,
            BatchSize::SmallInput,
        )
    }
}

fn ablation_write_allocate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_write_allocate");
    group.sample_size(10);
    group.bench_function(
        "no_fetch_on_overwrite",
        run_with(|cfg| cfg.checker.write_allocate_no_fetch = true, Benchmark::Swim),
    );
    group.bench_function(
        "always_fetch_and_check",
        run_with(|cfg| cfg.checker.write_allocate_no_fetch = false, Benchmark::Swim),
    );
    group.finish();
}

fn ablation_speculation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_speculation");
    group.sample_size(10);
    group.bench_function(
        "speculative_background_checks",
        run_with(|cfg| cfg.checker.block_on_verify = false, Benchmark::Mcf),
    );
    group.bench_function(
        "block_until_verified",
        run_with(|cfg| cfg.checker.block_on_verify = true, Benchmark::Mcf),
    );
    group.finish();
}

fn ablation_replacement(c: &mut Criterion) {
    use miv_cache::ReplacementPolicy;
    let mut group = c.benchmark_group("ablation_replacement");
    group.sample_size(10);
    for policy in ReplacementPolicy::ALL {
        group.bench_function(
            policy.label(),
            run_with(move |cfg| cfg.checker.l2_policy = policy, Benchmark::Twolf),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_hash_caching,
    ablation_chunk_geometry,
    ablation_incremental_mac,
    ablation_write_allocate,
    ablation_speculation,
    ablation_replacement
);
criterion_main!(benches);
