//! Verification hot-path throughput, with a committed baseline.
//!
//! The workload the paper cares about: a working set larger than the
//! trusted cache, so every access misses and fetches through the
//! verifier. Without memoization each fetch re-hashes the full ancestor
//! path; with generation-stamped memoization a chunk already verified in
//! the current quiescent epoch skips straight to the bytes. The bench
//! measures both paths on the same geometry plus the batched flush and
//! multi-lane digest primitives, and gates the memoization speedup
//! against `BENCH_hotpath.json` at the repo root.
//!
//! Modes (plain `fn main()`, `harness = false`):
//!
//! * `cargo bench -p miv-bench --bench verify_hot_path` — full table.
//! * `-- --quick` — shorter timing windows (CI).
//! * `-- --json PATH` — also write a `miv-bench-hotpath-v1` JSON report.
//! * `-- --check PATH` — compare against a baseline JSON and exit
//!   non-zero when a gated ratio regresses by more than the tolerance
//!   (`--tolerance PCT`, default 20). Ratios of two same-machine
//!   measurements are gated, not raw wall-clock numbers, so the gate is
//!   meaningful on hardware other than the one that made the baseline.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Duration;

use miv_bench::Harness;
use miv_core::{MemoryBuilder, Protection, VerifiedMemory};
use miv_hash::{ChunkHasher, Md5Hasher, Sha1Hasher, Sha256Hasher};
use miv_obs::json::JsonValue;

/// Bytes in the repeated-access working set (larger than the cache, so
/// every pass misses and re-fetches through the verifier).
const WORKING_SET: u64 = 64 << 10;
/// Data segment backing the tree.
const DATA_BYTES: u64 = 256 << 10;
/// Trusted cache blocks — small enough that the working set thrashes.
const CACHE_BLOCKS: usize = 64;
const LINE: u64 = 64;

fn engine(memoize: bool) -> VerifiedMemory {
    let mut mem = MemoryBuilder::new()
        .data_bytes(DATA_BYTES)
        .cache_blocks(CACHE_BLOCKS)
        .build();
    mem.set_memoization(memoize);
    mem
}

/// Engine with a cache roomy enough that dirty blocks and their slot
/// blocks stay resident: the flush cases then compare the batched
/// multi-lane digest path against scalar re-hashing, rather than
/// measuring slot-miss fetch traffic (which batching does not change).
fn roomy_engine(flush_lanes: usize) -> VerifiedMemory {
    let mut mem = MemoryBuilder::new()
        .data_bytes(DATA_BYTES)
        .cache_blocks(1024)
        .build();
    mem.set_flush_batch_lanes(flush_lanes);
    mem
}

fn mac_engine() -> VerifiedMemory {
    MemoryBuilder::new()
        .data_bytes(DATA_BYTES)
        .chunk_bytes(128)
        .block_bytes(64)
        .protection(Protection::IncrementalMac)
        .cache_blocks(CACHE_BLOCKS)
        .build()
}

/// One full pass of verified reads over the working set.
fn read_pass(mem: &mut VerifiedMemory, buf: &mut [u8]) {
    let mut addr = 0u64;
    while addr < WORKING_SET {
        mem.read(addr, buf).unwrap();
        addr += LINE;
    }
}

/// Dirty `n` blocks spread across distinct chunks.
fn dirty_blocks(mem: &mut VerifiedMemory, n: u64) {
    for i in 0..n {
        mem.write(i * LINE, &[i as u8; LINE as usize]).unwrap();
    }
}

fn mbps_of(h: &Harness, name: &str) -> f64 {
    h.results()
        .iter()
        .find(|m| m.name == name)
        .and_then(|m| m.mbps)
        .unwrap_or(0.0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let json_out = flag_value("--json");
    let check = flag_value("--check");
    let tolerance_pct: f64 = flag_value("--tolerance")
        .map(|v| v.parse().expect("--tolerance takes a number"))
        .unwrap_or(20.0);

    // The name filter is the first non-flag argument that is not the
    // value of a value-taking flag.
    let filter = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            let is_flag_value =
                *i > 0 && matches!(args[i - 1].as_str(), "--json" | "--check" | "--tolerance");
            !(a.starts_with('-') || is_flag_value)
        })
        .map(|(_, a)| a.clone())
        .next();
    let mut h = Harness::with_filter(filter);
    if quick {
        h.set_target(Duration::from_millis(40));
    }

    let mut buf = [0u8; LINE as usize];

    // Headline pair: the same thrashing read workload with and without
    // verified-path memoization. Warm one pass first so the memoized
    // engine is inside an epoch (nothing has invalidated it).
    let mut memo = engine(true);
    read_pass(&mut memo, &mut buf);
    h.bench_bytes("hot_path/verify_reads_memoized", WORKING_SET, || {
        read_pass(&mut memo, &mut buf);
    });
    let mut plain = engine(false);
    read_pass(&mut plain, &mut buf);
    h.bench_bytes("hot_path/verify_reads_unmemoized", WORKING_SET, || {
        read_pass(&mut plain, &mut buf);
    });

    // Repeated-access MAC path for reference (O(1) per update already).
    let mut mac = mac_engine();
    read_pass(&mut mac, &mut buf);
    h.bench_bytes("hot_path/verify_reads_incremental_mac", WORKING_SET, || {
        read_pass(&mut mac, &mut buf);
    });

    // Flush with the multi-lane batched digest vs the scalar path.
    const DIRTY: u64 = 128;
    h.bench_with_setup(
        "hot_path/flush_batched",
        || {
            let mut mem = roomy_engine(miv_hash::BATCH_LANES);
            dirty_blocks(&mut mem, DIRTY);
            mem
        },
        |mut mem| mem.flush().unwrap(),
    );
    h.bench_with_setup(
        "hot_path/flush_scalar",
        || {
            let mut mem = roomy_engine(1);
            dirty_blocks(&mut mem, DIRTY);
            mem
        },
        |mut mem| mem.flush().unwrap(),
    );

    // Raw primitive: 4-lane interleaved compress vs one-at-a-time, on
    // chunk-sized messages (64 B data + covered layout slots ≈ 64 B).
    let msg = [[0xA5u8; 64]; 4];
    let md5 = Md5Hasher;
    let sha1 = Sha1Hasher;
    h.bench_bytes("digest_batch/md5_4lane", 4 * 64, || {
        let m: Vec<&[u8]> = msg.iter().map(|m| &m[..]).collect();
        black_box(md5.digest_batch(&m));
    });
    h.bench_bytes("digest_batch/md5_serial", 4 * 64, || {
        for m in &msg {
            black_box(md5.digest(m));
        }
    });
    h.bench_bytes("digest_batch/sha1_4lane", 4 * 64, || {
        let m: Vec<&[u8]> = msg.iter().map(|m| &m[..]).collect();
        black_box(sha1.digest_batch(&m));
    });
    h.bench_bytes("digest_batch/sha1_serial", 4 * 64, || {
        for m in &msg {
            black_box(sha1.digest(m));
        }
    });
    // Lane-width scaling probe: 2-wide interleaving (register pressure
    // rises with width; the sweet spot is micro-architecture dependent).
    h.bench_bytes("digest_batch/md5_2lane", 4 * 64, || {
        black_box(miv_hash::md5::md5_multi(&[&msg[0][..], &msg[1][..]]));
        black_box(miv_hash::md5::md5_multi(&[&msg[2][..], &msg[3][..]]));
    });
    h.bench_bytes("digest_batch/sha1_2lane", 4 * 64, || {
        black_box(miv_hash::sha1::sha1_multi(&[&msg[0][..], &msg[1][..]]));
        black_box(miv_hash::sha1::sha1_multi(&[&msg[2][..], &msg[3][..]]));
    });
    // SHA-256 runs its batches 2-wide (64 rounds and a bigger state
    // mean 4-wide spills on common cores).
    let sha256 = Sha256Hasher;
    h.bench_bytes("digest_batch/sha256_2lane", 4 * 64, || {
        let m: Vec<&[u8]> = msg.iter().map(|m| &m[..]).collect();
        black_box(sha256.digest_batch(&m));
    });
    h.bench_bytes("digest_batch/sha256_serial", 4 * 64, || {
        for m in &msg {
            black_box(sha256.digest(m));
        }
    });

    // Full tree build: the level-by-level bulk path (lane-batched
    // digest_batch, one worker) vs the scalar chunk-at-a-time walk, on
    // one engine. A segment big enough that per-level worker spawns
    // amortize; the jobs=4 case is reported but not gated — worker
    // speedup depends on the host's core count.
    const BUILD_BYTES: u64 = 4 << 20;
    let mut build = MemoryBuilder::new()
        .data_bytes(BUILD_BYTES)
        .cache_blocks(CACHE_BLOCKS)
        .build();
    h.bench_bytes("tree_build/bulk_1job", BUILD_BYTES, || {
        build.rebuild_tree_bulk(1);
    });
    h.bench_bytes("tree_build/serial_scalar", BUILD_BYTES, || {
        build.rebuild_tree_serial();
    });
    h.bench_bytes("tree_build/bulk_4jobs", BUILD_BYTES, || {
        build.rebuild_tree_bulk(4);
    });

    h.finish();

    let memo_mbps = mbps_of(&h, "hot_path/verify_reads_memoized");
    let plain_mbps = mbps_of(&h, "hot_path/verify_reads_unmemoized");
    let speedup = if plain_mbps > 0.0 {
        memo_mbps / plain_mbps
    } else {
        0.0
    };
    let ratio_of = |num: &str, den: &str| {
        let num = mbps_of(&h, num);
        let den = mbps_of(&h, den);
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    };
    let md5_ratio = ratio_of("digest_batch/md5_4lane", "digest_batch/md5_serial");
    let sha256_ratio = ratio_of("digest_batch/sha256_2lane", "digest_batch/sha256_serial");
    let bulk_ratio = ratio_of("tree_build/bulk_1job", "tree_build/serial_scalar");
    let bulk_parallel = ratio_of("tree_build/bulk_4jobs", "tree_build/bulk_1job");
    println!(
        "memoization speedup: {speedup:.2}x  (md5 4-lane ratio: {md5_ratio:.2}x, \
         sha256 2-lane ratio: {sha256_ratio:.2}x, bulk build: {bulk_ratio:.2}x, \
         4-job build: {bulk_parallel:.2}x)"
    );

    let mut report = JsonValue::obj();
    report
        .push("schema", "miv-bench-hotpath-v1")
        .push("verify_reads_memoized_mbps", memo_mbps)
        .push("verify_reads_unmemoized_mbps", plain_mbps)
        .push("memoization_speedup", speedup)
        .push("md5_4lane_ratio", md5_ratio)
        .push("sha256_lane_ratio", sha256_ratio)
        .push("bulk_build_ratio", bulk_ratio)
        .push("bulk_build_parallel_speedup", bulk_parallel);
    if let Some(path) = json_out {
        let text = format!("{}\n", report.render_pretty());
        std::fs::write(&path, text).expect("write --json report");
        println!("wrote {path}");
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).expect("read --check baseline");
        let baseline = JsonValue::parse(&text).expect("parse baseline JSON");
        let base = |key: &str| {
            baseline
                .get(key)
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("baseline missing {key}"))
        };
        // Gate machine-independent ratios, not raw wall-clock numbers.
        let floor = 1.0 - tolerance_pct / 100.0;
        let mut ok = true;
        for (name, measured, committed) in [
            ("memoization_speedup", speedup, base("memoization_speedup")),
            ("md5_4lane_ratio", md5_ratio, base("md5_4lane_ratio")),
            ("sha256_lane_ratio", sha256_ratio, base("sha256_lane_ratio")),
            ("bulk_build_ratio", bulk_ratio, base("bulk_build_ratio")),
        ] {
            let verdict = if measured >= committed * floor {
                "ok"
            } else {
                ok = false;
                "REGRESSED"
            };
            println!(
                "gate {name}: measured {measured:.2} vs baseline {committed:.2} \
                 (floor {:.2}) — {verdict}",
                committed * floor
            );
        }
        if !ok {
            eprintln!("bench-gate: hot-path regression exceeds {tolerance_pct}% tolerance");
            return ExitCode::FAILURE;
        }
        println!("bench-gate: within {tolerance_pct}% of baseline");
    }
    ExitCode::SUCCESS
}
