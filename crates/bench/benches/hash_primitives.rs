//! Software throughput of the cryptographic primitives.
//!
//! The paper's hash unit digests one 64-byte block per 20 cycles
//! (3.2 GB/s) with a 160-cycle latency; these benchmarks measure what the
//! same operations cost this software implementation, and the relative
//! cost of the incremental XOR-MAC update versus a full chunk re-hash —
//! the trade the *ihash* scheme exploits.

use std::hint::black_box;

use miv_bench::Harness;
use miv_hash::digest::{ChunkHasher, Md5Hasher, Sha1Hasher, Sha256Hasher};
use miv_hash::narrow::XorMac120;
use miv_hash::xtea::{Prp128, Xtea};
use miv_hash::XorMac;

fn main() {
    let mut h = Harness::from_args();

    let chunk = [0xa5u8; 64];
    h.bench_bytes("digest_64B_chunk/md5", 64, || {
        Md5Hasher.digest(black_box(&chunk))
    });
    h.bench_bytes("digest_64B_chunk/sha1_128", 64, || {
        Sha1Hasher.digest(black_box(&chunk))
    });
    h.bench_bytes("digest_64B_chunk/sha256_128", 64, || {
        Sha256Hasher.digest(black_box(&chunk))
    });
    let big = [0x3cu8; 512];
    h.bench_bytes("digest_512B_chunk/md5", 512, || {
        Md5Hasher.digest(black_box(&big))
    });
    h.bench_bytes("digest_512B_chunk/sha256_128", 512, || {
        Sha256Hasher.digest(black_box(&big))
    });

    let xtea = Xtea::new([7u8; 16]);
    let prp = Prp128::new([7u8; 16]);
    h.bench("xtea_block", || xtea.encrypt_block(black_box([1u32, 2])));
    h.bench("prp128_encrypt", || prp.encrypt(black_box([9u8; 16])));

    let mac = XorMac::new([3u8; 16]);
    let mac120 = XorMac120::new([3u8; 16]);
    let blocks: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 64]).collect();
    let tag = mac.mac_blocks(blocks.iter().map(|b| (b.as_slice(), false)));
    let tag120 = mac120.mac_blocks(blocks.iter().map(|b| (b.as_slice(), false)));
    let new_block = vec![0xffu8; 64];

    // Full 4-block MAC from scratch vs a single-block incremental update:
    // the §5.4 asymmetry.
    h.bench("xormac_4x64B/mac_from_scratch", || {
        mac.mac_blocks(blocks.iter().map(|blk| (black_box(blk.as_slice()), false)))
    });
    h.bench("xormac_4x64B/incremental_update", || {
        mac.update(black_box(tag), 2, (&blocks[2], false), (&new_block, true))
    });
    h.bench("xormac_4x64B/narrow_mac_from_scratch", || {
        mac120.mac_blocks(blocks.iter().map(|blk| (black_box(blk.as_slice()), false)))
    });
    h.bench("xormac_4x64B/narrow_incremental_update", || {
        mac120.update(
            black_box(tag120),
            2,
            (&blocks[2], false),
            (&new_block, true),
        )
    });

    h.finish();
}
