//! Software throughput of the cryptographic primitives.
//!
//! The paper's hash unit digests one 64-byte block per 20 cycles
//! (3.2 GB/s) with a 160-cycle latency; these benchmarks measure what the
//! same operations cost this software implementation, and the relative
//! cost of the incremental XOR-MAC update versus a full chunk re-hash —
//! the trade the *ihash* scheme exploits.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use miv_hash::digest::{ChunkHasher, Md5Hasher, Sha1Hasher};
use miv_hash::narrow::XorMac120;
use miv_hash::xtea::{Prp128, Xtea};
use miv_hash::XorMac;

fn bench_digests(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest_64B_chunk");
    group.throughput(Throughput::Bytes(64));
    let chunk = [0xa5u8; 64];
    group.bench_function("md5", |b| {
        b.iter(|| Md5Hasher.digest(black_box(&chunk)));
    });
    group.bench_function("sha1_128", |b| {
        b.iter(|| Sha1Hasher.digest(black_box(&chunk)));
    });
    group.finish();

    let mut group = c.benchmark_group("digest_512B_chunk");
    group.throughput(Throughput::Bytes(512));
    let big = [0x3cu8; 512];
    group.bench_function("md5", |b| {
        b.iter(|| Md5Hasher.digest(black_box(&big)));
    });
    group.finish();
}

fn bench_ciphers(c: &mut Criterion) {
    let xtea = Xtea::new([7u8; 16]);
    let prp = Prp128::new([7u8; 16]);
    c.bench_function("xtea_block", |b| {
        b.iter(|| xtea.encrypt_block(black_box([1u32, 2])));
    });
    c.bench_function("prp128_encrypt", |b| {
        b.iter(|| prp.encrypt(black_box([9u8; 16])));
    });
}

fn bench_xormac(c: &mut Criterion) {
    let mac = XorMac::new([3u8; 16]);
    let mac120 = XorMac120::new([3u8; 16]);
    let blocks: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 64]).collect();
    let tag = mac.mac_blocks(blocks.iter().map(|b| (b.as_slice(), false)));
    let tag120 = mac120.mac_blocks(blocks.iter().map(|b| (b.as_slice(), false)));
    let new_block = vec![0xffu8; 64];

    // Full 4-block MAC from scratch vs a single-block incremental update:
    // the §5.4 asymmetry.
    let mut group = c.benchmark_group("xormac_4x64B");
    group.bench_function("mac_from_scratch", |b| {
        b.iter(|| mac.mac_blocks(blocks.iter().map(|blk| (black_box(blk.as_slice()), false))));
    });
    group.bench_function("incremental_update", |b| {
        b.iter(|| mac.update(black_box(tag), 2, (&blocks[2], false), (&new_block, true)));
    });
    group.bench_function("narrow_mac_from_scratch", |b| {
        b.iter(|| {
            mac120.mac_blocks(blocks.iter().map(|blk| (black_box(blk.as_slice()), false)))
        });
    });
    group.bench_function("narrow_incremental_update", |b| {
        b.iter(|| mac120.update(black_box(tag120), 2, (&blocks[2], false), (&new_block, true)));
    });
    group.finish();
}

criterion_group!(benches, bench_digests, bench_ciphers, bench_xormac);
criterion_main!(benches);
