//! Throughput of the functional `VerifiedMemory` engine.
//!
//! Measures what verified byte-moving costs in software: cached reads,
//! cold (verify-on-fetch) reads, writes with and without the §5.3
//! whole-block optimization, and flushes under the hash-tree vs the
//! incremental-MAC protections.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use miv_core::{MemoryBuilder, Protection, VerifiedMemory};

fn hash_mem() -> VerifiedMemory {
    MemoryBuilder::new().data_bytes(256 << 10).cache_blocks(1024).build()
}

fn mac_mem() -> VerifiedMemory {
    MemoryBuilder::new()
        .data_bytes(256 << 10)
        .chunk_bytes(128)
        .block_bytes(64)
        .protection(Protection::IncrementalMac)
        .cache_blocks(1024)
        .build()
}

fn bench_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("verified_reads");
    group.throughput(Throughput::Bytes(64));
    group.bench_function("cached_hit", |b| {
        let mut mem = hash_mem();
        mem.read_vec(0, 64).unwrap();
        b.iter(|| mem.read_vec(black_box(0), 64).unwrap());
    });
    group.bench_function("cold_verified", |b| {
        b.iter_batched(
            || {
                let mut mem = hash_mem();
                mem.clear_cache().unwrap();
                mem
            },
            |mut mem| mem.read_vec(black_box(4096), 64).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("verified_writes");
    group.throughput(Throughput::Bytes(64));
    let full = [7u8; 64];
    group.bench_function("whole_block_no_fetch", |b| {
        b.iter_batched(
            hash_mem,
            |mut mem| mem.write(black_box(8192), &full).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("partial_block_fetch_and_check", |b| {
        b.iter_batched(
            hash_mem,
            |mut mem| mem.write(black_box(8192 + 8), &full[..8]).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_flush(c: &mut Criterion) {
    let mut group = c.benchmark_group("flush_64_dirty_blocks");
    group.sample_size(20);
    let dirty = |mut mem: VerifiedMemory| {
        for i in 0..64u64 {
            mem.write(i * 4096, &[i as u8; 64]).unwrap();
        }
        mem
    };
    group.bench_function("hash_tree", |b| {
        b.iter_batched(
            || dirty(hash_mem()),
            |mut mem| mem.flush().unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("incremental_mac", |b| {
        b.iter_batched(
            || dirty(mac_mem()),
            |mut mem| mem.flush().unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_reads, bench_writes, bench_flush);
criterion_main!(benches);
