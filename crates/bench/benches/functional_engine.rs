//! Throughput of the functional `VerifiedMemory` engine.
//!
//! Measures what verified byte-moving costs in software: cached reads,
//! cold (verify-on-fetch) reads, writes with and without the §5.3
//! whole-block optimization, and flushes under the hash-tree vs the
//! incremental-MAC protections.

use std::hint::black_box;

use miv_bench::Harness;
use miv_core::{MemoryBuilder, Protection, VerifiedMemory};

fn hash_mem() -> VerifiedMemory {
    MemoryBuilder::new()
        .data_bytes(256 << 10)
        .cache_blocks(1024)
        .build()
}

fn mac_mem() -> VerifiedMemory {
    MemoryBuilder::new()
        .data_bytes(256 << 10)
        .chunk_bytes(128)
        .block_bytes(64)
        .protection(Protection::IncrementalMac)
        .cache_blocks(1024)
        .build()
}

fn dirty(mut mem: VerifiedMemory) -> VerifiedMemory {
    for i in 0..64u64 {
        mem.write(i * 4096, &[i as u8; 64]).unwrap();
    }
    mem
}

fn main() {
    let mut h = Harness::from_args();

    let mut mem = hash_mem();
    mem.read_vec(0, 64).unwrap();
    h.bench_bytes("verified_reads/cached_hit", 64, move || {
        mem.read_vec(black_box(0), 64).unwrap()
    });
    h.bench_with_setup(
        "verified_reads/cold_verified",
        || {
            let mut mem = hash_mem();
            mem.clear_cache().unwrap();
            mem
        },
        |mut mem| mem.read_vec(black_box(4096), 64).unwrap(),
    );

    let full = [7u8; 64];
    h.bench_with_setup(
        "verified_writes/whole_block_no_fetch",
        hash_mem,
        move |mut mem| mem.write(black_box(8192), &full).unwrap(),
    );
    h.bench_with_setup(
        "verified_writes/partial_block_fetch_and_check",
        hash_mem,
        move |mut mem| mem.write(black_box(8192 + 8), &full[..8]).unwrap(),
    );

    h.bench_with_setup(
        "flush_64_dirty_blocks/hash_tree",
        || dirty(hash_mem()),
        |mut mem| mem.flush().unwrap(),
    );
    h.bench_with_setup(
        "flush_64_dirty_blocks/incremental_mac",
        || dirty(mac_mem()),
        |mut mem| mem.flush().unwrap(),
    );

    h.finish();
}
