//! One Criterion benchmark per evaluation figure.
//!
//! Each bench runs a scaled-down version of the corresponding sweep from
//! `miv-sim::experiments` (the full-size rows are printed by
//! `cargo run -p miv-sim --release --bin figures -- all`). Criterion's
//! timing here measures the *simulator's* cost per figure; the asserted
//! relationships keep the figure shapes honest under `cargo bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use miv_bench::bench_run;
use miv_core::timing::Scheme;
use miv_hash::Throughput;
use miv_sim::{System, SystemConfig};
use miv_trace::Benchmark;

fn fig3_ipc(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_ipc");
    group.sample_size(10);
    for scheme in [Scheme::Base, Scheme::CHash, Scheme::Naive] {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| bench_run(scheme, 1 << 20, 64, Benchmark::Gzip).ipc)
        });
    }
    group.finish();
}

fn fig4_missrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_missrate");
    group.sample_size(10);
    for (label, kb) in [("l2_256K", 256u64), ("l2_4M", 4096)] {
        group.bench_function(label, |b| {
            b.iter(|| bench_run(Scheme::CHash, kb << 10, 64, Benchmark::Twolf).l2_data_miss_rate)
        });
    }
    group.finish();
}

fn fig5_bandwidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_bandwidth");
    group.sample_size(10);
    for scheme in [Scheme::CHash, Scheme::Naive] {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| bench_run(scheme, 1 << 20, 64, Benchmark::Swim).bus_bytes)
        });
    }
    group.finish();
}

fn fig6_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_throughput");
    group.sample_size(10);
    for gbps in [6.4, 0.8] {
        group.bench_function(format!("hash_{gbps}GBps"), |b| {
            b.iter_batched(
                || {
                    let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64)
                        .with_hash_throughput(Throughput::gbps(gbps));
                    System::for_benchmark(cfg, Benchmark::Swim, 42)
                },
                |mut sys| sys.run(miv_bench::BENCH_WARMUP, miv_bench::BENCH_MEASURE).ipc,
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn fig7_buffers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_buffers");
    group.sample_size(10);
    for entries in [2u32, 16] {
        group.bench_function(format!("{entries}_entries"), |b| {
            b.iter_batched(
                || {
                    let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64)
                        .with_buffer_entries(entries);
                    System::for_benchmark(cfg, Benchmark::Mcf, 42)
                },
                |mut sys| sys.run(miv_bench::BENCH_WARMUP, miv_bench::BENCH_MEASURE).ipc,
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn fig8_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_schemes");
    group.sample_size(10);
    for (label, scheme, line) in [
        ("c_64B", Scheme::CHash, 64u32),
        ("c_128B", Scheme::CHash, 128),
        ("m_64B", Scheme::MHash, 64),
        ("i_64B", Scheme::IHash, 64),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| bench_run(scheme, 1 << 20, line, Benchmark::Applu).ipc)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fig3_ipc,
    fig4_missrate,
    fig5_bandwidth,
    fig6_throughput,
    fig7_buffers,
    fig8_schemes
);
criterion_main!(benches);
