//! One benchmark per evaluation figure.
//!
//! Each bench runs a scaled-down version of the corresponding sweep from
//! `miv-sim::experiments` (the full-size rows are printed by
//! `cargo run -p miv-sim --release --bin figures -- all`). The timing
//! here measures the *simulator's* cost per figure.

use miv_bench::{bench_run, Harness, BENCH_MEASURE, BENCH_WARMUP};
use miv_core::timing::Scheme;
use miv_hash::Throughput;
use miv_sim::{System, SystemConfig};
use miv_trace::Benchmark;

fn main() {
    let mut h = Harness::from_args();

    for scheme in [Scheme::Base, Scheme::CHash, Scheme::Naive] {
        h.bench_with_setup(
            &format!("fig3_ipc/{}", scheme.label()),
            || (),
            move |()| bench_run(scheme, 1 << 20, 64, Benchmark::Gzip).ipc,
        );
    }

    for (label, kb) in [("l2_256K", 256u64), ("l2_4M", 4096)] {
        h.bench_with_setup(
            &format!("fig4_missrate/{label}"),
            || (),
            move |()| bench_run(Scheme::CHash, kb << 10, 64, Benchmark::Twolf).l2_data_miss_rate,
        );
    }

    for scheme in [Scheme::CHash, Scheme::Naive] {
        h.bench_with_setup(
            &format!("fig5_bandwidth/{}", scheme.label()),
            || (),
            move |()| bench_run(scheme, 1 << 20, 64, Benchmark::Swim).bus_bytes,
        );
    }

    for gbps in [6.4, 0.8] {
        h.bench_with_setup(
            &format!("fig6_throughput/hash_{gbps}GBps"),
            move || {
                let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64)
                    .with_hash_throughput(Throughput::gbps(gbps));
                System::for_benchmark(cfg, Benchmark::Swim, 42)
            },
            |mut sys| sys.run(BENCH_WARMUP, BENCH_MEASURE).ipc,
        );
    }

    for entries in [2u32, 16] {
        h.bench_with_setup(
            &format!("fig7_buffers/{entries}_entries"),
            move || {
                let cfg =
                    SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64).with_buffer_entries(entries);
                System::for_benchmark(cfg, Benchmark::Mcf, 42)
            },
            |mut sys| sys.run(BENCH_WARMUP, BENCH_MEASURE).ipc,
        );
    }

    for (label, scheme, line) in [
        ("c_64B", Scheme::CHash, 64u32),
        ("c_128B", Scheme::CHash, 128),
        ("m_64B", Scheme::MHash, 64),
        ("i_64B", Scheme::IHash, 64),
    ] {
        h.bench_with_setup(
            &format!("fig8_schemes/{label}"),
            || (),
            move |()| bench_run(scheme, 1 << 20, line, Benchmark::Applu).ipc,
        );
    }

    h.finish();
}
