//! Asserts the disabled-recorder contract: a default (disabled) handle
//! records nothing and performs **zero heap allocations** per operation,
//! so instrumentation can live permanently in simulator hot paths.
//!
//! Uses a counting `GlobalAlloc` wrapper; this file is an integration
//! test so the `unsafe` allocator shim stays outside the
//! `#![forbid(unsafe_code)]` library crates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Counted per thread: the libtest harness allocates concurrently (it
// runs each test on its own thread and buffers output), so a
// process-global counter would pick up harness noise between the
// before/after reads and fail spuriously. `Cell<u64>` has no
// destructor, so the const-initialized TLS slot is valid for the whole
// thread lifetime and the allocator never recurses through lazy init.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

#[test]
fn disabled_handles_allocate_nothing_and_record_nothing() {
    use miv_obs::{Counter, EventSink, Gauge, Histogram, SimEvent};

    let counter = Counter::disabled();
    let gauge = Gauge::disabled();
    let histogram = Histogram::default();
    let sink = EventSink::disabled();
    assert!(!counter.is_enabled());
    assert!(!sink.is_enabled());

    let before = allocations();
    for i in 0..100_000u64 {
        counter.inc();
        counter.add(3);
        gauge.set(i as f64);
        histogram.record(i & 0x3ff);
        sink.record(i, SimEvent::HashEnqueue { bytes: 64 });
        sink.record(
            i,
            SimEvent::WalkEnd {
                chunk: i,
                depth: 2,
                reached_root: false,
            },
        );
    }
    let after = allocations();

    assert_eq!(after - before, 0, "disabled recorder path allocated");
    assert_eq!(counter.get(), 0);
    assert_eq!(gauge.get(), 0.0);
    assert_eq!(histogram.snapshot().count, 0);
}

#[test]
fn disabled_span_tracer_allocates_nothing_and_records_nothing() {
    use miv_obs::{ProfileSnapshot, SpanTracer};

    let tracer = SpanTracer::disabled();
    assert!(!tracer.is_enabled());

    let before = allocations();
    for i in 0..100_000u64 {
        let _guard = tracer.span("hit");
        tracer.attribute(i & 0xff);
        tracer.attribute_path(&["background", "bus", "data_read"], i & 0xff);
    }
    let after = allocations();

    assert_eq!(after - before, 0, "disabled span path allocated");
    assert_eq!(tracer.snapshot(), ProfileSnapshot::default());
}

#[test]
fn disabled_cache_observer_adds_no_counters() {
    use miv_cache::{Cache, CacheConfig, LineKind};

    // A cache with the default (disabled) observer: its built-in stats
    // advance, but no registry counters exist to receive anything.
    let mut cache = Cache::new(CacheConfig::new(8 << 10, 4, 64));
    // Warm one line, then hammer the steady-state hit path and check it
    // does not allocate per access.
    cache.fill(0, LineKind::Data, false);
    cache.lookup(0, LineKind::Data, false);
    let before = allocations();
    for _ in 0..10_000 {
        std::hint::black_box(cache.lookup(0, LineKind::Data, false));
    }
    let after = allocations();
    assert_eq!(after - before, 0, "disabled-observer hit path allocated");
    assert!(cache.stats().data.read_hits >= 10_000);
}
