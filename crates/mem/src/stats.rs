//! Bus traffic accounting, decomposed by traffic class.

use std::fmt;

/// Who is using the memory bus.
///
/// The decomposition lets the harness report *normalized bandwidth usage*
/// (Figure 5b): how much of the bus the hash tree consumes on top of the
/// program's own traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Program data block fetched on an L2 miss.
    DataRead,
    /// Program data block written back from L2.
    DataWrite,
    /// Hash-tree chunk fetched for verification.
    HashRead,
    /// Hash-tree chunk (or updated MAC) written back.
    HashWrite,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::DataRead,
        TrafficClass::DataWrite,
        TrafficClass::HashRead,
        TrafficClass::HashWrite,
    ];

    /// Returns `true` for the two hash-tree classes.
    pub fn is_hash(&self) -> bool {
        matches!(self, TrafficClass::HashRead | TrafficClass::HashWrite)
    }

    /// Returns `true` for reads (fills).
    pub fn is_read(&self) -> bool {
        matches!(self, TrafficClass::DataRead | TrafficClass::HashRead)
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::DataRead => "data-read",
            TrafficClass::DataWrite => "data-write",
            TrafficClass::HashRead => "hash-read",
            TrafficClass::HashWrite => "hash-write",
        };
        f.write_str(s)
    }
}

/// Accumulated bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Transactions per class (indexed per [`TrafficClass::ALL`]).
    pub transactions: [u64; 4],
    /// Bytes transferred per class.
    pub bytes: [u64; 4],
    /// Core cycles the data bus was occupied.
    pub busy_cycles: u64,
    /// Core cycles transactions spent waiting for the data bus.
    pub wait_cycles: u64,
}

impl BusStats {
    fn idx(class: TrafficClass) -> usize {
        TrafficClass::ALL
            .iter()
            .position(|c| *c == class)
            .expect("class present in ALL")
    }

    pub(crate) fn record(&mut self, class: TrafficClass, bytes: u64, busy: u64, wait: u64) {
        let i = Self::idx(class);
        self.transactions[i] += 1;
        self.bytes[i] += bytes;
        self.busy_cycles += busy;
        self.wait_cycles += wait;
    }

    /// Bytes transferred for a class.
    pub fn bytes_for(&self, class: TrafficClass) -> u64 {
        self.bytes[Self::idx(class)]
    }

    /// Transactions for a class.
    pub fn transactions_for(&self, class: TrafficClass) -> u64 {
        self.transactions[Self::idx(class)]
    }

    /// Total bytes over all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes moved for the hash tree (read + write).
    pub fn hash_bytes(&self) -> u64 {
        self.bytes_for(TrafficClass::HashRead) + self.bytes_for(TrafficClass::HashWrite)
    }

    /// Bytes moved for program data (read + write).
    pub fn data_bytes(&self) -> u64 {
        self.bytes_for(TrafficClass::DataRead) + self.bytes_for(TrafficClass::DataWrite)
    }

    /// Accumulates `other` into `self`, component-wise.
    pub fn merge(&mut self, other: &BusStats) {
        for i in 0..4 {
            self.transactions[i] += other.transactions[i];
            self.bytes[i] += other.bytes[i];
        }
        self.busy_cycles += other.busy_cycles;
        self.wait_cycles += other.wait_cycles;
    }

    /// The component-wise difference `self - earlier`, for interval
    /// sampling over cumulative counters.
    pub fn delta(&self, earlier: &BusStats) -> BusStats {
        let mut d = BusStats::default();
        for i in 0..4 {
            d.transactions[i] = self.transactions[i] - earlier.transactions[i];
            d.bytes[i] = self.bytes[i] - earlier.bytes[i];
        }
        d.busy_cycles = self.busy_cycles - earlier.busy_cycles;
        d.wait_cycles = self.wait_cycles - earlier.wait_cycles;
        d
    }

    /// Fraction of `elapsed` cycles the data bus was busy.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / elapsed as f64
        }
    }
}

use crate::Cycle;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_helpers() {
        assert!(TrafficClass::HashRead.is_hash());
        assert!(!TrafficClass::DataWrite.is_hash());
        assert!(TrafficClass::DataRead.is_read());
        assert!(!TrafficClass::HashWrite.is_read());
        assert_eq!(TrafficClass::ALL.len(), 4);
        assert_eq!(TrafficClass::HashWrite.to_string(), "hash-write");
    }

    #[test]
    fn record_and_query() {
        let mut s = BusStats::default();
        s.record(TrafficClass::DataRead, 64, 40, 0);
        s.record(TrafficClass::HashRead, 64, 40, 12);
        s.record(TrafficClass::HashWrite, 64, 40, 3);
        assert_eq!(s.bytes_for(TrafficClass::DataRead), 64);
        assert_eq!(s.hash_bytes(), 128);
        assert_eq!(s.data_bytes(), 64);
        assert_eq!(s.total_bytes(), 192);
        assert_eq!(s.transactions_for(TrafficClass::HashRead), 1);
        assert_eq!(s.busy_cycles, 120);
        assert_eq!(s.wait_cycles, 15);
        assert!((s.utilization(240) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(0), 0.0);
    }
}
