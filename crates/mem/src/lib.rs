//! Main-memory timing models: DRAM latency plus the shared memory bus.
//!
//! The paper's machine (Table 1) has a 200 MHz, 8-byte-wide memory bus —
//! **1.6 GB/s** of data bandwidth at the 1 GHz core clock — shared by
//! *everything* that touches main memory: L2 fills, L2 write-backs, and
//! all hash-tree traffic. DRAM returns the first chunk of a block after
//! **80 cycles**. Separate address and data buses are modelled, matching
//! the paper's note that its SimpleScalar port "implemented separate
//! address and data buses".
//!
//! The bandwidth-sharing behaviour is what produces the paper's
//! *bandwidth pollution* results (Figure 5) and the naive scheme's up-to-10×
//! slowdowns: every L2 miss in the naive scheme drags `log_m N` extra
//! blocks over this same bus.
//!
//! # Examples
//!
//! ```
//! use miv_mem::{MemoryBus, MemoryBusConfig, TrafficClass};
//!
//! let mut bus = MemoryBus::new(MemoryBusConfig::default());
//! // An unloaded 64-byte read: 80-cycle DRAM + 40-cycle transfer.
//! let done = bus.read(0, 64, TrafficClass::DataRead);
//! assert_eq!(done.complete, 120);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod observe;
pub mod schedule;
mod stats;

pub use bus::{BusTiming, MemoryBus, MemoryBusConfig};
pub use observe::BusObserver;
pub use schedule::IntervalSchedule;
pub use stats::{BusStats, TrafficClass};

/// A simulation timestamp in core clock cycles.
pub type Cycle = u64;
