//! Telemetry hooks: bus occupancy counters and an arbitration-wait
//! histogram recorded into a `miv-obs` [`Registry`].
//!
//! Like the cache observer, the bundle holds pre-registered handles so
//! the bus hot path never performs a name lookup, and a
//! default-constructed observer is disabled (one branch per recording).

use miv_obs::{Counter, Histogram, Registry};

use crate::stats::TrafficClass;

/// Bus telemetry handles. Attach with
/// [`MemoryBus::set_observer`](crate::MemoryBus::set_observer).
#[derive(Debug, Clone, Default)]
pub struct BusObserver {
    /// Transactions granted, indexed by [`TrafficClass`].
    transactions: [Counter; 4],
    /// Bytes transferred, indexed by [`TrafficClass`].
    bytes: [Counter; 4],
    /// Cycles the data bus spent transferring (occupancy numerator).
    pub busy_cycles: Counter,
    /// Per-transaction arbitration wait (cycles queued behind other
    /// traffic before the transfer started).
    pub wait: Histogram,
}

impl BusObserver {
    /// A no-op observer (the default).
    pub fn disabled() -> Self {
        BusObserver::default()
    }

    /// Registers metrics named `{prefix}.{class}.{transactions|bytes}`,
    /// `{prefix}.busy_cycles`, and a `{prefix}.wait_cycles` histogram
    /// (e.g. `bus.hash-read.bytes`) and returns the live handles.
    pub fn for_registry(registry: &Registry, prefix: &str) -> Self {
        let mut transactions: [Counter; 4] = Default::default();
        let mut bytes: [Counter; 4] = Default::default();
        for class in TrafficClass::ALL {
            transactions[class as usize] =
                registry.counter(&format!("{prefix}.{class}.transactions"));
            bytes[class as usize] = registry.counter(&format!("{prefix}.{class}.bytes"));
        }
        BusObserver {
            transactions,
            bytes,
            busy_cycles: registry.counter(&format!("{prefix}.busy_cycles")),
            wait: registry.histogram(&format!("{prefix}.wait_cycles")),
        }
    }

    /// Records one granted transaction.
    #[inline]
    pub fn record(&self, class: TrafficClass, bytes: u64, busy: u64, wait: u64) {
        self.transactions[class as usize].inc();
        self.bytes[class as usize].add(bytes);
        self.busy_cycles.add(busy);
        self.wait.record(wait);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_under_prefix() {
        let reg = Registry::new();
        let obs = BusObserver::for_registry(&reg, "bus");
        obs.record(TrafficClass::HashRead, 64, 40, 3);
        obs.record(TrafficClass::DataWrite, 32, 20, 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["bus.hash-read.transactions"], 1);
        assert_eq!(snap.counters["bus.hash-read.bytes"], 64);
        assert_eq!(snap.counters["bus.data-write.bytes"], 32);
        assert_eq!(snap.counters["bus.busy_cycles"], 60);
        assert_eq!(snap.histograms["bus.wait_cycles"].count, 2);
    }

    #[test]
    fn default_is_disabled() {
        let obs = BusObserver::default();
        obs.record(TrafficClass::DataRead, 64, 40, 0);
        assert!(!obs.busy_cycles.is_enabled());
        assert_eq!(obs.busy_cycles.get(), 0);
    }
}
