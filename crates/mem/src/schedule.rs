//! Gap-filling interval scheduling for shared timing resources.
//!
//! The simulator books resources (bus, hash unit) at the moment a request
//! is *issued*, but issue order is not arrival order: a verification chain
//! triggered by one miss books transactions far in the future, and the
//! next demand miss — issued later in simulation order but *earlier in
//! simulated time* — must not queue behind them. [`IntervalSchedule`]
//! therefore keeps the set of busy intervals and places each new
//! occupancy in the earliest gap at or after its ready time, exactly as a
//! real arbiter granting an idle bus would.

use std::collections::BTreeMap;

/// A timeline of non-overlapping busy intervals with earliest-gap
/// placement.
///
/// # Examples
///
/// ```
/// use miv_mem::schedule::IntervalSchedule;
///
/// let mut s = IntervalSchedule::new();
/// assert_eq!(s.book(100, 40), 100); // empty: starts at ready time
/// assert_eq!(s.book(100, 40), 140); // queues behind the first
/// // A 20-cycle request ready at 0 back-fills the idle prefix:
/// assert_eq!(s.book(0, 20), 0);
/// ```
#[derive(Debug, Clone)]
pub struct IntervalSchedule {
    /// start → end of each busy interval (non-overlapping).
    busy: BTreeMap<u64, u64>,
    /// Low-water mark: intervals ending before this can be pruned.
    low_water: u64,
    /// Adaptive prune trigger: doubled whenever pruning cannot shrink the
    /// map (avoids O(n) retain on every insert during booking bursts).
    prune_at: usize,
    /// Total cycles of intervals dropped by pruning (all of which ended
    /// before the low-water mark), so [`busy_through`](Self::busy_through)
    /// stays exact across pruning.
    pruned_cycles: u64,
}

impl Default for IntervalSchedule {
    fn default() -> Self {
        Self::new()
    }
}

impl IntervalSchedule {
    /// Creates an empty (fully idle) schedule.
    pub fn new() -> Self {
        IntervalSchedule {
            busy: BTreeMap::new(),
            low_water: 0,
            prune_at: 4096,
            pruned_cycles: 0,
        }
    }

    /// Books `duration` cycles at the earliest gap starting at or after
    /// `ready`; returns the start time.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn book(&mut self, ready: u64, duration: u64) -> u64 {
        assert!(duration > 0, "zero-length booking");
        let mut t = ready;
        // Start from the interval that could overlap `t`: the last one
        // beginning at or before it.
        if let Some((_, &end)) = self.busy.range(..=t).next_back() {
            if end > t {
                t = end;
            }
        }
        // Walk forward through later intervals until a gap fits.
        for (&start, &end) in self.busy.range(t..) {
            if t + duration <= start {
                break;
            }
            t = t.max(end);
        }
        // Insert [t, t+duration), coalescing with touching neighbours so a
        // densely packed region stays a single interval — this keeps the
        // gap walk O(number of gaps) instead of O(number of bookings),
        // which matters when write-back avalanches book thousands of
        // transfers around the same timestamp.
        let mut start = t;
        let mut end = t + duration;
        if let Some((&ps, &pe)) = self.busy.range(..=start).next_back() {
            if pe == start {
                self.busy.remove(&ps);
                start = ps;
            }
        }
        if let Some((&ns, &ne)) = self.busy.range(end..).next() {
            if ns == end {
                self.busy.remove(&ns);
                end = ne;
            }
        }
        self.busy.insert(start, end);
        if self.busy.len() > self.prune_at {
            self.prune();
            // If nothing was prunable, back off so bursts of future
            // bookings do not pay an O(n) retain per insert.
            self.prune_at = (self.busy.len() * 2).max(4096);
        }
        t
    }

    /// Raises the low-water mark: no future `book` will use a `ready`
    /// time below `time`, so older intervals become prunable.
    pub fn advance_low_water(&mut self, time: u64) {
        self.low_water = self.low_water.max(time);
    }

    /// Total booked cycles currently retained (for tests).
    pub fn retained(&self) -> usize {
        self.busy.len()
    }

    /// Busy cycles that have *elapsed* by time `t`: each booked interval
    /// contributes its overlap with `[0, t)`. Unlike summing bookings at
    /// issue time, this attributes an interval straddling `t` only up to
    /// `t`, so the delta between two queries never exceeds the wall-clock
    /// cycles between them — exact utilization, no clamping.
    ///
    /// Exact for any `t` at or above the low-water mark when pruning last
    /// ran (pruned intervals, counted in full, all ended before it).
    pub fn busy_through(&self, t: u64) -> u64 {
        self.pruned_cycles
            + self
                .busy
                .range(..t)
                .map(|(&start, &end)| end.min(t) - start)
                .sum::<u64>()
    }

    /// Clears everything (statistics-style reset).
    pub fn reset(&mut self) {
        self.busy.clear();
        self.low_water = 0;
        self.prune_at = 4096;
        self.pruned_cycles = 0;
    }

    fn prune(&mut self) {
        let keep = self.low_water;
        let mut freed = 0u64;
        self.busy.retain(|&start, end| {
            if *end >= keep {
                true
            } else {
                freed += *end - start;
                false
            }
        });
        self.pruned_cycles += freed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_starts_at_ready() {
        let mut s = IntervalSchedule::new();
        assert_eq!(s.book(0, 10), 0);
        assert_eq!(s.book(100, 10), 100);
    }

    #[test]
    fn fifo_when_contended() {
        let mut s = IntervalSchedule::new();
        assert_eq!(s.book(0, 40), 0);
        assert_eq!(s.book(0, 40), 40);
        assert_eq!(s.book(0, 40), 80);
    }

    #[test]
    fn backfills_gaps() {
        let mut s = IntervalSchedule::new();
        assert_eq!(s.book(1000, 40), 1000); // future booking
        assert_eq!(s.book(0, 40), 0, "idle prefix must be usable");
        assert_eq!(s.book(0, 40), 40);
        // Gap between 80 and 1000 fits more:
        assert_eq!(s.book(50, 40), 80);
        // A booking too large for the 120..1000 gap? 880 fits; 881 doesn't.
        assert_eq!(s.book(120, 880), 120);
        assert_eq!(s.book(120, 10), 1040, "everything earlier is now full");
    }

    #[test]
    fn exact_fit_gap() {
        let mut s = IntervalSchedule::new();
        s.book(0, 10); // 0..10
        s.book(20, 10); // 20..30
        assert_eq!(s.book(0, 10), 10, "exact 10..20 gap");
        assert_eq!(s.book(0, 10), 30);
    }

    #[test]
    fn ready_inside_busy_interval() {
        let mut s = IntervalSchedule::new();
        s.book(0, 100); // 0..100
        assert_eq!(s.book(50, 10), 100);
    }

    #[test]
    fn pruning_keeps_behaviour() {
        let mut s = IntervalSchedule::new();
        for i in 0..10_000u64 {
            let start = s.book(i * 50, 40);
            assert!(start >= i * 50);
            s.advance_low_water(i * 50);
        }
        assert!(s.retained() <= 4200, "pruned: {}", s.retained());
    }

    #[test]
    fn busy_through_is_exact_across_pruning() {
        let mut pruned = IntervalSchedule::new();
        let mut unpruned = IntervalSchedule::new();
        for i in 0..10_000u64 {
            // Alternate gaps so intervals cannot all coalesce away.
            let ready = i * 100 + (i % 2) * 7;
            pruned.book(ready, 40);
            unpruned.book(ready, 40);
            pruned.advance_low_water(i * 100);
        }
        assert!(pruned.retained() < unpruned.retained());
        // Exact at or above the low-water mark (the monotone query
        // pattern utilization sampling uses).
        for t in [999_900u64, 999_983, 1_000_200, 2_000_000] {
            assert_eq!(pruned.busy_through(t), unpruned.busy_through(t), "t={t}");
        }
        // Monotone and bounded by elapsed time.
        assert!(unpruned.busy_through(1000) <= 1000);
        assert!(pruned.busy_through(2_000_000) >= pruned.busy_through(999_900));
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_duration_rejected() {
        let mut s = IntervalSchedule::new();
        s.book(0, 0);
    }
}
