//! The shared memory bus + DRAM timing resource.

use crate::observe::BusObserver;
use crate::schedule::IntervalSchedule;
use crate::stats::{BusStats, TrafficClass};
use crate::Cycle;

/// Memory system timing parameters (Table 1 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBusConfig {
    /// Core cycles per bus beat (1 GHz core / 200 MHz bus = 5).
    pub cycles_per_beat: u64,
    /// Data bus width in bytes per beat (8).
    pub beat_bytes: u64,
    /// DRAM access latency to the first chunk, in core cycles (80).
    pub dram_latency: u64,
}

impl Default for MemoryBusConfig {
    fn default() -> Self {
        MemoryBusConfig {
            cycles_per_beat: 5,
            beat_bytes: 8,
            dram_latency: 80,
        }
    }
}

impl MemoryBusConfig {
    /// Core cycles the data bus is occupied transferring `bytes`.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.beat_bytes).max(1) * self.cycles_per_beat
    }

    /// Peak data bandwidth in GB/s at a 1 GHz core clock.
    pub fn peak_gbps(&self) -> f64 {
        self.beat_bytes as f64 / self.cycles_per_beat as f64
    }
}

/// Timing of one completed bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTiming {
    /// Cycle the transaction was granted the data bus.
    pub start: Cycle,
    /// Cycle the first data beat is available to the requester (reads).
    pub first_data: Cycle,
    /// Cycle the full transfer completed.
    pub complete: Cycle,
}

/// The shared DRAM + data-bus resource.
///
/// Transactions occupy the data bus for their transfer duration; the
/// DRAM access latency of a read overlaps with other transactions'
/// transfers (banked DRAM), so sustained throughput is limited only by
/// the bus: 1.6 GB/s with the default configuration.
///
/// The arbiter grants each transaction the **earliest idle bus window at
/// or after its ready time** ([`IntervalSchedule`]): the simulator books
/// background verification traffic for future timestamps, and a demand
/// read issued later in simulation order but earlier in simulated time
/// must still be able to use the idle bus in between.
///
/// # Examples
///
/// ```
/// use miv_mem::{MemoryBus, MemoryBusConfig, TrafficClass};
///
/// let mut bus = MemoryBus::new(MemoryBusConfig::default());
/// let a = bus.read(0, 64, TrafficClass::DataRead);
/// let b = bus.read(0, 64, TrafficClass::HashRead);
/// // The second read waits for the first one's 40-cycle transfer slot.
/// assert_eq!(a.complete, 120);
/// assert_eq!(b.complete, 160);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBus {
    config: MemoryBusConfig,
    schedule: IntervalSchedule,
    stats: BusStats,
    obs: BusObserver,
}

impl MemoryBus {
    /// Creates an idle memory system.
    pub fn new(config: MemoryBusConfig) -> Self {
        MemoryBus {
            config,
            schedule: IntervalSchedule::new(),
            stats: BusStats::default(),
            obs: BusObserver::disabled(),
        }
    }

    /// Attaches telemetry handles; pass [`BusObserver::disabled`] to
    /// detach.
    pub fn set_observer(&mut self, obs: BusObserver) {
        self.obs = obs;
    }

    /// The configuration.
    pub fn config(&self) -> &MemoryBusConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Clears statistics and the bus pipeline (e.g. after warm-up).
    pub fn reset(&mut self) {
        self.schedule.reset();
        self.stats = BusStats::default();
    }

    /// Clears statistics only, preserving booked bus intervals — so
    /// transactions issued after the reset still contend with in-flight
    /// traffic exactly as in an uninterrupted run.
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }

    /// Bus-busy cycles that have *elapsed* by cycle `t` (a transfer
    /// straddling `t` counts only up to `t`), for interval-exact
    /// utilization attribution. See [`IntervalSchedule::busy_through`].
    pub fn busy_cycles_through(&self, t: Cycle) -> u64 {
        self.schedule.busy_through(t)
    }

    /// Informs the arbiter that no future request will be ready before
    /// `time`, allowing old busy intervals to be discarded.
    pub fn advance_low_water(&mut self, time: Cycle) {
        self.schedule.advance_low_water(time);
    }

    /// Issues a read of `bytes` at cycle `now`; returns its timing.
    ///
    /// The DRAM latency elapses before the transfer starts, but overlaps
    /// with other transactions on the bus (the bank is busy, the bus is
    /// not), so the bus window is sought after the latency.
    pub fn read(&mut self, now: Cycle, bytes: u64, class: TrafficClass) -> BusTiming {
        let ready = now + self.config.dram_latency;
        self.grant(ready, bytes, class)
    }

    /// Issues a (posted) write of `bytes` at cycle `now`.
    ///
    /// Writes occupy the data bus immediately — the DRAM write latency is
    /// hidden behind the posted-write buffer.
    pub fn write(&mut self, now: Cycle, bytes: u64, class: TrafficClass) -> BusTiming {
        self.grant(now, bytes, class)
    }

    fn grant(&mut self, ready: Cycle, bytes: u64, class: TrafficClass) -> BusTiming {
        let transfer = self.config.transfer_cycles(bytes);
        let start = self.schedule.book(ready, transfer);
        self.stats.record(class, bytes, transfer, start - ready);
        self.obs.record(class, bytes, transfer, start - ready);
        BusTiming {
            start,
            first_data: start + self.config.cycles_per_beat,
            complete: start + transfer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let cfg = MemoryBusConfig::default();
        assert_eq!(cfg.transfer_cycles(64), 40);
        assert_eq!(cfg.transfer_cycles(128), 80);
        assert_eq!(cfg.transfer_cycles(1), 5);
        assert!((cfg.peak_gbps() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn unloaded_read_latency() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        let t = bus.read(100, 64, TrafficClass::DataRead);
        assert_eq!(t.start, 180);
        assert_eq!(t.first_data, 185);
        assert_eq!(t.complete, 220);
    }

    #[test]
    fn writes_skip_dram_latency() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        let t = bus.write(100, 64, TrafficClass::DataWrite);
        assert_eq!(t.start, 100);
        assert_eq!(t.complete, 140);
    }

    #[test]
    fn bus_serializes_contending_transfers() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        let a = bus.read(0, 64, TrafficClass::DataRead);
        let b = bus.read(0, 64, TrafficClass::HashRead);
        assert_eq!(a.complete, 120);
        // b's DRAM latency (ready at 80) overlaps a's transfer (80..120);
        // b transfers 120..160.
        assert_eq!(b.start, 120);
        assert_eq!(b.complete, 160);
        // A write ready at cycle 0 back-fills the idle window before a's
        // transfer begins.
        let c = bus.write(0, 64, TrafficClass::DataWrite);
        assert_eq!(c.start, 0);
        assert_eq!(c.complete, 40);
        assert_eq!(bus.stats().wait_cycles, 40);
    }

    #[test]
    fn demand_read_is_not_blocked_by_future_background_booking() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        // A background hash read booked for the far future...
        let bg = bus.read(10_000, 64, TrafficClass::HashRead);
        assert_eq!(bg.start, 10_080);
        // ...must not delay a demand read that is ready now.
        let demand = bus.read(0, 64, TrafficClass::DataRead);
        assert_eq!(demand.start, 80);
        assert_eq!(bus.stats().wait_cycles, 0);
    }

    #[test]
    fn sustained_bandwidth_is_bus_limited() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        let n = 100u64;
        let mut last = 0;
        for _ in 0..n {
            last = bus.read(0, 64, TrafficClass::DataRead).complete;
        }
        // 100 back-to-back 64-B reads: first data at 120, then one block
        // every 40 cycles.
        assert_eq!(last, 80 + n * 40);
        let gbps = (n * 64) as f64 / last as f64;
        assert!(gbps > 1.5 && gbps <= 1.6, "sustained {gbps} GB/s");
    }

    #[test]
    fn idle_gaps_are_not_carried() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        bus.read(0, 64, TrafficClass::DataRead);
        // A request long after the bus drained sees unloaded latency again.
        let t = bus.read(10_000, 64, TrafficClass::DataRead);
        assert_eq!(t.complete, 10_120);
    }

    #[test]
    fn stats_track_classes() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        bus.read(0, 64, TrafficClass::DataRead);
        bus.read(0, 64, TrafficClass::HashRead);
        bus.write(500, 64, TrafficClass::HashWrite);
        assert_eq!(bus.stats().data_bytes(), 64);
        assert_eq!(bus.stats().hash_bytes(), 128);
        assert_eq!(bus.stats().busy_cycles, 120);
        bus.reset();
        assert_eq!(bus.stats().total_bytes(), 0);
    }

    #[test]
    fn busy_through_splits_straddling_transfers() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        bus.write(100, 64, TrafficClass::DataWrite); // busy 100..140
        assert_eq!(bus.busy_cycles_through(100), 0);
        assert_eq!(bus.busy_cycles_through(120), 20);
        assert_eq!(bus.busy_cycles_through(140), 40);
        assert_eq!(bus.busy_cycles_through(10_000), 40);
        // Interval deltas sum to the whole without double counting.
        let total = bus.busy_cycles_through(10_000);
        let split = bus.busy_cycles_through(120) + (total - bus.busy_cycles_through(120));
        assert_eq!(split, total);
    }

    #[test]
    fn saturated_bus_reports_exactly_one_utilization() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        // 100 back-to-back reads keep the bus busy without a gap from the
        // first transfer's start (cycle 80) to the last completion.
        for _ in 0..100 {
            bus.read(0, 64, TrafficClass::DataRead);
        }
        let (start, end) = (80u64, 80 + 100 * 40);
        let busy = bus.busy_cycles_through(end) - bus.busy_cycles_through(start);
        let util = busy as f64 / (end - start) as f64;
        assert_eq!(util, 1.0, "saturation must be exactly 1.0, unclamped");
        // And never above 1.0, even for windows cutting through transfers.
        for t in (start..end).step_by(7) {
            let w = bus.busy_cycles_through(t + 13) - bus.busy_cycles_through(t);
            assert!(w <= 13, "window busy {w} exceeds its 13-cycle span");
        }
    }

    #[test]
    fn reset_stats_preserves_bus_occupancy() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        let mut uninterrupted = MemoryBus::new(MemoryBusConfig::default());
        bus.read(0, 64, TrafficClass::DataRead);
        uninterrupted.read(0, 64, TrafficClass::DataRead);
        bus.reset_stats();
        assert_eq!(bus.stats().total_bytes(), 0);
        // The next transfer still queues behind the in-flight one.
        let a = bus.read(0, 64, TrafficClass::DataRead);
        let b = uninterrupted.read(0, 64, TrafficClass::DataRead);
        assert_eq!(a, b);
    }

    #[test]
    fn low_water_pruning_preserves_ordering() {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        let mut prev_complete = 0;
        for i in 0..20_000u64 {
            bus.advance_low_water(i * 10);
            let t = bus.read(i * 10, 64, TrafficClass::DataRead);
            assert!(t.complete > prev_complete || t.start >= i * 10 + 80);
            prev_complete = t.complete;
        }
    }
}
