//! Randomized property tests for the gap-filling interval scheduler and
//! the bus, driven by the workspace's deterministic PRNG
//! (`miv_obs::rng`).

use miv_mem::{BusStats, IntervalSchedule, MemoryBus, MemoryBusConfig, TrafficClass};
use miv_obs::rng::Rng;

/// Reference model: a plain sorted list of busy intervals with the same
/// earliest-gap placement, no coalescing, no pruning.
#[derive(Default)]
struct RefSchedule {
    busy: Vec<(u64, u64)>, // sorted by start, non-overlapping
}

impl RefSchedule {
    fn book(&mut self, ready: u64, duration: u64) -> u64 {
        let mut t = ready;
        for &(s, e) in &self.busy {
            if e <= t {
                continue;
            }
            if t + duration <= s {
                break;
            }
            t = t.max(e);
        }
        let pos = self.busy.partition_point(|&(s, _)| s < t);
        self.busy.insert(pos, (t, t + duration));
        t
    }
}

/// The production scheduler places every booking exactly where the
/// straightforward reference model does.
#[test]
fn matches_reference() {
    let mut rng = Rng::seed_from_u64(0x5c4e);
    for _case in 0..64 {
        let mut sut = IntervalSchedule::new();
        let mut reference = RefSchedule::default();
        let n = rng.gen_range_usize(1, 200);
        for _ in 0..n {
            let ready = rng.gen_range_u64(0, 2000);
            let dur = rng.gen_range_u64(1, 100);
            assert_eq!(sut.book(ready, dur), reference.book(ready, dur));
        }
    }
}

/// Bookings never overlap: replaying the grant times against their
/// durations yields pairwise-disjoint intervals.
#[test]
fn grants_never_overlap() {
    let mut rng = Rng::seed_from_u64(0x9a41);
    for _case in 0..32 {
        let mut sut = IntervalSchedule::new();
        let mut placed: Vec<(u64, u64)> = Vec::new();
        let n = rng.gen_range_usize(1, 300);
        for _ in 0..n {
            let ready = rng.gen_range_u64(0, 5000);
            let dur = rng.gen_range_u64(1, 200);
            let start = sut.book(ready, dur);
            assert!(start >= ready);
            for &(s, e) in &placed {
                assert!(
                    start >= e || start + dur <= s,
                    "overlap: [{start},{}) vs [{s},{e})",
                    start + dur
                );
            }
            placed.push((start, start + dur));
        }
    }
}

/// Bus reads never start their transfer before the DRAM latency has
/// elapsed, and total busy time equals the sum of transfer times.
#[test]
fn bus_conservation() {
    let mut rng = Rng::seed_from_u64(0xb05c);
    for _case in 0..64 {
        let cfg = MemoryBusConfig::default();
        let mut bus = MemoryBus::new(cfg);
        let mut expected_busy = 0;
        let n = rng.gen_range_usize(1, 200);
        for _ in 0..n {
            let now = rng.gen_range_u64(0, 10_000);
            let is_read = rng.gen_bool(0.5);
            let t = if is_read {
                bus.read(now, 64, TrafficClass::DataRead)
            } else {
                bus.write(now, 64, TrafficClass::DataWrite)
            };
            let min_start = if is_read { now + cfg.dram_latency } else { now };
            assert!(t.start >= min_start);
            assert_eq!(t.complete - t.start, cfg.transfer_cycles(64));
            expected_busy += cfg.transfer_cycles(64);
        }
        assert_eq!(bus.stats().busy_cycles, expected_busy);
        assert_eq!(bus.stats().total_bytes(), n as u64 * 64);
    }
}

/// Low-water pruning never changes grant times for monotone request
/// streams (the simulator's actual usage pattern).
#[test]
fn pruning_is_transparent_for_monotone_streams() {
    let mut rng = Rng::seed_from_u64(0x10b4);
    for _case in 0..32 {
        let mut pruned = IntervalSchedule::new();
        let mut unpruned = IntervalSchedule::new();
        let mut now = 0;
        let n = rng.gen_range_usize(1, 400);
        for _ in 0..n {
            now += rng.gen_range_u64(0, 120);
            pruned.advance_low_water(now);
            assert_eq!(pruned.book(now, 40), unpruned.book(now, 40));
        }
    }
}

/// `BusStats::merge` accumulates and `delta` inverts it, so
/// interval-sampled segments sum back to the whole run.
#[test]
fn bus_stats_segments_sum_to_whole() {
    let mut rng = Rng::seed_from_u64(0x5e65);
    for _case in 0..32 {
        let mut bus = MemoryBus::new(MemoryBusConfig::default());
        let n = rng.gen_range_usize(4, 100);
        let cut = rng.gen_range_usize(1, n);
        let mut merged = BusStats::default();
        let mut before_cut = BusStats::default();
        let mut now = 0;
        for i in 0..n {
            if i == cut {
                before_cut = *bus.stats();
                merged.merge(&before_cut);
            }
            now += rng.gen_range_u64(0, 200);
            let class = TrafficClass::ALL[rng.gen_range_usize(0, 4)];
            let bytes = 64 * rng.gen_range_u64(1, 3);
            if class.is_read() {
                bus.read(now, bytes, class);
            } else {
                bus.write(now, bytes, class);
            }
        }
        let whole = *bus.stats();
        merged.merge(&whole.delta(&before_cut));
        assert_eq!(merged, whole);
    }
}
