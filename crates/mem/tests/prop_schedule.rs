//! Property tests for the gap-filling interval scheduler and the bus.

use miv_mem::{IntervalSchedule, MemoryBus, MemoryBusConfig, TrafficClass};
use proptest::prelude::*;

/// Reference model: a plain sorted list of busy intervals with the same
/// earliest-gap placement, no coalescing, no pruning.
#[derive(Default)]
struct RefSchedule {
    busy: Vec<(u64, u64)>, // sorted by start, non-overlapping
}

impl RefSchedule {
    fn book(&mut self, ready: u64, duration: u64) -> u64 {
        let mut t = ready;
        for &(s, e) in &self.busy {
            if e <= t {
                continue;
            }
            if t + duration <= s {
                break;
            }
            t = t.max(e);
        }
        let pos = self.busy.partition_point(|&(s, _)| s < t);
        self.busy.insert(pos, (t, t + duration));
        t
    }
}

proptest! {
    /// The production scheduler places every booking exactly where the
    /// straightforward reference model does.
    #[test]
    fn matches_reference(reqs in proptest::collection::vec((0u64..2000, 1u64..100), 1..200)) {
        let mut sut = IntervalSchedule::new();
        let mut reference = RefSchedule::default();
        for &(ready, dur) in &reqs {
            prop_assert_eq!(sut.book(ready, dur), reference.book(ready, dur));
        }
    }

    /// Bookings never overlap: replaying the grant times against their
    /// durations yields pairwise-disjoint intervals.
    #[test]
    fn grants_never_overlap(reqs in proptest::collection::vec((0u64..5000, 1u64..200), 1..300)) {
        let mut sut = IntervalSchedule::new();
        let mut placed: Vec<(u64, u64)> = Vec::new();
        for &(ready, dur) in &reqs {
            let start = sut.book(ready, dur);
            prop_assert!(start >= ready);
            for &(s, e) in &placed {
                prop_assert!(start >= e || start + dur <= s, "overlap: [{start},{}) vs [{s},{e})", start+dur);
            }
            placed.push((start, start + dur));
        }
    }

    /// Bus reads never start their transfer before the DRAM latency has
    /// elapsed, and total busy time equals the sum of transfer times.
    #[test]
    fn bus_conservation(reqs in proptest::collection::vec((0u64..10_000, any::<bool>()), 1..200)) {
        let cfg = MemoryBusConfig::default();
        let mut bus = MemoryBus::new(cfg);
        let mut expected_busy = 0;
        for &(now, is_read) in &reqs {
            let t = if is_read {
                bus.read(now, 64, TrafficClass::DataRead)
            } else {
                bus.write(now, 64, TrafficClass::DataWrite)
            };
            let min_start = if is_read { now + cfg.dram_latency } else { now };
            prop_assert!(t.start >= min_start);
            prop_assert_eq!(t.complete - t.start, cfg.transfer_cycles(64));
            expected_busy += cfg.transfer_cycles(64);
        }
        prop_assert_eq!(bus.stats().busy_cycles, expected_busy);
        prop_assert_eq!(bus.stats().total_bytes(), reqs.len() as u64 * 64);
    }

    /// Low-water pruning never changes grant times for monotone request
    /// streams (the simulator's actual usage pattern).
    #[test]
    fn pruning_is_transparent_for_monotone_streams(
        gaps in proptest::collection::vec(0u64..120, 1..400),
    ) {
        let mut pruned = IntervalSchedule::new();
        let mut unpruned = IntervalSchedule::new();
        let mut now = 0;
        for &gap in &gaps {
            now += gap;
            pruned.advance_low_water(now);
            prop_assert_eq!(pruned.book(now, 40), unpruned.book(now, 40));
        }
    }
}
