//! A hand-rolled, span-preserving Rust lexer.
//!
//! The analyzer needs to know whether a pattern like `Instant::now` or
//! `.unwrap()` occurs in *code* — not in a comment, a doc example, or a
//! string literal holding a rule description. A full parser is overkill
//! (and an offline workspace cannot pull one in, see DESIGN.md §6
//! decision 12), so this module lexes Rust source into a flat token
//! stream that is exact about the four things that matter:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals: regular (`"..."` with escapes), byte (`b"..."`),
//!   and raw (`r"..."`, `r#"..."#`, `br##"..."##` at any `#` depth),
//! * char literals vs. lifetimes (`'a'` vs. `'a`, including `'\''`),
//! * identifiers, numbers and punctuation for everything else.
//!
//! The lexer is **infallible** and **lossless**: every input byte lands
//! in exactly one token, so re-concatenating the token spans reproduces
//! the file byte for byte (property-tested against every `.rs` file in
//! the workspace). Malformed input (unterminated strings or comments)
//! is absorbed into the current token rather than rejected — the
//! analyzer's job is to scan source, not to validate it.

/// The classification of one lexed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (spaces, tabs, newlines).
    Whitespace,
    /// A `//` comment up to (not including) the newline. Doc comments
    /// (`///`, `//!`) are line comments too — rules must never match
    /// inside documentation examples.
    LineComment,
    /// A `/* ... */` comment, nested to arbitrary depth.
    BlockComment,
    /// A `"..."` or `b"..."` literal, escapes handled.
    Str,
    /// A raw `r"..."` / `r#"..."#` / `br#"..."#` literal at any depth.
    RawStr,
    /// A character or byte-character literal (`'x'`, `b'\n'`, `'\''`).
    Char,
    /// A lifetime such as `'a` or `'_` (no closing quote).
    Lifetime,
    /// An identifier or keyword (`fn`, `unwrap`, `HashMap`, `r#type`).
    Ident,
    /// A numeric literal (integer or the simple float forms).
    Number,
    /// A single punctuation byte (`.`, `:`, `!`, `(`, …).
    Punct,
}

/// One token: a classification plus the half-open byte span it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the span is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a lossless token stream.
///
/// Concatenating `src[t.start..t.end]` over the returned tokens always
/// reproduces `src` exactly.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let start = i;
        let kind = match b[i] {
            c if c.is_ascii_whitespace() => {
                while i < n && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                TokenKind::LineComment
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                i = scan_string(b, i);
                TokenKind::Str
            }
            b'\'' => scan_quote(b, &mut i),
            c if c.is_ascii_digit() => {
                i = scan_number(b, i);
                TokenKind::Number
            }
            c if is_ident_start(c) => scan_ident_or_prefixed(src, b, &mut i),
            _ => {
                i += 1;
                TokenKind::Punct
            }
        };
        debug_assert!(i > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: i.min(n),
        });
    }
    out
}

/// Scans a `"..."` body starting at the opening quote; returns the index
/// one past the closing quote (or `len` if unterminated).
fn scan_string(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    i += 1; // opening quote
    while i < n {
        match b[i] {
            b'\\' => i = (i + 2).min(n),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Scans a raw string starting at the first `#` or `"` after the `r`
/// prefix; returns the index one past the closing quote+hashes.
fn scan_raw_string(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    let mut hashes = 0usize;
    while i < n && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < n && b[i] == b'"' {
        i += 1;
        while i < n {
            if b[i] == b'"' && i + hashes < n && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
            {
                return i + 1 + hashes;
            }
            i += 1;
        }
    }
    n
}

/// Classifies a `'` as a char literal or a lifetime and advances `i`.
fn scan_quote(b: &[u8], i: &mut usize) -> TokenKind {
    let n = b.len();
    let j = *i + 1;
    if j < n && b[j] == b'\\' {
        // Escaped char: skip the backslash + escape head, then scan to
        // the closing quote ('\n', '\'', '\u{1F600}' all end this way).
        let mut k = (j + 2).min(n);
        while k < n && b[k] != b'\'' {
            k += 1;
        }
        *i = (k + 1).min(n);
        return TokenKind::Char;
    }
    if j < n {
        // Width of the (possibly multi-byte) char after the quote.
        let w = utf8_len(b[j]);
        if j + w < n && b[j + w] == b'\'' {
            *i = j + w + 1;
            return TokenKind::Char;
        }
    }
    // No closing quote in reach: a lifetime ('a, 'static, '_).
    let mut k = j;
    while k < n && is_ident_continue(b[k]) {
        k += 1;
    }
    *i = k.max(j).max(*i + 1);
    TokenKind::Lifetime
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Scans a numeric literal: `123`, `0xff_u32`, `1_000`, `3.25`, `1e9`.
/// Exponent signs (`1e-9`) lex as Number/Punct/Number, which still
/// roundtrips; the analyzer's rules only need integer forms.
fn scan_number(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    // A fractional part: '.' followed by a digit ("0..5" stays a range).
    if i + 1 < n && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
    }
    i
}

/// Scans an identifier, handling string-literal prefixes (`r"`, `r#"`,
/// `b"`, `br#"`, `b'`) and raw identifiers (`r#type`).
fn scan_ident_or_prefixed(src: &str, b: &[u8], i: &mut usize) -> TokenKind {
    let n = b.len();
    let at = *i;
    // Raw-string / byte-string prefixes must be checked before the
    // identifier rule swallows the prefix letter.
    let rest = &src[at..];
    if rest.starts_with("r\"") || rest.starts_with("r#\"") || rest.starts_with("r##") {
        *i = scan_raw_string(b, at + 1);
        return TokenKind::RawStr;
    }
    if rest.starts_with("br\"") || rest.starts_with("br#") {
        *i = scan_raw_string(b, at + 2);
        return TokenKind::RawStr;
    }
    if rest.starts_with("b\"") {
        *i = scan_string(b, at + 1);
        return TokenKind::Str;
    }
    if rest.starts_with("b'") {
        let mut j = at + 1;
        let kind = scan_quote(b, &mut j);
        if kind == TokenKind::Char {
            *i = j;
            return TokenKind::Char;
        }
        // `b'x` with no closing quote: fall through to a plain ident.
    }
    if rest.starts_with("r#") && at + 2 < n && is_ident_start(b[at + 2]) {
        // Raw identifier r#type: the `r#` belongs to the ident token.
        let mut j = at + 2;
        while j < n && is_ident_continue(b[j]) {
            j += 1;
        }
        *i = j;
        return TokenKind::Ident;
    }
    let mut j = at;
    while j < n && is_ident_continue(b[j]) {
        j += 1;
    }
    *i = j;
    TokenKind::Ident
}

/// The 1-based line and column of byte offset `pos` in `src`.
pub fn line_col(src: &str, pos: usize) -> (usize, usize) {
    let upto = &src.as_bytes()[..pos.min(src.len())];
    let line = 1 + upto.iter().filter(|&&c| c == b'\n').count();
    let col = 1 + upto.iter().rev().take_while(|&&c| c != b'\n').count();
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        lex(src).iter().map(|t| t.text(src)).collect()
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn roundtrips_basic_forms() {
        for src in [
            "fn main() { let x = 1; }",
            "// line\n/* block /* nested */ still */ fn f() {}",
            r##"let s = r#"raw "quoted" body"#;"##,
            "let c = '\"'; let l: &'static str = \"//not a comment\";",
            "let b = b\"bytes\\\"esc\"; let bc = b'x';",
            "let f = 3.25e-9; let r = 0..5; let h = 0xff_u32;",
            "let raw_id = r#type;",
            "unterminated \"string never closes",
            "/* unterminated /* nested comment",
        ] {
            assert_eq!(roundtrip(src), src, "lossless lex of {src:?}");
        }
    }

    #[test]
    fn comments_hide_code() {
        let src = "// Instant::now()\n/* HashMap */ real_ident";
        let idents: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, ["real_ident"]);
    }

    #[test]
    fn strings_hide_code() {
        let src = r#"let p = "Instant::now"; let q = 'h';"#;
        let idents: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, ["let", "p", "let", "q"]);
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(
            kinds("'a' 'a '\\'' '_ '✓'"),
            [
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn line_col_math() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 4), (2, 2));
        assert_eq!(line_col(src, 6), (3, 1));
    }
}
