//! SARIF 2.1.0 emitter, so CI can annotate pull requests with
//! analyzer findings.
//!
//! Only the minimal subset of the (large) SARIF schema is produced:
//! one run, one tool driver with the rule catalogue, one result per
//! finding with a physical location. Like the `miv-findings-v2` JSON,
//! the output is deterministic — fixed field order, rules sorted by
//! id, no timestamps, workspace-relative URIs — so two runs over the
//! same tree are byte-identical (CI `cmp`s them).

use miv_obs::json::JsonValue;

use crate::engine::WorkspaceReport;
use crate::rules::CATALOGUE;

/// Renders the workspace report as a SARIF 2.1.0 log.
pub fn sarif_json(report: &WorkspaceReport) -> JsonValue {
    let mut driver = JsonValue::obj();
    driver.push("name", "miv-analyze");
    driver.push("informationUri", "https://example.invalid/miv-analyze");
    driver.push("version", "2.0.0");

    let mut sorted: Vec<&crate::rules::Rule> = CATALOGUE.iter().collect();
    sorted.sort_by_key(|r| r.id);
    let mut rules = Vec::new();
    for rule in sorted {
        let mut short = JsonValue::obj();
        short.push("text", rule.summary);
        let mut r = JsonValue::obj();
        r.push("id", rule.id);
        r.push("shortDescription", short);
        rules.push(r);
    }
    driver.push("rules", JsonValue::Array(rules));

    let mut tool = JsonValue::obj();
    tool.push("driver", driver);

    let mut results = Vec::new();
    for f in &report.findings {
        let mut message = JsonValue::obj();
        message.push("text", f.message.as_str());

        let mut artifact = JsonValue::obj();
        artifact.push("uri", f.path.as_str());
        let mut region = JsonValue::obj();
        region.push("startLine", f.line as u64);
        region.push("startColumn", f.col as u64);
        let mut physical = JsonValue::obj();
        physical.push("artifactLocation", artifact);
        physical.push("region", region);
        let mut location = JsonValue::obj();
        location.push("physicalLocation", physical);

        let mut result = JsonValue::obj();
        result.push("ruleId", f.rule.as_str());
        result.push("level", "error");
        result.push("message", message);
        result.push("locations", JsonValue::Array(vec![location]));
        results.push(result);
    }

    let mut run = JsonValue::obj();
    run.push("tool", tool);
    run.push("results", JsonValue::Array(results));

    let mut root = JsonValue::obj();
    root.push("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
    root.push("version", "2.1.0");
    root.push("runs", JsonValue::Array(vec![run]));
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Finding;

    #[test]
    fn sarif_is_deterministic_and_minimal() {
        let mut report = WorkspaceReport::default();
        report.findings.push(Finding {
            rule: "no-wall-clock".to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            message: "m".to_string(),
            snippet: "s".to_string(),
        });
        let a = sarif_json(&report).render_pretty();
        let b = sarif_json(&report).render_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"version\": \"2.1.0\""));
        assert!(a.contains("no-wall-clock"));
        assert!(a.contains("startLine"));
    }
}
