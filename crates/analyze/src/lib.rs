//! `miv-analyze` — workspace-native static analysis for the miv
//! reproduction.
//!
//! The workspace's strongest guarantees — byte-identical output at any
//! `--jobs` count, adversary-campaign soundness, and split-run timing
//! equivalence — are dynamic properties protected by end-to-end CI
//! gates. Those gates tell you *that* a PR broke determinism, hours
//! after the fact; they do not tell you *where*, and they cannot stop
//! the classes of bug that only fire on specific inputs. This crate
//! turns the project's documented invariants (INVARIANTS.md) into a
//! machine-checked catalogue that runs in milliseconds:
//!
//! * a hand-rolled, comment- and string-literal-aware Rust
//!   [`lexer`] (lossless: token spans reproduce the file byte for
//!   byte, property-tested over every `.rs` file in the workspace),
//! * a [`scan`] layer that classifies files (lib / bin / test),
//!   detects `#[cfg(test)]` item spans, and parses suppression
//!   directives,
//! * a [`rules`] catalogue of project-specific invariants that
//!   `clippy -D warnings` cannot express (no wall clocks in the sim,
//!   no hash-ordered iteration near output, reset methods must not
//!   clear interval schedules, …),
//! * an [`engine`] that applies suppressions and renders the
//!   deterministic `miv-findings-v1` JSON report.
//!
//! # Running
//!
//! ```text
//! cargo run -p miv-analyze --release -- --workspace [--json out.json]
//! ```
//!
//! The binary exits non-zero on any unsuppressed finding.
//!
//! # Suppressing a finding
//!
//! Justification is mandatory; a directive without a reason is itself
//! a finding:
//!
//! ```text
//! // miv-analyze: allow(no-wall-clock, reason="bench harness measures real time")
//! let t0 = Instant::now();
//! ```
//!
//! The directive waives the named rule on its own line and the line
//! below it. File-scoped rules (like `forbid-unsafe-header`) accept a
//! directive anywhere in the file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod scan;

pub use engine::{
    analyze_workspace, check_source, collect_rs_files, discover_workspace_root, findings_json,
    FileReport, Finding, Suppressed, WorkspaceReport,
};
pub use lexer::{lex, Token, TokenKind};
pub use rules::{find_rule, Rule, CATALOGUE};
pub use scan::{FileContext, FileKind, SourceFile};
