//! `miv-analyze` — workspace-native static analysis for the miv
//! reproduction.
//!
//! The workspace's strongest guarantees — byte-identical output at any
//! `--jobs` count, adversary-campaign soundness, and split-run timing
//! equivalence — are dynamic properties protected by end-to-end CI
//! gates. Those gates tell you *that* a PR broke determinism, hours
//! after the fact; they do not tell you *where*, and they cannot stop
//! the classes of bug that only fire on specific inputs. This crate
//! turns the project's documented invariants (INVARIANTS.md) into a
//! machine-checked catalogue that runs in milliseconds:
//!
//! * a hand-rolled, comment- and string-literal-aware Rust
//!   [`lexer`] (lossless: token spans reproduce the file byte for
//!   byte, property-tested over every `.rs` file in the workspace),
//! * a [`scan`] layer that classifies files (lib / bin / test),
//!   detects `#[cfg(test)]` item spans, and parses suppression
//!   directives,
//! * a [`model`] layer that builds a brace-balanced item tree per file
//!   (modules, fns, impls, enums with variant lists, `match`
//!   expressions with arm heads) and a workspace-wide index — the
//!   substrate for cross-file structural rules,
//! * a [`rules`] catalogue of project-specific invariants that
//!   `clippy -D warnings` cannot express: token rules (no wall clocks
//!   in the sim, no hash-ordered iteration near output, reset methods
//!   must not clear interval schedules, …) and structural rules
//!   (exhaustive dispatch over tagged enums, fallible-constructor
//!   pairing, enum plumbing into dispatch tables, suppression audit),
//! * an [`engine`] that runs two passes (model + index, then rules),
//!   applies and audits suppressions, and renders the deterministic
//!   `miv-findings-v2` JSON report,
//! * a [`sarif`] emitter so CI can annotate pull requests.
//!
//! # Running
//!
//! ```text
//! cargo run -p miv-analyze --release -- --workspace [--json out.json]
//! ```
//!
//! The binary exits non-zero on any unsuppressed finding.
//!
//! # Suppressing a finding
//!
//! Justification is mandatory; a directive without a reason is itself
//! a finding:
//!
//! ```text
//! // miv-analyze: allow(no-wall-clock, reason="bench harness measures real time")
//! let t0 = Instant::now();
//! ```
//!
//! The directive waives the named rule on its own line and the line
//! below it. File-scoped rules (like `forbid-unsafe-header`) accept a
//! directive anywhere in the file. A directive that shields nothing is
//! itself a finding (`unused-suppression`).
//!
//! # Tagging an enum as exhaustive
//!
//! ```text
//! // miv-analyze: exhaustive
//! pub enum TamperKind { ... }
//! ```
//!
//! Every `match` whose arms dispatch on a tagged enum must then name
//! all of its variants — wildcard `_` arms fire — so adding a variant
//! breaks every dispatch site loudly at analysis time and compile time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod sarif;
pub mod scan;

pub use engine::{
    analyze_sources, analyze_workspace, check_source, collect_rs_files, discover_workspace_root,
    findings_json, AllowSite, FileReport, Finding, Suppressed, WorkspaceReport,
};
pub use lexer::{lex, Token, TokenKind};
pub use model::{FileModel, Item, ItemCounts, ItemKind, WorkspaceIndex};
pub use rules::{find_rule, Rule, RuleCtx, RuleFamily, CATALOGUE, PLUMB_MANIFEST};
pub use sarif::sarif_json;
pub use scan::{FileContext, FileKind, SourceFile};
