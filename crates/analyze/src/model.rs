//! The item-model layer: a brace-balanced structural pass over the
//! lossless token stream.
//!
//! The token-stream rules of PR 5 see a flat sequence of significant
//! tokens; they cannot answer questions like "does this `match` name
//! every variant of `HashAlgo`?" or "does `TrustedCache` have a
//! `try_new` sibling for its panicking `new`?". This module builds just
//! enough structure to answer them without becoming a parser (see
//! DESIGN.md decision 12: the workspace is offline, so `syn` is not an
//! option, and a full grammar is not needed):
//!
//! * a per-file **item tree** ([`FileModel::items`]): modules, `fn`s,
//!   `impl` blocks, `struct`s and `enum`s (with their variant lists),
//!   each with its byte span, significant-token range and body range —
//!   spans partition the file's top level (property-tested over every
//!   workspace source),
//! * every **`match` expression** with its arm heads
//!   ([`FileModel::matches`]), the raw material of the
//!   `exhaustive-variant-match` rule,
//! * explicit **brace-error reporting** ([`FileModel::brace_errors`]):
//!   an unbalanced brace no longer silently extends a `#[cfg(test)]`
//!   skip region to end of file (the PR 5 fragility) — it becomes an
//!   unsuppressible `directive`-class finding,
//! * a workspace-level [`WorkspaceIndex`]: enum name → variants,
//!   fn name → signature-ish token span, file → qualified `A::B` path
//!   pairs and item counts — the substrate of every cross-file rule.
//!
//! The model is byte-deterministic: it is a pure function of the source
//! text, holds no maps with randomized iteration order, and is built in
//! file order.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// What kind of item a model node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { ... }` or `mod name;`.
    Mod,
    /// `fn name(...) { ... }` (or a body-less trait method).
    Fn,
    /// `struct` / `union` definition.
    Struct,
    /// `enum` definition; [`Item::variants`] holds the variant names.
    Enum,
    /// `trait` definition.
    Trait,
    /// `impl` block; [`Item::name`] is the (last path segment of the)
    /// implemented type.
    Impl,
    /// `type` alias.
    TypeAlias,
    /// `const` or `static` item.
    Const,
    /// `use` declaration or `extern crate`.
    Use,
    /// `macro_rules!` definition or a top-level macro invocation.
    Macro,
    /// An inner attribute (`#![...]`) or anything else the model
    /// absorbs conservatively (stray semicolons, unknown forms).
    Other,
}

impl ItemKind {
    /// Stable label for reports and the v2 JSON item counts.
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Mod => "mod",
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Trait => "trait",
            ItemKind::Impl => "impl",
            ItemKind::TypeAlias => "type",
            ItemKind::Const => "const",
            ItemKind::Use => "use",
            ItemKind::Macro => "macro",
            ItemKind::Other => "other",
        }
    }
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// The item's name (`""` for impls without a resolvable target,
    /// inner attributes and other anonymous forms).
    pub name: String,
    /// Byte offset of the item's first token (its first attribute, or
    /// its first keyword when unattributed).
    pub start: usize,
    /// Byte offset one past the item's last token (`}` or `;`).
    pub end: usize,
    /// Byte offset of the defining keyword (`fn`, `enum`, …) — a more
    /// precise finding anchor than `start`.
    pub head: usize,
    /// Whether the item is `pub` (plain `pub` only; `pub(crate)` and
    /// friends count as private, matching the doc-comment rule).
    pub is_pub: bool,
    /// Whether the item is gated by `#[cfg(test)]` / `#[test]` (its own
    /// attributes only; enclosing-module gating is resolved through
    /// [`SourceFile::in_test_span`]).
    pub test_gated: bool,
    /// For enums: the variant names, in declaration order.
    pub variants: Vec<String>,
    /// For enums: whether a `// miv-analyze: exhaustive` tag attaches
    /// to this enum.
    pub exhaustive_tag: bool,
    /// Nested items (modules and impl blocks recurse; function bodies
    /// do not contribute to the item tree).
    pub children: Vec<Item>,
    /// Significant-token index range `[start, end)` of the whole item.
    pub sig_range: (usize, usize),
    /// Significant-token index range of the body *between* the braces
    /// (`{` and `}` excluded), when the item has a braced body.
    pub body_sig: Option<(usize, usize)>,
}

/// One parsed arm head of a `match` expression.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Byte offset of the arm's first pattern token.
    pub pos: usize,
    /// The pattern's significant tokens (guard excluded).
    pub pattern: Vec<String>,
    /// Whether an `if` guard follows the pattern.
    pub has_guard: bool,
}

impl Arm {
    /// Whether the arm is a wildcard: `_`, or a single lowercase
    /// binding ident (`other => ...`), either of which swallows every
    /// remaining variant.
    pub fn is_wildcard(&self) -> bool {
        match self.pattern.as_slice() {
            [one] => {
                one == "_"
                    || one
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
            }
            _ => false,
        }
    }

    /// The qualified path `A::B` at the *head* of each top-level `|`
    /// alternative of the pattern (after skipping reference/tuple
    /// sigils `&`, `(`, `mut`). Payload patterns like
    /// `Some(HashAlgo::Md5)` yield nothing — the head is `Some`, not a
    /// qualified path — so the exhaustiveness rule never mis-attributes
    /// a wrapper match to the payload enum.
    pub fn head_paths(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for alt in self.pattern.split(|t| t == "|") {
            let mut k = 0;
            while k < alt.len() && matches!(alt[k].as_str(), "&" | "(" | "mut" | "ref" | "box") {
                k += 1;
            }
            if k + 3 < alt.len() + 1
                && alt.get(k + 1).map(String::as_str) == Some(":")
                && alt.get(k + 2).map(String::as_str) == Some(":")
            {
                if let Some(seg) = alt.get(k + 3) {
                    out.push((alt[k].clone(), seg.clone()));
                }
            }
        }
        out
    }
}

/// One `match` expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// Byte offset of the `match` keyword.
    pub pos: usize,
    /// The parsed arm heads.
    pub arms: Vec<Arm>,
    /// The implemented type of the lexically enclosing `impl` block,
    /// used to resolve `Self::Variant` arm patterns.
    pub enclosing_impl: Option<String>,
}

/// Aggregated item counts, reported in the v2 JSON so reviewers can
/// see coverage drift (a model that suddenly sees half as many items
/// is itself a regression signal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ItemCounts {
    /// Files contributing to the counts.
    pub files: usize,
    /// All model nodes, nested included.
    pub items: usize,
    /// `mod` items.
    pub mods: usize,
    /// `fn` items.
    pub fns: usize,
    /// `impl` blocks.
    pub impls: usize,
    /// `enum` definitions.
    pub enums: usize,
    /// Enum variants across all enums.
    pub enum_variants: usize,
    /// `match` expressions.
    pub matches: usize,
}

impl ItemCounts {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &ItemCounts) {
        self.files += other.files;
        self.items += other.items;
        self.mods += other.mods;
        self.fns += other.fns;
        self.impls += other.impls;
        self.enums += other.enums;
        self.enum_variants += other.enum_variants;
        self.matches += other.matches;
    }
}

/// The structural model of one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Top-level items, in byte order. Spans are non-overlapping and
    /// cover every significant token of the file.
    pub items: Vec<Item>,
    /// Every `match` expression in the file, in byte order.
    pub matches: Vec<MatchExpr>,
    /// Byte offsets where brace matching failed: a `}` with no open
    /// brace, or a `{` still open at end of file. Non-empty means item
    /// spans and test-span detection are unreliable — the engine turns
    /// each entry into an unsuppressible `directive`-class finding.
    pub brace_errors: Vec<usize>,
    /// Byte offsets of `// miv-analyze: exhaustive` tags that no enum
    /// follows (also a `directive`-class finding).
    pub unattached_tags: Vec<usize>,
    /// Per-file item counts.
    pub counts: ItemCounts,
}

impl FileModel {
    /// Builds the model for one lexed file.
    pub fn build(f: &SourceFile) -> FileModel {
        let mut model = FileModel::default();
        check_brace_balance(f, &mut model.brace_errors);
        let mut p = Parser { f };
        let mut k = 0;
        model.items = p.parse_items(&mut k, f.sig_len());
        attach_exhaustive_tags(f, &mut model);
        model.matches = find_matches(f, &model.items);
        model.counts = count_items(&model);
        model
    }

    /// Every enum item in the model, nested modules included.
    pub fn enums(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        collect_kind(&self.items, ItemKind::Enum, &mut out);
        out
    }

    /// Every impl block in the model, nested modules included.
    pub fn impls(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        collect_kind(&self.items, ItemKind::Impl, &mut out);
        out
    }
}

fn collect_kind<'m>(items: &'m [Item], kind: ItemKind, out: &mut Vec<&'m Item>) {
    for item in items {
        if item.kind == kind {
            out.push(item);
        }
        collect_kind(&item.children, kind, out);
    }
}

fn count_items(model: &FileModel) -> ItemCounts {
    fn walk(items: &[Item], c: &mut ItemCounts) {
        for item in items {
            c.items += 1;
            match item.kind {
                ItemKind::Mod => c.mods += 1,
                ItemKind::Fn => c.fns += 1,
                ItemKind::Impl => c.impls += 1,
                ItemKind::Enum => {
                    c.enums += 1;
                    c.enum_variants += item.variants.len();
                }
                _ => {}
            }
            walk(&item.children, c);
        }
    }
    let mut c = ItemCounts {
        files: 1,
        matches: model.matches.len(),
        ..ItemCounts::default()
    };
    walk(&model.items, &mut c);
    c
}

/// Whole-file brace balance over significant tokens. The lexer already
/// keeps braces in strings, chars and comments out of the significant
/// stream, so any imbalance here is a real structural problem.
fn check_brace_balance(f: &SourceFile, errors: &mut Vec<usize>) {
    let mut stack = Vec::new();
    for k in 0..f.sig_len() {
        match f.sig_text(k) {
            "{" => stack.push(f.sig_start(k)),
            // The guard pops the matching opener; only an unmatched `}`
            // reaches the arm body.
            "}" if stack.pop().is_none() => errors.push(f.sig_start(k)),
            _ => {}
        }
    }
    errors.extend(stack);
    errors.sort_unstable();
}

/// Attaches each `// miv-analyze: exhaustive` tag to the next enum
/// (by byte order) in the item tree.
fn attach_exhaustive_tags(f: &SourceFile, model: &mut FileModel) {
    fn first_enum_after(items: &mut [Item], pos: usize) -> Option<&mut Item> {
        let mut best: Option<&mut Item> = None;
        for item in items.iter_mut() {
            if item.kind == ItemKind::Enum && item.start >= pos {
                match &best {
                    Some(b) if b.start <= item.start => {}
                    _ => best = Some(item),
                }
                continue;
            }
            if let Some(found) = first_enum_after(&mut item.children, pos) {
                match &best {
                    Some(b) if b.start <= found.start => {}
                    _ => best = Some(found),
                }
            }
        }
        best
    }
    for tag in &f.exhaustive_tags {
        match first_enum_after(&mut model.items, tag.pos) {
            Some(e) => e.exhaustive_tag = true,
            None => model.unattached_tags.push(tag.pos),
        }
    }
}

struct Parser<'a, 'b> {
    f: &'a SourceFile<'b>,
}

/// The shared prefix of one parsed item — anchors and flags read while
/// consuming attributes, visibility and modifiers, before the defining
/// keyword dispatches to a `finish_*` method.
struct ItemHead {
    sig_start: usize,
    start: usize,
    head: usize,
    is_pub: bool,
    test_gated: bool,
}

const ITEM_KEYWORDS: &[&str] = &[
    "mod",
    "fn",
    "struct",
    "enum",
    "union",
    "trait",
    "impl",
    "type",
    "const",
    "static",
    "use",
    "extern",
    "macro_rules",
];

impl<'a, 'b> Parser<'a, 'b> {
    /// Parses items from significant index `*k` until `end` (exclusive)
    /// or an unmatched `}` (which the caller owns). Advances `*k`.
    fn parse_items(&mut self, k: &mut usize, end: usize) -> Vec<Item> {
        let f = self.f;
        let mut items = Vec::new();
        while *k < end {
            if f.sig_text(*k) == "}" {
                // The caller's closing brace (or, at top level, an
                // extra `}` already recorded by the balance check).
                break;
            }
            let item = self.parse_one_item(k, end);
            items.push(item);
        }
        items
    }

    /// Parses one item starting at `*k`, absorbing conservatively when
    /// the form is unknown. Always advances `*k`.
    fn parse_one_item(&mut self, k: &mut usize, end: usize) -> Item {
        let f = self.f;
        let sig_start = *k;
        let start = f.sig_start(*k);
        let mut test_gated = false;

        // Inner attribute `#![...]`: its own pseudo-item, so the item
        // spans still partition the file.
        if f.sig_text(*k) == "#" && f.sig_text(*k + 1) == "!" && f.sig_text(*k + 2) == "[" {
            let close = self.skip_bracketed(*k + 2, end);
            let item_end = f.token_end(close);
            *k = (close + 1).min(end);
            return Item {
                kind: ItemKind::Other,
                name: String::new(),
                start,
                end: item_end,
                head: start,
                is_pub: false,
                test_gated: false,
                variants: Vec::new(),
                exhaustive_tag: false,
                children: Vec::new(),
                sig_range: (sig_start, *k),
                body_sig: None,
            };
        }

        // Outer attributes.
        while f.sig_text(*k) == "#" && f.sig_text(*k + 1) == "[" {
            let close = self.skip_bracketed(*k + 1, end);
            let idents: Vec<&str> = (*k + 2..close)
                .filter(|&m| f.sig_kind(m) == Some(TokenKind::Ident))
                .map(|m| f.sig_text(m))
                .collect();
            if idents.contains(&"test") && (idents.contains(&"cfg") || idents == ["test"]) {
                test_gated = true;
            }
            *k = (close + 1).min(end);
        }

        // Visibility.
        let mut is_pub = false;
        if f.sig_text(*k) == "pub" {
            is_pub = true;
            *k += 1;
            if f.sig_text(*k) == "(" {
                is_pub = false; // pub(crate)/pub(super): private API
                *k = (self.skip_parenthesized(*k, end) + 1).min(end);
            }
        }

        // Modifiers before the defining keyword.
        while matches!(f.sig_text(*k), "default" | "unsafe" | "async")
            || (f.sig_text(*k) == "const" && matches!(f.sig_text(*k + 1), "fn" | "unsafe"))
            || (f.sig_text(*k) == "extern" && f.sig_kind(*k + 1) == Some(TokenKind::Str))
        {
            if f.sig_text(*k) == "extern" {
                *k += 2; // extern "C" fn ...
            } else {
                *k += 1;
            }
        }

        let kw = f.sig_text(*k).to_string();
        let head = f.sig_start(*k);
        if !ITEM_KEYWORDS.contains(&kw.as_str()) {
            // Unknown form (stray semicolon, macro invocation, code in
            // a malformed region): absorb to the next `;` or balanced
            // `}` at depth 0, or a single token as a last resort.
            return self.absorb_other(k, end, sig_start, start, kw);
        }
        *k += 1;

        let h = ItemHead {
            sig_start,
            start,
            head,
            is_pub,
            test_gated,
        };
        match kw.as_str() {
            "mod" => self.finish_mod(k, end, h),
            "fn" => self.finish_fn(k, end, h),
            "enum" => self.finish_enum(k, end, h),
            "impl" => self.finish_impl(k, end, sig_start, start, head, test_gated),
            "struct" | "union" | "trait" => {
                let name = self.ident_at(*k);
                let kind = if kw == "trait" {
                    ItemKind::Trait
                } else {
                    ItemKind::Struct
                };
                let (end_byte, body_sig) = self.skip_to_item_end(k, end);
                Item {
                    kind,
                    name,
                    start,
                    end: end_byte,
                    head,
                    is_pub,
                    test_gated,
                    variants: Vec::new(),
                    exhaustive_tag: false,
                    children: Vec::new(),
                    sig_range: (sig_start, *k),
                    body_sig,
                }
            }
            "macro_rules" => {
                // macro_rules ! name { ... }
                let name = if f.sig_text(*k) == "!" {
                    self.ident_at(*k + 1)
                } else {
                    String::new()
                };
                let (end_byte, body_sig) = self.skip_to_item_end(k, end);
                Item {
                    kind: ItemKind::Macro,
                    name,
                    start,
                    end: end_byte,
                    head,
                    is_pub,
                    test_gated,
                    variants: Vec::new(),
                    exhaustive_tag: false,
                    children: Vec::new(),
                    sig_range: (sig_start, *k),
                    body_sig,
                }
            }
            _ => {
                // type / const / static / use / extern crate.
                let kind = match kw.as_str() {
                    "type" => ItemKind::TypeAlias,
                    "const" | "static" => ItemKind::Const,
                    _ => ItemKind::Use,
                };
                let name = self.ident_at(*k);
                let (end_byte, body_sig) = self.skip_to_item_end(k, end);
                Item {
                    kind,
                    name,
                    start,
                    end: end_byte,
                    head,
                    is_pub,
                    test_gated,
                    variants: Vec::new(),
                    exhaustive_tag: false,
                    children: Vec::new(),
                    sig_range: (sig_start, *k),
                    body_sig,
                }
            }
        }
    }

    fn finish_mod(&mut self, k: &mut usize, end: usize, h: ItemHead) -> Item {
        let f = self.f;
        let name = self.ident_at(*k);
        // Scan to `{` (inline module) or `;` (out-of-line module).
        let mut children = Vec::new();
        let mut end_byte = f.src.len();
        let mut body_sig = None;
        while *k < end {
            match f.sig_text(*k) {
                ";" => {
                    end_byte = f.token_end(*k);
                    *k += 1;
                    break;
                }
                "{" => {
                    let body_start = *k + 1;
                    *k += 1;
                    children = self.parse_items(k, end);
                    // The recursion stops at our closing brace.
                    body_sig = Some((body_start, *k));
                    if f.sig_text(*k) == "}" {
                        end_byte = f.token_end(*k);
                        *k += 1;
                    } else {
                        end_byte = f.src.len();
                    }
                    break;
                }
                _ => *k += 1,
            }
        }
        Item {
            kind: ItemKind::Mod,
            name,
            start: h.start,
            end: end_byte,
            head: h.head,
            is_pub: h.is_pub,
            test_gated: h.test_gated,
            variants: Vec::new(),
            exhaustive_tag: false,
            children,
            sig_range: (h.sig_start, *k),
            body_sig,
        }
    }

    fn finish_fn(&mut self, k: &mut usize, end: usize, h: ItemHead) -> Item {
        let name = self.ident_at(*k);
        let (end_byte, body_sig) = self.skip_to_item_end(k, end);
        Item {
            kind: ItemKind::Fn,
            name,
            start: h.start,
            end: end_byte,
            head: h.head,
            is_pub: h.is_pub,
            test_gated: h.test_gated,
            variants: Vec::new(),
            exhaustive_tag: false,
            children: Vec::new(),
            sig_range: (h.sig_start, *k),
            body_sig,
        }
    }

    fn finish_enum(&mut self, k: &mut usize, end: usize, h: ItemHead) -> Item {
        let f = self.f;
        let name = self.ident_at(*k);
        // Scan to the variant block `{` (skipping generics, which hold
        // no braces), then parse variant names at depth 1.
        let mut variants = Vec::new();
        let mut end_byte = f.src.len();
        let mut body_sig = None;
        while *k < end {
            match f.sig_text(*k) {
                ";" => {
                    // `enum Never;` is not legal Rust, but absorb it.
                    end_byte = f.token_end(*k);
                    *k += 1;
                    return Item {
                        kind: ItemKind::Enum,
                        name,
                        start: h.start,
                        end: end_byte,
                        head: h.head,
                        is_pub: h.is_pub,
                        test_gated: h.test_gated,
                        variants,
                        exhaustive_tag: false,
                        children: Vec::new(),
                        sig_range: (h.sig_start, *k),
                        body_sig,
                    };
                }
                "{" => break,
                _ => *k += 1,
            }
        }
        if f.sig_text(*k) == "{" {
            let open = *k;
            let close = self.matching_brace_or_end(open);
            body_sig = Some((open + 1, close));
            let mut m = open + 1;
            while m < close {
                // Skip variant attributes.
                while self.f.sig_text(m) == "#" && self.f.sig_text(m + 1) == "[" {
                    m = (self.skip_bracketed(m + 1, close) + 1).min(close);
                }
                if m >= close {
                    break;
                }
                if self.f.sig_kind(m) == Some(TokenKind::Ident) {
                    variants.push(self.f.sig_text(m).to_string());
                }
                // Skip the payload / discriminant to the `,` at depth 0
                // relative to the variant block.
                let mut depth = 0usize;
                while m < close {
                    match self.f.sig_text(m) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "," if depth == 0 => {
                            m += 1;
                            break;
                        }
                        _ => {}
                    }
                    m += 1;
                }
            }
            end_byte = f.token_end(close);
            *k = (close + 1).min(end);
        }
        Item {
            kind: ItemKind::Enum,
            name,
            start: h.start,
            end: end_byte,
            head: h.head,
            is_pub: h.is_pub,
            test_gated: h.test_gated,
            variants,
            exhaustive_tag: false,
            children: Vec::new(),
            sig_range: (h.sig_start, *k),
            body_sig,
        }
    }

    fn finish_impl(
        &mut self,
        k: &mut usize,
        end: usize,
        sig_start: usize,
        start: usize,
        head: usize,
        test_gated: bool,
    ) -> Item {
        let f = self.f;
        // The implemented type: the last path-segment ident before the
        // body `{` — after `for` when present (`impl Trait for Type`).
        let mut name = String::new();
        let mut after_for = false;
        let mut scan = *k;
        while scan < end {
            match f.sig_text(scan) {
                "{" => break,
                "for" => {
                    after_for = true;
                    name.clear();
                    scan += 1;
                }
                "where" => break,
                t => {
                    if f.sig_kind(scan) == Some(TokenKind::Ident) && t != "dyn" {
                        name = t.to_string();
                    }
                    scan += 1;
                }
            }
        }
        let _ = after_for;
        // Find the body brace and recurse for associated items.
        while *k < end && f.sig_text(*k) != "{" && f.sig_text(*k) != ";" {
            *k += 1;
        }
        let mut children = Vec::new();
        let mut end_byte = f.src.len();
        let mut body_sig = None;
        if f.sig_text(*k) == "{" {
            let body_start = *k + 1;
            *k += 1;
            children = self.parse_items(k, end);
            body_sig = Some((body_start, *k));
            if f.sig_text(*k) == "}" {
                end_byte = f.token_end(*k);
                *k += 1;
            }
        } else if f.sig_text(*k) == ";" {
            end_byte = f.token_end(*k);
            *k += 1;
        }
        Item {
            kind: ItemKind::Impl,
            name,
            start,
            end: end_byte,
            head,
            is_pub: false,
            test_gated,
            variants: Vec::new(),
            exhaustive_tag: false,
            children,
            sig_range: (sig_start, *k),
            body_sig,
        }
    }

    /// Absorbs an unknown construct: to a `;` at depth 0, through a
    /// balanced `{...}` block (macro invocation bodies), or one token.
    fn absorb_other(
        &mut self,
        k: &mut usize,
        end: usize,
        sig_start: usize,
        start: usize,
        _first: String,
    ) -> Item {
        let f = self.f;
        let head = start;
        let mut depth = 0usize;
        let mut end_byte = f.token_end(*k);
        while *k < end {
            match f.sig_text(*k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" => {
                    let close = self.matching_brace_or_end(*k);
                    if depth == 0 {
                        // A block at depth 0 ends the construct
                        // (macro_name! { ... }).
                        end_byte = f.token_end(close);
                        *k = (close + 1).min(end);
                        // A trailing `;` belongs to it.
                        if f.sig_text(*k) == ";" {
                            end_byte = f.token_end(*k);
                            *k += 1;
                        }
                        return self.other_item(sig_start, *k, start, end_byte, head);
                    }
                    *k = close;
                }
                ";" if depth == 0 => {
                    end_byte = f.token_end(*k);
                    *k += 1;
                    return self.other_item(sig_start, *k, start, end_byte, head);
                }
                "}" if depth == 0 => {
                    // The caller's closing brace: stop before it.
                    return self.other_item(sig_start, *k, start, end_byte, head);
                }
                _ => {}
            }
            end_byte = f.token_end(*k);
            *k += 1;
        }
        self.other_item(sig_start, *k, start, end_byte, head)
    }

    fn other_item(
        &self,
        sig_start: usize,
        sig_end: usize,
        start: usize,
        end: usize,
        head: usize,
    ) -> Item {
        Item {
            kind: ItemKind::Other,
            name: String::new(),
            start,
            end,
            head,
            is_pub: false,
            test_gated: false,
            variants: Vec::new(),
            exhaustive_tag: false,
            children: Vec::new(),
            sig_range: (sig_start, sig_end),
            body_sig: None,
        }
    }

    /// The ident at `k`, or `""`.
    fn ident_at(&self, k: usize) -> String {
        if self.f.sig_kind(k) == Some(TokenKind::Ident) {
            self.f.sig_text(k).to_string()
        } else {
            String::new()
        }
    }

    /// Given `k` at a `[`, returns the index of the matching `]`
    /// (or `end` when unbalanced).
    fn skip_bracketed(&self, open: usize, end: usize) -> usize {
        let f = self.f;
        let mut depth = 0usize;
        let mut j = open;
        while j < end {
            match f.sig_text(j) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Given `k` at a `(`, returns the index of the matching `)`.
    fn skip_parenthesized(&self, open: usize, end: usize) -> usize {
        let f = self.f;
        let mut depth = 0usize;
        let mut j = open;
        while j < end {
            match f.sig_text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Matching `}` for the `{` at `open`, or the last significant
    /// index when unbalanced (never past the stream).
    fn matching_brace_or_end(&self, open: usize) -> usize {
        let close = self.f.matching_brace(open);
        close.min(self.f.sig_len().saturating_sub(1))
    }

    /// Advances `*k` to one past the end of an item whose header starts
    /// at `*k`: through the matching `}` of the first `{` at
    /// parenthesis/bracket depth 0, or through a `;` at depth 0 —
    /// whichever comes first. Braced initializers inside `const` items
    /// are crossed because `{` bumps the depth. Returns the end byte
    /// and the body's significant range when a braced body was found.
    fn skip_to_item_end(&mut self, k: &mut usize, end: usize) -> (usize, Option<(usize, usize)>) {
        let f = self.f;
        let mut depth = 0usize;
        while *k < end {
            match f.sig_text(*k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" => {
                    if depth == 0 {
                        let open = *k;
                        let close = self.matching_brace_or_end(open);
                        let end_byte = f.token_end(close);
                        *k = (close + 1).min(end);
                        // `struct S { .. }` has no trailing `;`; a
                        // const with a braced initializer does — take
                        // it if adjacent.
                        if f.sig_text(*k) == ";" {
                            let semi_end = f.token_end(*k);
                            *k += 1;
                            return (semi_end, Some((open + 1, close)));
                        }
                        return (end_byte, Some((open + 1, close)));
                    }
                    // Inside parens/brackets: a closure body or a
                    // struct literal; cross it wholesale.
                    *k = self.matching_brace_or_end(*k);
                }
                ";" if depth == 0 => {
                    let end_byte = f.token_end(*k);
                    *k += 1;
                    return (end_byte, None);
                }
                _ => {}
            }
            *k += 1;
        }
        (f.src.len(), None)
    }
}

/// Scans the whole significant stream for `match` expressions and
/// parses each one's arm heads. Enclosing impls are resolved from the
/// item tree by byte containment.
fn find_matches(f: &SourceFile, items: &[Item]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for k in 0..f.sig_len() {
        if f.sig_text(k) != "match" || f.sig_kind(k) != Some(TokenKind::Ident) {
            continue;
        }
        let pos = f.sig_start(k);
        let Some((arms_open, arms_close)) = find_arms_block(f, k) else {
            continue;
        };
        let arms = parse_arms(f, arms_open, arms_close);
        out.push(MatchExpr {
            pos,
            arms,
            enclosing_impl: enclosing_impl_name(items, pos),
        });
    }
    out
}

fn enclosing_impl_name(items: &[Item], pos: usize) -> Option<String> {
    for item in items {
        if pos < item.start || pos >= item.end {
            continue;
        }
        if let Some(inner) = enclosing_impl_name(&item.children, pos) {
            return Some(inner);
        }
        if item.kind == ItemKind::Impl && !item.name.is_empty() {
            return Some(item.name.clone());
        }
    }
    None
}

/// From the `match` keyword at `k`, finds the arms block: the first `{`
/// at parenthesis/bracket depth 0 (struct literals are not legal in
/// scrutinee position, so this is the arms brace), and its match.
fn find_arms_block(f: &SourceFile, k: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    let mut j = k + 1;
    while j < f.sig_len() {
        match f.sig_text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                if depth == 0 {
                    return None; // `match` inside a macro fragment
                }
                depth -= 1;
            }
            "{" => {
                if depth == 0 {
                    let close = f.matching_brace(j);
                    if close >= f.sig_len() {
                        return None; // unbalanced: reported separately
                    }
                    return Some((j, close));
                }
                // A block inside the scrutinee's parens: skip it.
                let close = f.matching_brace(j);
                if close >= f.sig_len() {
                    return None;
                }
                j = close;
            }
            ";" | "}" => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

fn parse_arms(f: &SourceFile, open: usize, close: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Leading `|` of an or-pattern is part of the same arm.
        if f.sig_text(j) == "|" {
            j += 1;
            continue;
        }
        let pos = f.sig_start(j);
        let mut pattern = Vec::new();
        let mut has_guard = false;
        let mut depth = 0usize;
        // Pattern (and guard) tokens up to `=>` at depth 0.
        while j < close {
            let t = f.sig_text(j);
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "=" if depth == 0 && f.sig_text(j + 1) == ">" => {
                    j += 2;
                    break;
                }
                "if" if depth == 0 => {
                    has_guard = true;
                }
                _ => {}
            }
            if !has_guard {
                pattern.push(t.to_string());
            }
            j += 1;
        }
        if pattern.is_empty() && !has_guard {
            break; // trailing tokens before `}`: done
        }
        arms.push(Arm {
            pos,
            pattern,
            has_guard,
        });
        // Arm body: a block, or an expression up to `,` at depth 0.
        if f.sig_text(j) == "{" {
            let body_close = f.matching_brace(j);
            j = (body_close + 1).min(close);
            if f.sig_text(j) == "," {
                j += 1;
            }
            continue;
        }
        let mut depth = 0usize;
        while j < close {
            match f.sig_text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "," if depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    arms
}

/// An enum definition recorded in the workspace index.
#[derive(Debug, Clone)]
pub struct EnumInfo {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// Whether a `// miv-analyze: exhaustive` tag attaches to it.
    pub exhaustive: bool,
    /// Byte offset of the `enum` keyword in the defining file.
    pub head: usize,
}

/// A function signature recorded in the workspace index: the
/// significant tokens from `fn` through the end of the header
/// (before the body), joined with single spaces.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// The signature-ish token span.
    pub sig: String,
}

/// The workspace-level index: everything the cross-file rules consult.
/// All maps are BTree-ordered, so iteration — and therefore every
/// report derived from the index — is deterministic.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Enum name → definitions (a name can legitimately recur across
    /// files; rules that need a unique target prefer the tagged one).
    pub enums: BTreeMap<String, Vec<EnumInfo>>,
    /// Function name → signatures across the workspace.
    pub fns: BTreeMap<String, Vec<FnSig>>,
    /// File → every qualified `A::B` token pair in the file (test
    /// spans included: coverage tables may live in test modules).
    pub qualified: BTreeMap<String, BTreeSet<(String, String)>>,
    /// Every file the index saw.
    pub files: BTreeSet<String>,
    /// Aggregated item counts.
    pub counts: ItemCounts,
}

impl WorkspaceIndex {
    /// Folds one file's model into the index.
    pub fn absorb_file(&mut self, rel_path: &str, f: &SourceFile, model: &FileModel) {
        self.files.insert(rel_path.to_string());
        self.counts.absorb(&model.counts);

        fn walk(idx: &mut WorkspaceIndex, rel: &str, f: &SourceFile, items: &[Item]) {
            for item in items {
                match item.kind {
                    ItemKind::Enum => {
                        idx.enums
                            .entry(item.name.clone())
                            .or_default()
                            .push(EnumInfo {
                                file: rel.to_string(),
                                variants: item.variants.clone(),
                                exhaustive: item.exhaustive_tag,
                                head: item.head,
                            });
                    }
                    ItemKind::Fn => {
                        let sig_end = item
                            .body_sig
                            .map(|(s, _)| s.saturating_sub(1))
                            .unwrap_or(item.sig_range.1);
                        let sig: Vec<&str> = (item.sig_range.0..sig_end.min(item.sig_range.1))
                            .map(|m| f.sig_text(m))
                            .collect();
                        idx.fns.entry(item.name.clone()).or_default().push(FnSig {
                            file: rel.to_string(),
                            sig: sig.join(" "),
                        });
                    }
                    _ => {}
                }
                walk(idx, rel, f, &item.children);
            }
        }
        walk(self, rel_path, f, &model.items);

        let quals = self.qualified.entry(rel_path.to_string()).or_default();
        for k in 0..f.sig_len() {
            if f.sig_kind(k) == Some(TokenKind::Ident)
                && f.sig_text(k + 1) == ":"
                && f.sig_text(k + 2) == ":"
                && f.sig_kind(k + 3) == Some(TokenKind::Ident)
            {
                quals.insert((f.sig_text(k).to_string(), f.sig_text(k + 3).to_string()));
            }
        }
    }

    /// The unique definition of a tagged enum by name: the tagged one
    /// when exactly one definition carries the tag, else the first in
    /// file order.
    pub fn enum_named(&self, name: &str) -> Option<&EnumInfo> {
        let defs = self.enums.get(name)?;
        defs.iter().find(|d| d.exhaustive).or_else(|| defs.first())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn model_of(src: &str) -> FileModel {
        FileModel::build(&SourceFile::new(src))
    }

    #[test]
    fn items_partition_top_level() {
        let src = "#![allow(dead_code)]\nuse std::fmt;\n\npub struct S { a: u8 }\n\
                   impl S { fn f(&self) -> u8 { self.a } }\nconst C: [u8; 2] = [1, 2];\n";
        let m = model_of(src);
        assert!(m.brace_errors.is_empty());
        let spans: Vec<(usize, usize)> = m.items.iter().map(|i| (i.start, i.end)).collect();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "item spans overlap: {w:?}");
        }
        assert_eq!(m.items.len(), 5);
        assert_eq!(m.items[2].kind, ItemKind::Struct);
        assert_eq!(m.items[3].kind, ItemKind::Impl);
        assert_eq!(m.items[3].children.len(), 1);
        assert_eq!(m.items[3].children[0].name, "f");
    }

    #[test]
    fn enum_variants_extracted() {
        let src = "pub enum E { A, B(u8), C { x: u64 }, D = 4 }\n";
        let m = model_of(src);
        let enums = m.enums();
        assert_eq!(enums.len(), 1);
        assert_eq!(enums[0].variants, ["A", "B", "C", "D"]);
    }

    #[test]
    fn match_arms_parsed() {
        let src = "fn f(e: E) -> u8 { match e { E::A => 1, E::B(x) if x > 2 => x, _ => 0 } }\n";
        let m = model_of(src);
        assert_eq!(m.matches.len(), 1);
        let arms = &m.matches[0].arms;
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].head_paths(), [("E".to_string(), "A".to_string())]);
        assert!(arms[1].has_guard);
        assert!(arms[2].is_wildcard());
    }

    #[test]
    fn self_resolves_through_impl() {
        let src = "impl E { fn go(&self) -> u8 { match self { Self::A => 1, Self::B => 2 } } }\n";
        let m = model_of(src);
        assert_eq!(m.matches.len(), 1);
        assert_eq!(m.matches[0].enclosing_impl.as_deref(), Some("E"));
    }

    #[test]
    fn brace_errors_reported() {
        let src = "fn f() { if x { }\n"; // one `{` never closes
        let m = model_of(src);
        assert_eq!(m.brace_errors.len(), 1);

        let src = "fn f() { }\n}\n"; // stray closing brace
        let m = model_of(src);
        assert_eq!(m.brace_errors.len(), 1);
    }

    #[test]
    fn exhaustive_tag_attaches_to_next_enum() {
        let src = "// miv-analyze: exhaustive\n#[derive(Debug)]\npub enum E { A, B }\n";
        let m = model_of(src);
        assert!(m.enums()[0].exhaustive_tag);
        assert!(m.unattached_tags.is_empty());

        let src = "// miv-analyze: exhaustive\nfn no_enum_here() {}\n";
        let m = model_of(src);
        assert_eq!(m.unattached_tags.len(), 1);
    }
}
