//! The rule catalogue: every project invariant the analyzer enforces.
//!
//! Each rule encodes a *real* past or latent footgun from this
//! workspace's history (see INVARIANTS.md for the mapping from prose
//! subtlety to rule id). Rules come in two families:
//!
//! * **token** rules work on the significant-token stream of a
//!   [`SourceFile`] — comments, doc examples and string literals can
//!   never trigger them,
//! * **structural** rules work on the [`FileModel`] item tree and the
//!   cross-file [`WorkspaceIndex`] — they see enums with their variant
//!   lists, `match` arms, impl blocks and constructor pairings.
//!
//! Rules scope themselves by [`FileKind`] and crate id. Suppression is
//! per-line via `// miv-analyze: allow(rule-id, reason="...")` with a
//! mandatory justification; an allow that shields nothing is itself a
//! finding (`unused-suppression`).

use std::collections::BTreeSet;

use crate::lexer::TokenKind;
use crate::model::{FileModel, Item, ItemKind, WorkspaceIndex};
use crate::scan::{FileContext, FileKind, SourceFile};

/// A raw finding before suppression and line/col resolution: a byte
/// offset into the file plus a message.
#[derive(Debug)]
pub struct RawFinding {
    /// Byte offset the finding anchors to.
    pub pos: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Which machinery a rule runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleFamily {
    /// Flat significant-token patterns (the PR 5 engine).
    Token,
    /// Item-model / workspace-index queries (the PR 10 engine).
    Structural,
}

impl RuleFamily {
    /// Stable label for `--list-rules` and the findings JSON.
    pub fn label(self) -> &'static str {
        match self {
            RuleFamily::Token => "token",
            RuleFamily::Structural => "structural",
        }
    }
}

/// Everything a rule's checker can see: the file under test plus the
/// structural model and the workspace-wide index.
pub struct RuleCtx<'a> {
    /// Path classification of the file under test.
    pub file: &'a FileContext,
    /// The lexed file (significant-token views, test spans, allows).
    pub src: &'a SourceFile<'a>,
    /// The file's item model.
    pub model: &'a FileModel,
    /// The cross-file index (a single-file index in `check_source`).
    pub index: &'a WorkspaceIndex,
}

/// One rule: id, family, documentation, and the checker itself.
pub struct Rule {
    /// Stable kebab-case id, used in directives and the findings JSON.
    pub id: &'static str,
    /// Token or structural engine.
    pub family: RuleFamily,
    /// One-line summary shown by `--list-rules` and embedded in the
    /// findings report.
    pub summary: &'static str,
    /// Longer rationale printed by `--explain`.
    pub doc: &'static str,
    /// A minimal firing example printed by `--explain`.
    pub fixture: &'static str,
    /// The INVARIANTS.md row the rule mechanizes.
    pub invariant: &'static str,
    /// The checker: pushes raw findings for one file.
    pub check: fn(&RuleCtx, &mut Vec<RawFinding>),
}

/// Rules whose findings are file-scoped (an `allow` anywhere in the
/// file suppresses them), because the violation is the *absence* of
/// something rather than a line of code.
pub const FILE_SCOPE_RULES: &[&str] = &["forbid-unsafe-header"];

/// The full catalogue, in the order findings are reported.
pub const CATALOGUE: &[Rule] = &[
    Rule {
        id: "no-wall-clock",
        family: RuleFamily::Token,
        summary: "Instant::now/SystemTime are forbidden outside tests and benches: sim results \
                  must be bit-reproducible; miv-bench's Harness is the one justified site",
        doc: "The simulator's whole value rests on bit-reproducible runs: every figure in \
              EXPERIMENTS.md is regenerated from scratch in CI and compared byte-for-byte. A \
              stray `Instant::now` or `SystemTime` read turns a figure into a flake. Wall \
              clocks are confined to tests, benches, and explicitly justified harness code.",
        fixture: "use std::time::Instant;\nfn tick() -> std::time::Instant { Instant::now() }",
        invariant: "Simulation results are bit-reproducible for a fixed config at any --jobs",
        check: check_no_wall_clock,
    },
    Rule {
        id: "deterministic-iteration",
        family: RuleFamily::Token,
        summary: "HashMap/HashSet are forbidden in library and binary code: randomized iteration \
                  order has previously leaked into reports; use BTreeMap/BTreeSet or justify \
                  lookup-only use",
        doc: "std's hash containers iterate in a randomized order, which has previously leaked \
              into reports and broken byte-determinism. A HashMap that is only ever looked up \
              is safe, but history shows the iteration creeps in later — so the type itself is \
              the lint, and a justified `allow` documents the lookup-only contract.",
        fixture: "use std::collections::HashMap;\nfn f() -> HashMap<u64, u64> { HashMap::new() }",
        invariant: "Reports and findings JSON are byte-identical across runs and platforms",
        check: check_deterministic_iteration,
    },
    Rule {
        id: "no-unwrap-in-lib",
        family: RuleFamily::Token,
        summary: ".unwrap() and panic!/todo!/unimplemented! are forbidden in library code \
                  (tests, benches and binaries exempt); use ? or .expect(\"documented \
                  invariant\")",
        doc: "A panicking worker kills a whole parallel sweep and loses every sibling's \
              results. Library code returns errors; `.expect(\"message\")` is the sanctioned \
              form for internal invariants — the message *is* the justification — so it is \
              deliberately not flagged.",
        fixture: "pub fn parse(x: Option<u8>) -> u8 { x.unwrap() }",
        invariant: "Library code is panic-free; worker failures surface as errors, not aborts",
        check: check_no_unwrap_in_lib,
    },
    Rule {
        id: "forbid-unsafe-header",
        family: RuleFamily::Token,
        summary: "every crate root must carry #![forbid(unsafe_code)]",
        doc: "The security claim of the whole reproduction rests on the type system; one \
              dropped header silently re-opens the door. Every crate root must carry \
              `#![forbid(unsafe_code)]` — forbid, not deny, so no inner allow can override it.",
        fixture: "// src/lib.rs without the header:\npub fn f() {}",
        invariant: "No unsafe code anywhere in the workspace",
        check: check_forbid_unsafe_header,
    },
    Rule {
        id: "no-truncating-cast",
        family: RuleFamily::Token,
        summary: "`as u8/u16/u32` narrowing is forbidden in the address/size crates (core, mem, \
                  sim, adversary) except on literals and SCREAMING_CASE constants; use \
                  try_into/checked helpers (the parse_size overflow class)",
        doc: "The PR-2 parse_size bug was exactly this shape: a u64 address quietly folded \
              into a smaller type and wrapped. In the address/size crates, `as u8/u16/u32` on \
              anything but a literal or SCREAMING_CASE constant (where the value is in view) \
              must go through try_into/checked conversion.",
        fixture: "pub fn lo(addr: u64) -> u32 { addr as u32 }",
        invariant: "Address and size arithmetic never silently truncates",
        check: check_no_truncating_cast,
    },
    Rule {
        id: "reset-preserves-schedules",
        family: RuleFamily::Token,
        summary: "a reset* method must not .clear() a schedule field: booked bus/hash-unit \
                  transfers would be forgotten and split runs would diverge from unsplit runs",
        doc: "The PR-4 bug as a rule: `L2Controller::reset_stats` once cleared the bus \
              IntervalSchedule, forgetting booked background-verification transfers, so a \
              split run timed differently from an unsplit run. Any `fn reset*` that calls \
              `.clear()` on a field whose name contains `sched` fires.",
        fixture: "fn reset_stats(&mut self) { self.bus_schedule.clear(); }",
        invariant: "Split runs and unsplit runs produce identical timing",
        check: check_reset_preserves_schedules,
    },
    Rule {
        id: "rc-not-sent",
        family: RuleFamily::Token,
        summary: "std::rc is non-Send and breaks the parallel sweep unless crossed as a \
                  plain-data snapshot; justify every use against the snapshot-absorb pattern. \
                  In the serving layer (serve*.rs) the bar is stricter: no Rc/RefCell ident at \
                  all, so no aliased handle can leak into a shard task signature",
        doc: "std::rc types are non-Send; the parallel sweep crosses telemetry between \
              threads as plain-data snapshots instead. Any Rc must either live behind that \
              pattern (justified allow) or not exist. The serving layer gets a stricter \
              boundary: in a serve*.rs file any Rc/RefCell ident fires, including uses the \
              path check cannot see (`Rc::new` after `use std::rc::Rc`).",
        fixture: "use std::rc::Rc;\nfn f() -> Rc<u8> { Rc::new(1) }",
        invariant: "Everything crossing the worker pool is plain Send data",
        check: check_rc_not_sent,
    },
    Rule {
        id: "span-balance",
        family: RuleFamily::Token,
        summary: "span_enter/span_exit are forbidden outside miv-obs: an unbalanced manual \
                  span (early return, ?) silently re-parents later attribution; use the RAII \
                  SpanTracer::span guard",
        doc: "A `span_enter` whose `span_exit` is skipped by an early return or a `?` \
              silently re-parents every later attribution in the run. The RAII guard from \
              `SpanTracer::span` cannot unbalance, so it is the only sanctioned form in \
              instrumented code; manual bracketing stays inside the tracer's own crate.",
        fixture: "fn f(t: &mut SpanTracer) { t.span_enter(\"x\"); }",
        invariant: "Cycle attribution spans are always balanced",
        check: check_span_balance,
    },
    Rule {
        id: "doc-comment-required",
        family: RuleFamily::Token,
        summary: "every pub item in miv-core and miv-mem needs a doc comment (pub(crate), \
                  pub use, pub mod declarations and struct fields exempt)",
        doc: "The public API of the paper-contribution crates stays documented. \
              `pub(crate)`/`pub(super)`, `pub use` re-exports and struct fields are exempt, \
              as is `pub mod x;` (a module documents itself with inner `//!` docs in its own \
              file); attributes between the doc comment and the item are fine.",
        fixture: "pub fn undocumented() {}",
        invariant: "Paper-contribution crates have a fully documented public API",
        check: check_doc_comment_required,
    },
    Rule {
        id: "exhaustive-variant-match",
        family: RuleFamily::Structural,
        summary: "a match over an enum tagged `// miv-analyze: exhaustive` must name every \
                  variant; wildcard `_` (or binding) arms fire — adding a variant must break \
                  every dispatch site loudly",
        doc: "The schemes, tamper kinds, attack classes and hash algorithms are closed \
              vocabularies: the paper's coverage claims quantify over all of them. A wildcard \
              arm in a dispatch over one of these enums means a future variant silently falls \
              into the default — exactly how taxonomy coverage shrinks without any test \
              failing. Tag the enum with `// miv-analyze: exhaustive` and every match over it \
              (matches whose arm heads name the enum's variants) must name each variant \
              explicitly; rustc then turns every future variant addition into a compile error \
              at every dispatch site. Arms the model cannot interpret (tuple bindings, \
              payload-only patterns) make the match opaque and exempt — the rule never \
              guesses.",
        fixture: "// miv-analyze: exhaustive\npub enum Algo { A, B }\n\
                  fn f(a: Algo) -> u8 { match a { Algo::A => 1, _ => 0 } }",
        invariant: "Every scheme covers the full tamper taxonomy; closed enums dispatch \
                    exhaustively",
        check: check_exhaustive_variant_match,
    },
    Rule {
        id: "fallible-constructor-pairing",
        family: RuleFamily::Structural,
        summary: "a pub fn new in core/mem/store that can panic must have a try_new sibling, \
                  and a new with a try_new sibling must be a thin .expect(\"documented \
                  invariant\") wrapper",
        doc: "Workers build engines from config; a constructor that panics on a bad config \
              kills the whole sweep instead of reporting one failed point. In the core, mem \
              and store crates every `pub fn new` that contains a panic path (assert!, \
              unwrap, expect, panic!, unreachable!) must be paired with a `try_new` returning \
              Result, and the `new` itself must be nothing but a thin \
              `Self::try_new(..).expect(\"documented invariant\")` forwarding wrapper — one \
              panic site, one message, one place to audit.",
        fixture: "impl Cache {\n    pub fn new(n: usize) -> Self { assert!(n > 0); /* .. */ }\n}",
        invariant: "No panicking constructor without a try_ sibling",
        check: check_fallible_constructor_pairing,
    },
    Rule {
        id: "plumbed-enum",
        family: RuleFamily::Structural,
        summary: "adding a variant to a plumbed enum (HashAlgo, Scheme, AttackClass) without \
                  touching its carrier const and dispatch tables fires — driven by the plumb! \
                  manifest",
        doc: "ROADMAP: every new scheme must slot into `mivsim attack` and detect the full \
              taxonomy, and every new hash algorithm must appear in the figures. The plumb! \
              manifest in rules.rs declares, per enum: the carrier const (ALL) that must name \
              every variant, the dispatch files that must iterate `Enum::ALL`, and the \
              variant-site files that must name every variant explicitly. Adding a variant \
              without re-plumbing fires on the defining file; dispatching through the carrier \
              is what makes a new variant flow to campaigns and figures automatically.",
        fixture: "// in the defining file of a manifest enum:\n\
                  pub enum HashAlgo { Md5, Sha1, Sha256, Blake3 } // Blake3 not in ALL",
        invariant: "New enum variants reach the attack campaigns and figures automatically",
        check: check_plumbed_enum,
    },
    Rule {
        id: "unused-suppression",
        family: RuleFamily::Structural,
        summary: "an allow(rule, reason=..) whose scope shields no finding of that rule is \
                  itself a finding — keeps the justified-suppression budget honest",
        doc: "Suppressions are a budget, not a convenience: each one documents a reviewed \
              exception. When the code under an allow changes so the rule no longer fires, \
              the stale directive keeps shielding the lines around it and its reason rots. \
              The engine tracks which allows actually waived a finding; any allow naming a \
              valid rule that shields nothing becomes a finding at the directive's own line. \
              Unsuppressible by design — delete the directive.",
        fixture: "// miv-analyze: allow(no-wall-clock, reason=\"stale\")\nfn f() {}",
        invariant: "Every committed suppression shields a real finding and is baselined",
        check: check_unused_suppression,
    },
];

/// Looks a rule up by id (used to validate directives).
pub fn find_rule(id: &str) -> Option<&'static Rule> {
    CATALOGUE.iter().find(|r| r.id == id)
}

fn code_kinds(kind: FileKind) -> bool {
    matches!(kind, FileKind::Lib | FileKind::Bin)
}

/// Rule 1: no wall clocks outside tests/benches.
fn check_no_wall_clock(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if !code_kinds(ctx.kind) {
        return;
    }
    for k in 0..f.sig_len() {
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        if f.match_seq(k, &["Instant", ":", ":", "now"]) {
            out.push(RawFinding {
                pos,
                message: "wall-clock read (Instant::now) in deterministic code".to_string(),
            });
        } else if f.sig_text(k) == "SystemTime" {
            out.push(RawFinding {
                pos,
                message: "wall-clock type (SystemTime) in deterministic code".to_string(),
            });
        }
    }
}

/// Rule 2: no hash-ordered containers in non-test code.
fn check_deterministic_iteration(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if !code_kinds(ctx.kind) {
        return;
    }
    for k in 0..f.sig_len() {
        let t = f.sig_text(k);
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        out.push(RawFinding {
            pos,
            message: format!(
                "{t} iterates in a randomized order; use BTree{} or justify lookup-only use",
                &t[4..]
            ),
        });
    }
}

/// Rule 3: no `.unwrap()` / `panic!` / `todo!` / `unimplemented!` in
/// library code.
fn check_no_unwrap_in_lib(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if ctx.kind != FileKind::Lib {
        return;
    }
    for k in 0..f.sig_len() {
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        if f.match_seq(k, &[".", "unwrap", "(", ")"]) {
            out.push(RawFinding {
                pos,
                message: ".unwrap() in library code; use ? or .expect(\"documented invariant\")"
                    .to_string(),
            });
        } else {
            let t = f.sig_text(k);
            if (t == "panic" || t == "todo" || t == "unimplemented") && f.sig_text(k + 1) == "!" {
                out.push(RawFinding {
                    pos,
                    message: format!("{t}! in library code; return an error instead"),
                });
            }
        }
    }
}

/// Rule 4: every crate root keeps `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe_header(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if !ctx.is_crate_root {
        return;
    }
    for k in 0..f.sig_len() {
        if f.match_seq(k, &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]) {
            return;
        }
    }
    out.push(RawFinding {
        pos: 0,
        message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
    });
}

const CAST_SCOPED_CRATES: &[&str] = &["core", "mem", "sim", "adversary"];
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32"];

/// Rule 5: no silent narrowing casts in address/size arithmetic.
fn check_no_truncating_cast(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if ctx.kind != FileKind::Lib || !CAST_SCOPED_CRATES.contains(&ctx.crate_id.as_str()) {
        return;
    }
    for k in 1..f.sig_len() {
        if f.sig_text(k) != "as" || !NARROW_TARGETS.contains(&f.sig_text(k + 1)) {
            continue;
        }
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        let prev = f.sig_text(k - 1);
        let prev_kind = f.sig_kind(k - 1);
        let literal = prev_kind == Some(TokenKind::Number) || prev == "true" || prev == "false";
        let screaming = prev_kind == Some(TokenKind::Ident)
            && prev.len() > 1
            && prev.chars().any(|c| c.is_ascii_uppercase())
            && prev
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
        if literal || screaming {
            continue;
        }
        out.push(RawFinding {
            pos,
            message: format!(
                "narrowing `as {}` on a non-literal value; use try_into/checked conversion",
                f.sig_text(k + 1)
            ),
        });
    }
}

/// Rule 6: a `reset*` method must not clear a schedule.
fn check_reset_preserves_schedules(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if ctx.kind != FileKind::Lib {
        return;
    }
    let mut k = 0;
    while k + 1 < f.sig_len() {
        if f.sig_text(k) != "fn" || !f.sig_text(k + 1).contains("reset") {
            k += 1;
            continue;
        }
        if f.in_test_span(f.sig_start(k)) {
            k += 1;
            continue;
        }
        // Find the body: first `{` after the signature.
        let mut open = k + 2;
        while open < f.sig_len() && f.sig_text(open) != "{" && f.sig_text(open) != ";" {
            open += 1;
        }
        if f.sig_text(open) != "{" {
            k = open + 1;
            continue;
        }
        let close = f.matching_brace(open);
        for j in open..close {
            let ident = f.sig_text(j);
            if f.sig_kind(j) != Some(TokenKind::Ident) || !ident.to_lowercase().contains("sched") {
                continue;
            }
            // A `.clear(` within the next few tokens of the schedule
            // field catches `self.sched.clear()` and
            // `self.sched.inner.clear()` alike.
            for m in j + 1..(j + 5).min(close) {
                if f.sig_text(m) == "clear" && f.sig_text(m - 1) == "." && f.sig_text(m + 1) == "("
                {
                    out.push(RawFinding {
                        pos: f.sig_start(j),
                        message: format!(
                            "reset method `{}` clears schedule field `{ident}`: booked \
                             transfers would be forgotten (split-run divergence)",
                            f.sig_text(k + 1)
                        ),
                    });
                    break;
                }
            }
        }
        k = close + 1;
    }
}

/// Rule 7: `std::rc` types are non-Send; stricter in the serving layer.
fn check_rc_not_sent(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if !code_kinds(ctx.kind) {
        return;
    }
    let serving_layer = ctx
        .rel_path
        .rsplit('/')
        .next()
        .is_some_and(|name| name.starts_with("serve") && name.ends_with(".rs"));
    for k in 0..f.sig_len() {
        if f.sig_kind(k) != Some(TokenKind::Ident) {
            continue;
        }
        let t = f.sig_text(k);
        let path_use = t == "rc" && f.match_seq(k + 1, &[":", ":"]);
        let serve_handle = serving_layer && (t == "Rc" || t == "RefCell");
        if !path_use && !serve_handle {
            continue;
        }
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        let message = if path_use {
            "std::rc type in non-test code: non-Send, breaks the parallel sweep unless \
             crossed as a plain-data snapshot"
                .to_string()
        } else {
            format!(
                "`{t}` in the serving layer: shard tasks must cross the worker pool as \
                 plain Send data, never as Rc-family handles"
            )
        };
        out.push(RawFinding { pos, message });
    }
}

/// Rule 8: manual span bracketing stays inside the tracer's own crate.
fn check_span_balance(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if !code_kinds(ctx.kind) || ctx.crate_id == "obs" {
        return;
    }
    for k in 0..f.sig_len() {
        let t = f.sig_text(k);
        if t != "span_enter" && t != "span_exit" {
            continue;
        }
        if f.sig_kind(k) != Some(TokenKind::Ident) {
            continue;
        }
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        out.push(RawFinding {
            pos,
            message: format!(
                "manual `{t}` outside miv-obs: unbalanced spans skew cycle attribution; use \
                 the RAII SpanTracer::span guard"
            ),
        });
    }
}

const DOC_SCOPED_CRATES: &[&str] = &["core", "mem"];
const DOC_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "union", "trait", "type", "static", "const",
];

/// Rule 9: public API of the paper-contribution crates stays
/// documented.
fn check_doc_comment_required(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if ctx.kind != FileKind::Lib || !DOC_SCOPED_CRATES.contains(&ctx.crate_id.as_str()) {
        return;
    }
    for k in 0..f.sig_len() {
        if f.sig_text(k) != "pub" || f.sig_kind(k) != Some(TokenKind::Ident) {
            continue;
        }
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        if f.sig_text(k + 1) == "(" {
            continue; // pub(crate)/pub(super)/pub(in ...) are internal.
        }
        // Scan past modifiers to the item keyword; `pub const fn` is a
        // fn, `pub const NAME` is a const.
        let mut j = k + 1;
        let mut item = None;
        while j < k + 5 {
            let t = f.sig_text(j);
            if t == "const" && f.sig_text(j + 1) == "fn" {
                j += 1;
                continue;
            }
            if DOC_ITEM_KEYWORDS.contains(&t) {
                item = Some((t, f.sig_text(j + 1).to_string()));
                break;
            }
            if t == "use" {
                break; // re-exports are exempt
            }
            if !matches!(t, "unsafe" | "async" | "extern") {
                break; // a field or something unexpected — not an item
            }
            j += 1;
        }
        let Some((item_kw, name)) = item else {
            continue;
        };
        if !has_doc_before(f, k) {
            out.push(RawFinding {
                pos,
                message: format!("undocumented pub {item_kw} `{name}`"),
            });
        }
    }
}

/// Whether the `pub` at significant index `k` is preceded (skipping
/// whitespace and attributes) by a doc comment or a `#[doc...]`.
fn has_doc_before(f: &SourceFile, k: usize) -> bool {
    let Some(&mut_start) = f.sig.get(k) else {
        return true;
    };
    let mut i = mut_start;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        let t = &f.tokens[i];
        match t.kind {
            TokenKind::Whitespace => continue,
            TokenKind::LineComment => {
                // `//!` is an *inner* doc: it documents the enclosing
                // module, not the following item.
                if t.text(f.src).starts_with("///") {
                    return true;
                }
                continue; // plain comments don't document, keep looking
            }
            TokenKind::BlockComment => {
                if t.text(f.src).starts_with("/**") {
                    return true;
                }
                continue;
            }
            _ => {
                // An attribute ends with `]`; walk back to its `#`,
                // check for #[doc...], then keep scanning before it.
                if t.text(f.src) == "]" {
                    let mut depth = 1usize;
                    let mut saw_doc = false;
                    while i > 0 && depth > 0 {
                        i -= 1;
                        match f.tokens[i].kind {
                            TokenKind::Punct => match f.tokens[i].text(f.src) {
                                "]" => depth += 1,
                                "[" => depth -= 1,
                                _ => {}
                            },
                            TokenKind::Ident if f.tokens[i].text(f.src) == "doc" => {
                                saw_doc = true;
                            }
                            _ => {}
                        }
                    }
                    if saw_doc {
                        return true;
                    }
                    // Step back over the `#` (and `!` for inner attrs).
                    while i > 0 {
                        let prev = &f.tokens[i - 1];
                        if matches!(prev.kind, TokenKind::Punct)
                            && matches!(prev.text(f.src), "#" | "!")
                        {
                            i -= 1;
                        } else {
                            break;
                        }
                    }
                    continue;
                }
                return false;
            }
        }
    }
}

/// Rule 10: matches over `exhaustive`-tagged enums name every variant.
fn check_exhaustive_variant_match(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if !code_kinds(ctx.kind) {
        return;
    }
    'matches: for m in &c.model.matches {
        if f.in_test_span(m.pos) {
            continue;
        }
        // Resolve each arm alternative to (enum_name, variant) where
        // possible; `Self` goes through the enclosing impl.
        let resolve = |head: &str| -> Option<String> {
            if head == "Self" {
                m.enclosing_impl.clone()
            } else {
                Some(head.to_string())
            }
        };
        // The target: the first arm head that names a *tagged* enum.
        let mut target: Option<String> = None;
        for arm in &m.arms {
            for (head, _) in arm.head_paths() {
                if let Some(name) = resolve(&head) {
                    if c.index.enum_named(&name).is_some_and(|e| e.exhaustive) {
                        target = Some(name);
                        break;
                    }
                }
            }
            if target.is_some() {
                break;
            }
        }
        let Some(enum_name) = target else {
            continue;
        };
        let info = c
            .index
            .enum_named(&enum_name)
            .expect("target came from the index");
        let all_variants: BTreeSet<&str> = info.variants.iter().map(String::as_str).collect();

        let mut named: BTreeSet<String> = BTreeSet::new();
        let mut wildcard_arm: Option<usize> = None;
        for arm in &m.arms {
            if arm.is_wildcard() {
                wildcard_arm = Some(arm.pos);
                continue;
            }
            let paths = arm.head_paths();
            if paths.is_empty() {
                // A structured pattern the model cannot interpret
                // (tuple binding, literal, payload-only): the whole
                // match is opaque — never guess.
                continue 'matches;
            }
            for (head, variant) in paths {
                match resolve(&head) {
                    Some(name) if name == enum_name => {
                        if all_variants.contains(variant.as_str()) {
                            named.insert(variant);
                        } else {
                            // Names the enum but not a variant
                            // (associated const pattern): opaque.
                            continue 'matches;
                        }
                    }
                    _ => continue 'matches, // mixed-enum match: opaque
                }
            }
        }
        if let Some(pos) = wildcard_arm {
            out.push(RawFinding {
                pos,
                message: format!(
                    "wildcard arm in match over exhaustive enum `{enum_name}`: name every \
                     variant so adding one breaks this dispatch loudly"
                ),
            });
            continue;
        }
        let missing: Vec<&str> = info
            .variants
            .iter()
            .map(String::as_str)
            .filter(|v| !named.contains(*v))
            .collect();
        if !missing.is_empty() {
            out.push(RawFinding {
                pos: m.pos,
                message: format!(
                    "match over exhaustive enum `{enum_name}` does not name variant(s) {}",
                    missing.join(", ")
                ),
            });
        }
    }
}

const CTOR_SCOPED_CRATES: &[&str] = &["core", "mem", "store"];
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Rule 11: panicking `pub fn new` constructors pair with `try_new`.
fn check_fallible_constructor_pairing(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if ctx.kind != FileKind::Lib || !CTOR_SCOPED_CRATES.contains(&ctx.crate_id.as_str()) {
        return;
    }
    for imp in c.model.impls() {
        if imp.test_gated || f.in_test_span(imp.head) {
            continue;
        }
        let new_fn = imp
            .children
            .iter()
            .find(|i| i.kind == ItemKind::Fn && i.name == "new" && i.is_pub);
        let Some(new_fn) = new_fn else {
            continue;
        };
        if new_fn.test_gated || f.in_test_span(new_fn.head) {
            continue;
        }
        let has_try = imp
            .children
            .iter()
            .any(|i| i.kind == ItemKind::Fn && i.name == "try_new");
        let Some((body_start, body_end)) = new_fn.body_sig else {
            continue;
        };
        if has_try {
            let mut calls_try = false;
            let mut calls_expect = false;
            for k in body_start..body_end {
                match f.sig_text(k) {
                    "try_new" => calls_try = true,
                    "expect" => calls_expect = true,
                    _ => {}
                }
            }
            if !calls_try || !calls_expect {
                out.push(RawFinding {
                    pos: new_fn.head,
                    message: format!(
                        "`{}::new` has a try_new sibling but is not a thin \
                         try_new(..).expect(\"documented invariant\") wrapper",
                        imp.name
                    ),
                });
            }
            continue;
        }
        if let Some(tok) = first_panic_token(f, body_start, body_end) {
            out.push(RawFinding {
                pos: new_fn.head,
                message: format!(
                    "`{}::new` can panic ({tok}) and has no try_new sibling; add \
                     try_new -> Result and make new a thin .expect wrapper",
                    imp.name
                ),
            });
        }
    }
}

/// The first panic-capable token in a significant range, or None.
/// `debug_assert*` is exempt (stripped in release, the paper's
/// measurement mode).
fn first_panic_token(f: &SourceFile, start: usize, end: usize) -> Option<String> {
    for k in start..end {
        let t = f.sig_text(k);
        if PANIC_MACROS.contains(&t) && f.sig_text(k + 1) == "!" {
            return Some(format!("{t}!"));
        }
        if (t == "unwrap" || t == "expect") && k > 0 && f.sig_text(k - 1) == "." {
            return Some(format!(".{t}()"));
        }
        // Slice indexing panics too, but `[` is far too noisy to flag;
        // the rule targets explicit validation panics.
    }
    None
}

/// One entry of the plumb manifest: an enum whose variants must flow
/// through a carrier const into declared dispatch files.
pub struct PlumbEntry {
    /// The enum's name as defined in its file.
    pub enum_name: &'static str,
    /// The carrier const (e.g. `ALL`) in the defining file that must
    /// name every variant.
    pub carrier: &'static str,
    /// Workspace-relative files that must reference `Enum::CARRIER`
    /// (iterating the carrier is what auto-plumbs future variants).
    pub dispatch: &'static [&'static str],
    /// Workspace-relative files that must name every variant
    /// explicitly as `Enum::Variant` (hand-maintained tables).
    pub variant_sites: &'static [&'static str],
}

/// Declares the plumb manifest. Purely declarative: each block names
/// an enum, its carrier const, the files that must dispatch through
/// the carrier, and the files that must name every variant.
macro_rules! plumb {
    ($( { $enum_name:literal via $carrier:literal,
          dispatch: [$($d:literal),* $(,)?],
          variant_sites: [$($v:literal),* $(,)?] } ),* $(,)?) => {
        &[ $( PlumbEntry {
            enum_name: $enum_name,
            carrier: $carrier,
            dispatch: &[$($d),*],
            variant_sites: &[$($v),*],
        } ),* ]
    };
}

/// The workspace's plumbed enums. Adding a variant to one of these
/// without updating its carrier and hand-maintained tables fires
/// `plumbed-enum` on the defining file.
pub const PLUMB_MANIFEST: &[PlumbEntry] = plumb![
    {
        "HashAlgo" via "ALL",
        dispatch: [
            "crates/sim/src/experiments.rs",
            "crates/adversary/src/cell.rs",
        ],
        variant_sites: []
    },
    {
        "Scheme" via "ALL",
        dispatch: [
            "crates/adversary/src/campaign.rs",
            "crates/sim/src/cli.rs",
        ],
        variant_sites: []
    },
    {
        "AttackClass" via "ALL",
        dispatch: ["crates/adversary/src/campaign.rs"],
        variant_sites: ["crates/adversary/src/cell.rs"]
    },
];

/// Rule 12: manifest enums stay plumbed into their dispatch tables.
fn check_plumbed_enum(c: &RuleCtx, out: &mut Vec<RawFinding>) {
    let (ctx, f) = (c.file, c.src);
    if ctx.kind != FileKind::Lib {
        return;
    }
    for entry in PLUMB_MANIFEST {
        let def = c
            .model
            .enums()
            .into_iter()
            .find(|e| e.name == entry.enum_name && !e.test_gated && !f.in_test_span(e.head));
        let Some(def) = def else {
            continue;
        };
        // (a) The carrier const in this file must name every variant.
        match carrier_variants(c.model, f, entry) {
            None => out.push(RawFinding {
                pos: def.head,
                message: format!(
                    "plumbed enum `{}` has no carrier const `{}` in its defining file",
                    entry.enum_name, entry.carrier
                ),
            }),
            Some(named) => {
                let missing: Vec<&str> = def
                    .variants
                    .iter()
                    .map(String::as_str)
                    .filter(|v| !named.contains(*v))
                    .collect();
                if !missing.is_empty() {
                    out.push(RawFinding {
                        pos: def.head,
                        message: format!(
                            "carrier const `{}::{}` does not name variant(s) {}",
                            entry.enum_name,
                            entry.carrier,
                            missing.join(", ")
                        ),
                    });
                }
            }
        }
        // (b) Every dispatch file references Enum::CARRIER.
        for d in entry.dispatch {
            let has = c.index.qualified.get(*d).is_some_and(|q| {
                q.contains(&(entry.enum_name.to_string(), entry.carrier.to_string()))
            });
            if !has {
                out.push(RawFinding {
                    pos: def.head,
                    message: format!(
                        "dispatch file `{d}` does not reference `{}::{}` — the {} table \
                         would miss future variants",
                        entry.enum_name, entry.carrier, entry.enum_name
                    ),
                });
            }
        }
        // (c) Variant-site files name every variant explicitly.
        for site in entry.variant_sites {
            let quals = c.index.qualified.get(*site);
            for v in &def.variants {
                let has =
                    quals.is_some_and(|q| q.contains(&(entry.enum_name.to_string(), v.clone())));
                if !has {
                    out.push(RawFinding {
                        pos: def.head,
                        message: format!(
                            "variant `{}::{v}` is not plumbed into `{site}`",
                            entry.enum_name
                        ),
                    });
                }
            }
        }
    }
}

/// The variant names a carrier const mentions (as `Enum::V` or
/// `Self::V` pairs inside the const's own span), or None when the
/// const does not exist in the file.
fn carrier_variants(
    model: &FileModel,
    f: &SourceFile,
    entry: &PlumbEntry,
) -> Option<BTreeSet<String>> {
    fn find_const<'m>(items: &'m [Item], name: &str) -> Option<&'m Item> {
        for item in items {
            if item.kind == ItemKind::Const && item.name == name {
                return Some(item);
            }
            if let Some(found) = find_const(&item.children, name) {
                return Some(found);
            }
        }
        None
    }
    let konst = find_const(&model.items, entry.carrier)?;
    let (start, end) = konst.sig_range;
    let mut named = BTreeSet::new();
    for k in start..end.min(f.sig_len()) {
        let head = f.sig_text(k);
        if (head == entry.enum_name || head == "Self")
            && f.sig_text(k + 1) == ":"
            && f.sig_text(k + 2) == ":"
            && f.sig_kind(k + 3) == Some(TokenKind::Ident)
        {
            named.insert(f.sig_text(k + 3).to_string());
        }
    }
    Some(named)
}

/// Rule 13: `unused-suppression` is enforced by the engine itself
/// (it needs the waiver bookkeeping that lives there), so the
/// catalogue checker is a no-op — the entry exists so the rule is
/// listable, explainable, and a valid directive target for tooling.
fn check_unused_suppression(_c: &RuleCtx, _out: &mut Vec<RawFinding>) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_ids_unique_and_kebab() {
        let mut seen = BTreeSet::new();
        for r in CATALOGUE {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            assert!(
                r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "non-kebab id {}",
                r.id
            );
            assert!(!r.doc.is_empty() && !r.fixture.is_empty() && !r.invariant.is_empty());
        }
        assert!(CATALOGUE.len() >= 13);
    }

    #[test]
    fn manifest_names_resolve() {
        for e in PLUMB_MANIFEST {
            assert!(!e.enum_name.is_empty() && !e.carrier.is_empty());
            assert!(!e.dispatch.is_empty());
        }
    }
}
