//! The rule catalogue: every project invariant the analyzer enforces.
//!
//! Each rule encodes a *real* past or latent footgun from this
//! workspace's history (see INVARIANTS.md for the mapping from prose
//! subtlety to rule id). Rules work on the significant-token stream of
//! a [`SourceFile`] — comments, doc examples and string literals can
//! never trigger them — and scope themselves by [`FileKind`] and crate
//! id. Suppression is per-line via
//! `// miv-analyze: allow(rule-id, reason="...")` with a mandatory
//! justification.

use crate::lexer::TokenKind;
use crate::scan::{FileContext, FileKind, SourceFile};

/// A raw finding before suppression and line/col resolution: a byte
/// offset into the file plus a message.
#[derive(Debug)]
pub struct RawFinding {
    /// Byte offset the finding anchors to.
    pub pos: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// One rule: id, one-line summary, and the checker itself.
pub struct Rule {
    /// Stable kebab-case id, used in directives and the findings JSON.
    pub id: &'static str,
    /// One-line summary shown by `--list-rules` and embedded in the
    /// `miv-findings-v1` report.
    pub summary: &'static str,
    /// The checker: pushes raw findings for one file.
    pub check: fn(&FileContext, &SourceFile, &mut Vec<RawFinding>),
}

/// Rules whose findings are file-scoped (an `allow` anywhere in the
/// file suppresses them), because the violation is the *absence* of
/// something rather than a line of code.
pub const FILE_SCOPE_RULES: &[&str] = &["forbid-unsafe-header"];

/// The full catalogue, in the order findings are reported.
pub const CATALOGUE: &[Rule] = &[
    Rule {
        id: "no-wall-clock",
        summary: "Instant::now/SystemTime are forbidden outside tests and benches: sim results \
                  must be bit-reproducible; miv-bench's Harness is the one justified site",
        check: check_no_wall_clock,
    },
    Rule {
        id: "deterministic-iteration",
        summary: "HashMap/HashSet are forbidden in library and binary code: randomized iteration \
                  order has previously leaked into reports; use BTreeMap/BTreeSet or justify \
                  lookup-only use",
        check: check_deterministic_iteration,
    },
    Rule {
        id: "no-unwrap-in-lib",
        summary: ".unwrap() and panic!/todo!/unimplemented! are forbidden in library code \
                  (tests, benches and binaries exempt); use ? or .expect(\"documented \
                  invariant\")",
        check: check_no_unwrap_in_lib,
    },
    Rule {
        id: "forbid-unsafe-header",
        summary: "every crate root must carry #![forbid(unsafe_code)]",
        check: check_forbid_unsafe_header,
    },
    Rule {
        id: "no-truncating-cast",
        summary: "`as u8/u16/u32` narrowing is forbidden in the address/size crates (core, mem, \
                  sim, adversary) except on literals and SCREAMING_CASE constants; use \
                  try_into/checked helpers (the parse_size overflow class)",
        check: check_no_truncating_cast,
    },
    Rule {
        id: "reset-preserves-schedules",
        summary: "a reset* method must not .clear() a schedule field: booked bus/hash-unit \
                  transfers would be forgotten and split runs would diverge from unsplit runs",
        check: check_reset_preserves_schedules,
    },
    Rule {
        id: "rc-not-sent",
        summary: "std::rc is non-Send and breaks the parallel sweep unless crossed as a \
                  plain-data snapshot; justify every use against the snapshot-absorb pattern. \
                  In the serving layer (serve*.rs) the bar is stricter: no Rc/RefCell ident at \
                  all, so no aliased handle can leak into a shard task signature",
        check: check_rc_not_sent,
    },
    Rule {
        id: "span-balance",
        summary: "span_enter/span_exit are forbidden outside miv-obs: an unbalanced manual \
                  span (early return, ?) silently re-parents later attribution; use the RAII \
                  SpanTracer::span guard",
        check: check_span_balance,
    },
    Rule {
        id: "doc-comment-required",
        summary: "every pub item in miv-core and miv-mem needs a doc comment (pub(crate), \
                  pub use, pub mod declarations and struct fields exempt)",
        check: check_doc_comment_required,
    },
];

/// Looks a rule up by id (used to validate directives).
pub fn find_rule(id: &str) -> Option<&'static Rule> {
    CATALOGUE.iter().find(|r| r.id == id)
}

fn code_kinds(kind: FileKind) -> bool {
    matches!(kind, FileKind::Lib | FileKind::Bin)
}

/// Rule 1: no wall clocks outside tests/benches. The simulator's whole
/// value rests on bit-reproducible runs; a stray `Instant::now` turns a
/// figure into a flake.
fn check_no_wall_clock(ctx: &FileContext, f: &SourceFile, out: &mut Vec<RawFinding>) {
    if !code_kinds(ctx.kind) {
        return;
    }
    for k in 0..f.sig_len() {
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        if f.match_seq(k, &["Instant", ":", ":", "now"]) {
            out.push(RawFinding {
                pos,
                message: "wall-clock read (Instant::now) in deterministic code".to_string(),
            });
        } else if f.sig_text(k) == "SystemTime" {
            out.push(RawFinding {
                pos,
                message: "wall-clock type (SystemTime) in deterministic code".to_string(),
            });
        }
    }
}

/// Rule 2: no hash-ordered containers in non-test code. A `HashMap`
/// that is only ever *looked up* is safe, but history shows the
/// iteration creeps in later — so the type itself is the lint, and a
/// justified `allow` documents the lookup-only contract.
fn check_deterministic_iteration(ctx: &FileContext, f: &SourceFile, out: &mut Vec<RawFinding>) {
    if !code_kinds(ctx.kind) {
        return;
    }
    for k in 0..f.sig_len() {
        let t = f.sig_text(k);
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        out.push(RawFinding {
            pos,
            message: format!(
                "{t} iterates in a randomized order; use BTree{} or justify lookup-only use",
                &t[4..]
            ),
        });
    }
}

/// Rule 3: no `.unwrap()` / `panic!` / `todo!` / `unimplemented!` in
/// library code. `.expect("message")` is the sanctioned form for
/// internal invariants — the message *is* the justification — so it is
/// deliberately not flagged.
fn check_no_unwrap_in_lib(ctx: &FileContext, f: &SourceFile, out: &mut Vec<RawFinding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for k in 0..f.sig_len() {
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        if f.match_seq(k, &[".", "unwrap", "(", ")"]) {
            out.push(RawFinding {
                pos,
                message: ".unwrap() in library code; use ? or .expect(\"documented invariant\")"
                    .to_string(),
            });
        } else {
            let t = f.sig_text(k);
            if (t == "panic" || t == "todo" || t == "unimplemented") && f.sig_text(k + 1) == "!" {
                out.push(RawFinding {
                    pos,
                    message: format!("{t}! in library code; return an error instead"),
                });
            }
        }
    }
}

/// Rule 4: every crate root keeps `#![forbid(unsafe_code)]`. The
/// security claim of the whole reproduction rests on the type system;
/// one dropped header silently re-opens the door.
fn check_forbid_unsafe_header(ctx: &FileContext, f: &SourceFile, out: &mut Vec<RawFinding>) {
    if !ctx.is_crate_root {
        return;
    }
    for k in 0..f.sig_len() {
        if f.match_seq(k, &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]) {
            return;
        }
    }
    out.push(RawFinding {
        pos: 0,
        message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
    });
}

const CAST_SCOPED_CRATES: &[&str] = &["core", "mem", "sim", "adversary"];
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32"];

/// Rule 5: no silent narrowing casts in address/size arithmetic. The
/// PR-2 `parse_size` bug was exactly this shape: a u64 quietly folded
/// into a smaller type. Casting a literal or a SCREAMING_CASE constant
/// is exempt (the value is in view); everything else needs
/// `try_into`/`u32::try_from` or a justified allow.
fn check_no_truncating_cast(ctx: &FileContext, f: &SourceFile, out: &mut Vec<RawFinding>) {
    if ctx.kind != FileKind::Lib || !CAST_SCOPED_CRATES.contains(&ctx.crate_id.as_str()) {
        return;
    }
    for k in 1..f.sig_len() {
        if f.sig_text(k) != "as" || !NARROW_TARGETS.contains(&f.sig_text(k + 1)) {
            continue;
        }
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        let prev = f.sig_text(k - 1);
        let prev_kind = f.sig_kind(k - 1);
        let literal = prev_kind == Some(TokenKind::Number) || prev == "true" || prev == "false";
        let screaming = prev_kind == Some(TokenKind::Ident)
            && prev.len() > 1
            && prev.chars().any(|c| c.is_ascii_uppercase())
            && prev
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
        if literal || screaming {
            continue;
        }
        out.push(RawFinding {
            pos,
            message: format!(
                "narrowing `as {}` on a non-literal value; use try_into/checked conversion",
                f.sig_text(k + 1)
            ),
        });
    }
}

/// Rule 6: a `reset*` method must not clear a schedule. This is the
/// PR-4 bug as a rule: `L2Controller::reset_stats` once cleared the
/// bus `IntervalSchedule`, forgetting booked background-verification
/// transfers, so a split run timed differently from an unsplit run.
fn check_reset_preserves_schedules(ctx: &FileContext, f: &SourceFile, out: &mut Vec<RawFinding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    let mut k = 0;
    while k + 1 < f.sig_len() {
        if f.sig_text(k) != "fn" || !f.sig_text(k + 1).contains("reset") {
            k += 1;
            continue;
        }
        if f.in_test_span(f.sig_start(k)) {
            k += 1;
            continue;
        }
        // Find the body: first `{` after the signature.
        let mut open = k + 2;
        while open < f.sig_len() && f.sig_text(open) != "{" && f.sig_text(open) != ";" {
            open += 1;
        }
        if f.sig_text(open) != "{" {
            k = open + 1;
            continue;
        }
        let close = f.matching_brace(open);
        for j in open..close {
            let ident = f.sig_text(j);
            if f.sig_kind(j) != Some(TokenKind::Ident) || !ident.to_lowercase().contains("sched") {
                continue;
            }
            // A `.clear(` within the next few tokens of the schedule
            // field catches `self.sched.clear()` and
            // `self.sched.inner.clear()` alike.
            for m in j + 1..(j + 5).min(close) {
                if f.sig_text(m) == "clear" && f.sig_text(m - 1) == "." && f.sig_text(m + 1) == "("
                {
                    out.push(RawFinding {
                        pos: f.sig_start(j),
                        message: format!(
                            "reset method `{}` clears schedule field `{ident}`: booked \
                             transfers would be forgotten (split-run divergence)",
                            f.sig_text(k + 1)
                        ),
                    });
                    break;
                }
            }
        }
        k = close + 1;
    }
}

/// Rule 7: `std::rc` types are non-Send; the parallel sweep crosses
/// telemetry between threads as plain-data snapshots instead. Any Rc
/// must either live behind that pattern (justified allow) or not exist.
///
/// The serving layer gets a stricter boundary: its shard tasks are the
/// one place whole engines cross into a worker pool, and the
/// compile-time `assert_send` there only covers the task types
/// themselves. In a `serve*.rs` file *any* `Rc`/`RefCell` ident fires —
/// including uses the path check cannot see, such as `Rc::new(...)`
/// after a `use std::rc::Rc;` — so no aliased non-Send handle can leak
/// into a task signature.
fn check_rc_not_sent(ctx: &FileContext, f: &SourceFile, out: &mut Vec<RawFinding>) {
    if !code_kinds(ctx.kind) {
        return;
    }
    let serving_layer = ctx
        .rel_path
        .rsplit('/')
        .next()
        .is_some_and(|name| name.starts_with("serve") && name.ends_with(".rs"));
    for k in 0..f.sig_len() {
        if f.sig_kind(k) != Some(TokenKind::Ident) {
            continue;
        }
        let t = f.sig_text(k);
        let path_use = t == "rc" && f.match_seq(k + 1, &[":", ":"]);
        let serve_handle = serving_layer && (t == "Rc" || t == "RefCell");
        if !path_use && !serve_handle {
            continue;
        }
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        let message = if path_use {
            "std::rc type in non-test code: non-Send, breaks the parallel sweep unless \
             crossed as a plain-data snapshot"
                .to_string()
        } else {
            format!(
                "`{t}` in the serving layer: shard tasks must cross the worker pool as \
                 plain Send data, never as Rc-family handles"
            )
        };
        out.push(RawFinding { pos, message });
    }
}

/// Rule 9: manual span bracketing stays inside the tracer's own crate.
/// A `span_enter` whose `span_exit` is skipped by an early return or a
/// `?` silently re-parents every later attribution in the run; the
/// RAII guard from `SpanTracer::span` cannot unbalance, so it is the
/// only sanctioned form in instrumented code.
fn check_span_balance(ctx: &FileContext, f: &SourceFile, out: &mut Vec<RawFinding>) {
    if !code_kinds(ctx.kind) || ctx.crate_id == "obs" {
        return;
    }
    for k in 0..f.sig_len() {
        let t = f.sig_text(k);
        if t != "span_enter" && t != "span_exit" {
            continue;
        }
        if f.sig_kind(k) != Some(TokenKind::Ident) {
            continue;
        }
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        out.push(RawFinding {
            pos,
            message: format!(
                "manual `{t}` outside miv-obs: unbalanced spans skew cycle attribution; use \
                 the RAII SpanTracer::span guard"
            ),
        });
    }
}

const DOC_SCOPED_CRATES: &[&str] = &["core", "mem"];
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "union", "trait", "type", "static", "const",
];

/// Rule 8: public API of the paper-contribution crates stays
/// documented. `pub(crate)`/`pub(super)`, `pub use` re-exports and
/// struct fields are exempt, as is `pub mod x;` (a module documents
/// itself with inner `//!` docs in its own file); attributes between
/// the doc comment and the item are fine.
fn check_doc_comment_required(ctx: &FileContext, f: &SourceFile, out: &mut Vec<RawFinding>) {
    if ctx.kind != FileKind::Lib || !DOC_SCOPED_CRATES.contains(&ctx.crate_id.as_str()) {
        return;
    }
    for k in 0..f.sig_len() {
        if f.sig_text(k) != "pub" || f.sig_kind(k) != Some(TokenKind::Ident) {
            continue;
        }
        let pos = f.sig_start(k);
        if f.in_test_span(pos) {
            continue;
        }
        if f.sig_text(k + 1) == "(" {
            continue; // pub(crate)/pub(super)/pub(in ...) are internal.
        }
        // Scan past modifiers to the item keyword; `pub const fn` is a
        // fn, `pub const NAME` is a const.
        let mut j = k + 1;
        let mut item = None;
        while j < k + 5 {
            let t = f.sig_text(j);
            if t == "const" && f.sig_text(j + 1) == "fn" {
                j += 1;
                continue;
            }
            if ITEM_KEYWORDS.contains(&t) {
                item = Some((t, f.sig_text(j + 1).to_string()));
                break;
            }
            if t == "use" {
                break; // re-exports are exempt
            }
            if !matches!(t, "unsafe" | "async" | "extern") {
                break; // a field or something unexpected — not an item
            }
            j += 1;
        }
        let Some((item_kw, name)) = item else {
            continue;
        };
        if !has_doc_before(f, k) {
            out.push(RawFinding {
                pos,
                message: format!("undocumented pub {item_kw} `{name}`"),
            });
        }
    }
}

/// Whether the `pub` at significant index `k` is preceded (skipping
/// whitespace and attributes) by a doc comment or a `#[doc...]`.
fn has_doc_before(f: &SourceFile, k: usize) -> bool {
    let Some(&mut_start) = f.sig.get(k) else {
        return true;
    };
    let mut i = mut_start;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        let t = &f.tokens[i];
        match t.kind {
            TokenKind::Whitespace => continue,
            TokenKind::LineComment => {
                // `//!` is an *inner* doc: it documents the enclosing
                // module, not the following item.
                if t.text(f.src).starts_with("///") {
                    return true;
                }
                continue; // plain comments don't document, keep looking
            }
            TokenKind::BlockComment => {
                if t.text(f.src).starts_with("/**") {
                    return true;
                }
                continue;
            }
            _ => {
                // An attribute ends with `]`; walk back to its `#`,
                // check for #[doc...], then keep scanning before it.
                if t.text(f.src) == "]" {
                    let mut depth = 1usize;
                    let mut saw_doc = false;
                    while i > 0 && depth > 0 {
                        i -= 1;
                        match f.tokens[i].kind {
                            TokenKind::Punct => match f.tokens[i].text(f.src) {
                                "]" => depth += 1,
                                "[" => depth -= 1,
                                _ => {}
                            },
                            TokenKind::Ident if f.tokens[i].text(f.src) == "doc" => {
                                saw_doc = true;
                            }
                            _ => {}
                        }
                    }
                    if saw_doc {
                        return true;
                    }
                    // Step back over the `#` (and `!` for inner attrs).
                    while i > 0 {
                        let prev = &f.tokens[i - 1];
                        if matches!(prev.kind, TokenKind::Punct)
                            && matches!(prev.text(f.src), "#" | "!")
                        {
                            i -= 1;
                        } else {
                            break;
                        }
                    }
                    continue;
                }
                return false;
            }
        }
    }
}
