//! The analysis driver: runs the catalogue over files, applies
//! suppression directives, and renders the `miv-findings-v1` report.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use miv_obs::json::JsonValue;

use crate::rules::{find_rule, RawFinding, CATALOGUE, FILE_SCOPE_RULES};
use crate::scan::{FileContext, SourceFile};

/// Pseudo-rule id for directive hygiene: malformed `allow(...)` forms
/// and unknown rule ids are findings themselves (and cannot be
/// suppressed — fix the directive).
pub const DIRECTIVE_RULE: &str = "directive";

/// One reportable violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id that fired.
    pub rule: String,
    /// Workspace-relative path (`/` separators).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What is wrong.
    pub message: String,
    /// The trimmed source line, for context in reports.
    pub snippet: String,
}

/// A finding that an `allow(rule, reason="...")` directive waived.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// Rule id that would have fired.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the suppressed finding.
    pub line: usize,
    /// The directive's justification.
    pub reason: String,
}

/// Result of checking one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed findings, sorted by (line, col, rule).
    pub findings: Vec<Finding>,
    /// Suppressed findings, same order.
    pub suppressed: Vec<Suppressed>,
}

/// Runs the whole catalogue over one in-memory source file.
pub fn check_source(ctx: &FileContext, src: &str) -> FileReport {
    let file = SourceFile::new(src);
    let mut report = FileReport::default();

    for bad in &file.bad_directives {
        report.findings.push(Finding {
            rule: DIRECTIVE_RULE.to_string(),
            path: ctx.rel_path.clone(),
            line: bad.line,
            col: 1,
            message: format!("malformed miv-analyze directive: {}", bad.message),
            snippet: line_snippet(src, bad.line),
        });
    }
    for allow in &file.allows {
        if find_rule(&allow.rule).is_none() {
            report.findings.push(Finding {
                rule: DIRECTIVE_RULE.to_string(),
                path: ctx.rel_path.clone(),
                line: allow.line,
                col: 1,
                message: format!("allow() names unknown rule `{}`", allow.rule),
                snippet: line_snippet(src, allow.line),
            });
        }
    }

    for rule in CATALOGUE {
        let mut raw: Vec<RawFinding> = Vec::new();
        (rule.check)(ctx, &file, &mut raw);
        let file_scope = FILE_SCOPE_RULES.contains(&rule.id);
        for r in raw {
            let (line, col) = file.line_col(r.pos);
            let waiver = file.allows.iter().find(|a| {
                a.rule == rule.id
                    && find_rule(&a.rule).is_some()
                    && (file_scope || a.line == line || a.line + 1 == line)
            });
            match waiver {
                Some(a) => report.suppressed.push(Suppressed {
                    rule: rule.id.to_string(),
                    path: ctx.rel_path.clone(),
                    line,
                    reason: a.reason.clone(),
                }),
                None => report.findings.push(Finding {
                    rule: rule.id.to_string(),
                    path: ctx.rel_path.clone(),
                    line,
                    col,
                    message: r.message,
                    snippet: line_snippet(src, line),
                }),
            }
        }
    }

    report
        .findings
        .sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    report
}

fn line_snippet(src: &str, line: usize) -> String {
    src.lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .to_string()
}

/// The aggregated result of analyzing a workspace tree.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All unsuppressed findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// All suppressed findings, same order.
    pub suppressed: Vec<Suppressed>,
}

impl WorkspaceReport {
    /// Whether the tree is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Walks `root` and returns every `.rs` file as a sorted list of
/// workspace-relative paths (`/` separators), skipping `target/`,
/// VCS metadata and hidden directories — so the report order is
/// deterministic by construction.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Analyzes every `.rs` file under `root` with the full catalogue.
pub fn analyze_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    for rel in collect_rs_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        let ctx = FileContext::from_rel_path(&rel);
        let file_report = check_source(&ctx, &src);
        report.findings.extend(file_report.findings);
        report.suppressed.extend(file_report.suppressed);
        report.files_scanned += 1;
    }
    // Files are visited in sorted order and per-file results are
    // already sorted, so the aggregate is deterministic without a
    // second sort — but sort anyway so the invariant does not rest on
    // the walk order.
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(report)
}

/// Ascends from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn discover_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Renders the `miv-findings-v1` JSON report. Field order and array
/// order are fixed, and no timestamps or absolute paths are included,
/// so two runs over the same tree are byte-identical.
pub fn findings_json(report: &WorkspaceReport) -> JsonValue {
    let mut root = JsonValue::obj();
    root.push("schema", "miv-findings-v1");
    root.push("files_scanned", report.files_scanned as u64);
    root.push("clean", report.is_clean());

    let mut rules = Vec::new();
    for rule in CATALOGUE {
        let mut r = JsonValue::obj();
        r.push("id", rule.id);
        r.push("summary", rule.summary);
        rules.push(r);
    }
    root.push("rules", JsonValue::Array(rules));

    let mut findings = Vec::new();
    for f in &report.findings {
        let mut j = JsonValue::obj();
        j.push("rule", f.rule.as_str());
        j.push("path", f.path.as_str());
        j.push("line", f.line as u64);
        j.push("col", f.col as u64);
        j.push("message", f.message.as_str());
        j.push("snippet", f.snippet.as_str());
        findings.push(j);
    }
    root.push("findings", JsonValue::Array(findings));

    let mut suppressed = Vec::new();
    for s in &report.suppressed {
        let mut j = JsonValue::obj();
        j.push("rule", s.rule.as_str());
        j.push("path", s.path.as_str());
        j.push("line", s.line as u64);
        j.push("reason", s.reason.as_str());
        suppressed.push(j);
    }
    root.push("suppressed", JsonValue::Array(suppressed));
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx() -> FileContext {
        FileContext::from_rel_path("crates/core/src/fake.rs")
    }

    #[test]
    fn unwrap_finding_and_suppression() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = check_source(&lib_ctx(), src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "no-unwrap-in-lib");
        assert_eq!(r.findings[0].line, 1);

        let src = "// miv-analyze: allow(no-unwrap-in-lib, reason=\"demo\")\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = check_source(&lib_ctx(), src);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "demo");
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let src = "// miv-analyze: allow(no-such-rule, reason=\"x\")\n";
        let r = check_source(&lib_ctx(), src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, DIRECTIVE_RULE);
    }

    #[test]
    fn findings_json_is_deterministic() {
        let mut report = WorkspaceReport {
            files_scanned: 2,
            ..WorkspaceReport::default()
        };
        report.findings.push(Finding {
            rule: "no-wall-clock".to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            message: "m".to_string(),
            snippet: "s".to_string(),
        });
        let a = findings_json(&report).render_pretty();
        let b = findings_json(&report).render_pretty();
        assert_eq!(a, b);
        assert!(a.contains("miv-findings-v1"));
    }
}
