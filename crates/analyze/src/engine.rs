//! The analysis driver: builds per-file models and the workspace
//! index, runs the catalogue, applies suppression directives, audits
//! the suppressions themselves, and renders the `miv-findings-v2`
//! report.
//!
//! Analysis is two-pass: pass 1 lexes every file, builds its
//! [`FileModel`] and folds it into the [`WorkspaceIndex`]; pass 2 runs
//! every rule over every file with the complete index in view. That is
//! what lets `plumbed-enum` ask "does `campaign.rs` reference
//! `Scheme::ALL`?" while checking `timing.rs`.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use miv_obs::json::JsonValue;

use crate::model::{FileModel, ItemCounts, WorkspaceIndex};
use crate::rules::{find_rule, RawFinding, RuleCtx, CATALOGUE, FILE_SCOPE_RULES};
use crate::scan::{FileContext, SourceFile};

/// Pseudo-rule id for directive and model hygiene: malformed
/// `allow(...)` forms, unknown rule ids, unattached `exhaustive` tags
/// and brace-balance failures are findings themselves (and cannot be
/// suppressed — fix the file).
pub const DIRECTIVE_RULE: &str = "directive";

/// Rule id the engine emits for allows that shield nothing. Lives in
/// the catalogue for listing/explaining, but the enforcement is here —
/// it needs the waiver bookkeeping.
pub const UNUSED_SUPPRESSION_RULE: &str = "unused-suppression";

/// One reportable violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id that fired.
    pub rule: String,
    /// Workspace-relative path (`/` separators).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What is wrong.
    pub message: String,
    /// The trimmed source line, for context in reports.
    pub snippet: String,
}

/// A finding that an `allow(rule, reason="...")` directive waived.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// Rule id that would have fired.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the suppressed finding.
    pub line: usize,
    /// The directive's justification.
    pub reason: String,
}

/// One `allow(...)` directive site — the suppression *inventory* entry
/// (one per directive, however many findings it shields). The committed
/// `suppressions.txt` baseline is rendered from these.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowSite {
    /// Workspace-relative path.
    pub path: String,
    /// The rule being suppressed.
    pub rule: String,
    /// The directive's justification.
    pub reason: String,
    /// 1-based line of the directive.
    pub line: usize,
}

/// Result of checking one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed findings, sorted by (line, col, rule).
    pub findings: Vec<Finding>,
    /// Suppressed findings, same order.
    pub suppressed: Vec<Suppressed>,
    /// Every valid allow directive in the file.
    pub allow_sites: Vec<AllowSite>,
}

/// Runs the whole catalogue over one in-memory source file, with a
/// single-file index (cross-file rules see only this file; the
/// workspace driver uses [`analyze_sources`] for the full view).
pub fn check_source(ctx: &FileContext, src: &str) -> FileReport {
    let file = SourceFile::new(src);
    let model = FileModel::build(&file);
    let mut index = WorkspaceIndex::default();
    index.absorb_file(&ctx.rel_path, &file, &model);
    check_file(ctx, &file, &model, &index)
}

/// Runs the catalogue over one prepared file against a (possibly
/// workspace-wide) index.
fn check_file(
    ctx: &FileContext,
    file: &SourceFile,
    model: &FileModel,
    index: &WorkspaceIndex,
) -> FileReport {
    let src = file.src;
    let mut report = FileReport::default();

    for bad in &file.bad_directives {
        report.findings.push(Finding {
            rule: DIRECTIVE_RULE.to_string(),
            path: ctx.rel_path.clone(),
            line: bad.line,
            col: 1,
            message: format!("malformed miv-analyze directive: {}", bad.message),
            snippet: line_snippet(src, bad.line),
        });
    }
    for allow in &file.allows {
        if find_rule(&allow.rule).is_none() {
            report.findings.push(Finding {
                rule: DIRECTIVE_RULE.to_string(),
                path: ctx.rel_path.clone(),
                line: allow.line,
                col: 1,
                message: format!("allow() names unknown rule `{}`", allow.rule),
                snippet: line_snippet(src, allow.line),
            });
        }
    }
    // Brace-balance failures are unsuppressible model-hygiene findings:
    // past the first one, item spans and #[cfg(test)] skip regions are
    // unreliable (the PR 5 fragility made them silently extend to EOF).
    for &pos in &model.brace_errors {
        let (line, col) = file.line_col(pos);
        report.findings.push(Finding {
            rule: DIRECTIVE_RULE.to_string(),
            path: ctx.rel_path.clone(),
            line,
            col,
            message: "brace matching failed here: structural checks and #[cfg(test)] span \
                      detection are unreliable for this file until it parses"
                .to_string(),
            snippet: line_snippet(src, line),
        });
    }
    for &pos in &model.unattached_tags {
        let (line, col) = file.line_col(pos);
        report.findings.push(Finding {
            rule: DIRECTIVE_RULE.to_string(),
            path: ctx.rel_path.clone(),
            line,
            col,
            message: "`miv-analyze: exhaustive` tag attaches to no enum".to_string(),
            snippet: line_snippet(src, line),
        });
    }

    let mut allow_used = vec![false; file.allows.len()];
    for rule in CATALOGUE {
        let mut raw: Vec<RawFinding> = Vec::new();
        let rctx = RuleCtx {
            file: ctx,
            src: file,
            model,
            index,
        };
        (rule.check)(&rctx, &mut raw);
        let file_scope = FILE_SCOPE_RULES.contains(&rule.id);
        for r in raw {
            let (line, col) = file.line_col(r.pos);
            let waiver = file.allows.iter().position(|a| {
                a.rule == rule.id
                    && find_rule(&a.rule).is_some()
                    && (file_scope || a.line == line || a.line + 1 == line)
            });
            match waiver {
                Some(ai) => {
                    allow_used[ai] = true;
                    report.suppressed.push(Suppressed {
                        rule: rule.id.to_string(),
                        path: ctx.rel_path.clone(),
                        line,
                        reason: file.allows[ai].reason.clone(),
                    });
                }
                None => report.findings.push(Finding {
                    rule: rule.id.to_string(),
                    path: ctx.rel_path.clone(),
                    line,
                    col,
                    message: r.message,
                    snippet: line_snippet(src, line),
                }),
            }
        }
    }

    // The suppression audit: a valid allow that shielded nothing is a
    // finding at its own line, unsuppressible by construction (no
    // waiver search runs for it — delete the directive instead).
    for (ai, allow) in file.allows.iter().enumerate() {
        if find_rule(&allow.rule).is_none() {
            continue; // already a directive finding above
        }
        report.allow_sites.push(AllowSite {
            path: ctx.rel_path.clone(),
            rule: allow.rule.clone(),
            reason: allow.reason.clone(),
            line: allow.line,
        });
        if !allow_used[ai] {
            report.findings.push(Finding {
                rule: UNUSED_SUPPRESSION_RULE.to_string(),
                path: ctx.rel_path.clone(),
                line: allow.line,
                col: 1,
                message: format!(
                    "allow({}) shields no finding of that rule; delete the stale directive",
                    allow.rule
                ),
                snippet: line_snippet(src, allow.line),
            });
        }
    }

    report
        .findings
        .sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    report
}

fn line_snippet(src: &str, line: usize) -> String {
    src.lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .to_string()
}

/// The aggregated result of analyzing a workspace tree.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All unsuppressed findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// All suppressed findings, same order.
    pub suppressed: Vec<Suppressed>,
    /// Every valid allow directive, sorted by (path, rule, reason,
    /// line) — the suppression inventory.
    pub allow_sites: Vec<AllowSite>,
    /// Aggregated item-model counts across the workspace.
    pub counts: ItemCounts,
}

impl WorkspaceReport {
    /// Whether the tree is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the committed `suppressions.txt` baseline: one line per
    /// allow directive, `path<TAB>rule<TAB>reason`, sorted and
    /// line-number-free so unrelated edits never churn it.
    pub fn suppressions_baseline(&self) -> String {
        let lines: BTreeSet<String> = self
            .allow_sites
            .iter()
            .map(|a| format!("{}\t{}\t{}", a.path, a.rule, a.reason))
            .collect();
        let mut out = String::new();
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

/// Walks `root` and returns every `.rs` file as a sorted list of
/// workspace-relative paths (`/` separators), skipping `target/`,
/// VCS metadata, hidden directories and `fixtures/` trees (test
/// corpora deliberately contain forbidden patterns) — so the report
/// order is deterministic by construction.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Analyzes a set of in-memory sources as one workspace: builds every
/// model and the shared index (pass 1), then checks every file against
/// it (pass 2). `sources` is `(rel_path, text)` pairs; order does not
/// affect the result beyond the already-sorted report.
pub fn analyze_sources(sources: &[(String, String)]) -> WorkspaceReport {
    // Pass 1: lex, model, index.
    let mut prepared: Vec<(FileContext, SourceFile, FileModel)> = Vec::new();
    let mut index = WorkspaceIndex::default();
    for (rel, text) in sources {
        let ctx = FileContext::from_rel_path(rel);
        let file = SourceFile::new(text);
        let model = FileModel::build(&file);
        index.absorb_file(rel, &file, &model);
        prepared.push((ctx, file, model));
    }

    // Pass 2: rules with the full index in view.
    let mut report = WorkspaceReport {
        counts: index.counts,
        ..WorkspaceReport::default()
    };
    for (ctx, file, model) in &prepared {
        let file_report = check_file(ctx, file, model, &index);
        report.findings.extend(file_report.findings);
        report.suppressed.extend(file_report.suppressed);
        report.allow_sites.extend(file_report.allow_sites);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    report.allow_sites.sort_by(|a, b| {
        (&a.path, &a.rule, &a.reason, a.line).cmp(&(&b.path, &b.rule, &b.reason, b.line))
    });
    report
}

/// Analyzes every `.rs` file under `root` with the full catalogue.
pub fn analyze_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut sources = Vec::new();
    for rel in collect_rs_files(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        sources.push((rel, text));
    }
    Ok(analyze_sources(&sources))
}

/// Ascends from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn discover_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Renders the `miv-findings-v2` JSON report. Field order and array
/// order are fixed, rules are sorted by id, and no timestamps or
/// absolute paths are included, so two runs over the same tree are
/// byte-identical.
pub fn findings_json(report: &WorkspaceReport) -> JsonValue {
    let mut root = JsonValue::obj();
    root.push("schema", "miv-findings-v2");
    root.push("files_scanned", report.files_scanned as u64);
    root.push("clean", report.is_clean());

    let mut sorted: Vec<&crate::rules::Rule> = CATALOGUE.iter().collect();
    sorted.sort_by_key(|r| r.id);
    let mut rules = Vec::new();
    for rule in sorted {
        let mut r = JsonValue::obj();
        r.push("id", rule.id);
        r.push("family", rule.family.label());
        r.push("summary", rule.summary);
        rules.push(r);
    }
    root.push("rules", JsonValue::Array(rules));

    let mut findings = Vec::new();
    for f in &report.findings {
        let mut j = JsonValue::obj();
        j.push("rule", f.rule.as_str());
        j.push("path", f.path.as_str());
        j.push("line", f.line as u64);
        j.push("col", f.col as u64);
        j.push("message", f.message.as_str());
        j.push("snippet", f.snippet.as_str());
        findings.push(j);
    }
    root.push("findings", JsonValue::Array(findings));

    let mut suppressed = Vec::new();
    for s in &report.suppressed {
        let mut j = JsonValue::obj();
        j.push("rule", s.rule.as_str());
        j.push("path", s.path.as_str());
        j.push("line", s.line as u64);
        j.push("reason", s.reason.as_str());
        suppressed.push(j);
    }
    root.push("suppressed", JsonValue::Array(suppressed));

    let mut inventory = Vec::new();
    for a in &report.allow_sites {
        let mut j = JsonValue::obj();
        j.push("path", a.path.as_str());
        j.push("rule", a.rule.as_str());
        j.push("reason", a.reason.as_str());
        j.push("line", a.line as u64);
        inventory.push(j);
    }
    root.push("suppression_inventory", JsonValue::Array(inventory));

    let mut items = JsonValue::obj();
    items.push("files", report.counts.files as u64);
    items.push("items", report.counts.items as u64);
    items.push("mods", report.counts.mods as u64);
    items.push("fns", report.counts.fns as u64);
    items.push("impls", report.counts.impls as u64);
    items.push("enums", report.counts.enums as u64);
    items.push("enum_variants", report.counts.enum_variants as u64);
    items.push("matches", report.counts.matches as u64);
    root.push("items", items);
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx() -> FileContext {
        FileContext::from_rel_path("crates/core/src/fake.rs")
    }

    #[test]
    fn unwrap_finding_and_suppression() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = check_source(&lib_ctx(), src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "no-unwrap-in-lib");
        assert_eq!(r.findings[0].line, 1);

        let src = "// miv-analyze: allow(no-unwrap-in-lib, reason=\"demo\")\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = check_source(&lib_ctx(), src);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "demo");
        assert_eq!(r.allow_sites.len(), 1);
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let src = "// miv-analyze: allow(no-such-rule, reason=\"x\")\n";
        let r = check_source(&lib_ctx(), src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, DIRECTIVE_RULE);
    }

    #[test]
    fn stale_allow_is_a_finding() {
        let src = "// miv-analyze: allow(no-wall-clock, reason=\"nothing here\")\nfn f() {}\n";
        let r = check_source(&lib_ctx(), src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, UNUSED_SUPPRESSION_RULE);
        assert_eq!(r.findings[0].line, 1);
    }

    #[test]
    fn unbalanced_brace_is_a_directive_finding() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { if x { }\n";
        let r = check_source(&lib_ctx(), src);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == DIRECTIVE_RULE && f.message.contains("brace matching")),
            "expected a brace-matching directive finding, got {:?}",
            r.findings
        );
    }

    #[test]
    fn findings_json_is_deterministic() {
        let mut report = WorkspaceReport {
            files_scanned: 2,
            ..WorkspaceReport::default()
        };
        report.findings.push(Finding {
            rule: "no-wall-clock".to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            message: "m".to_string(),
            snippet: "s".to_string(),
        });
        let a = findings_json(&report).render_pretty();
        let b = findings_json(&report).render_pretty();
        assert_eq!(a, b);
        assert!(a.contains("miv-findings-v2"));
    }
}
