//! Per-file scanning context: file classification, significant-token
//! views, `#[cfg(test)]` / `#[test]` span detection, and suppression
//! directives.
//!
//! Rules never look at raw source — they look at a [`SourceFile`],
//! which exposes only *significant* tokens (whitespace and comments
//! stripped, strings opaque) plus enough structure (test spans,
//! brace matching) to scope themselves correctly.

use crate::lexer::{lex, line_col, Token, TokenKind};

/// What kind of compilation unit a file belongs to. Decided from the
/// workspace-relative path alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: everything under a crate's `src/` except `bin/`.
    /// The full rule catalogue applies.
    Lib,
    /// Binary code: `src/bin/*`, `src/main.rs`, `examples/*`. Panic
    /// rules do not apply (a CLI's `fn main` may abort), determinism
    /// rules still do.
    Bin,
    /// Tests and benches (`tests/`, `benches/`). Test code may use
    /// wall clocks, unwraps and hash containers freely.
    TestLike,
}

/// Everything a rule needs to know about where a file sits.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators (stable across OSes
    /// so the findings JSON is byte-identical everywhere).
    pub rel_path: String,
    /// Library / binary / test classification.
    pub kind: FileKind,
    /// Short crate id: the directory under `crates/` (`core`, `mem`,
    /// `obs`, …) or `miv` for the facade crate at the workspace root.
    pub crate_id: String,
    /// Whether this is a crate root (`src/lib.rs`), where header
    /// attributes like `#![forbid(unsafe_code)]` are required.
    pub is_crate_root: bool,
}

impl FileContext {
    /// Builds a context from a workspace-relative path.
    pub fn from_rel_path(rel_path: &str) -> FileContext {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let kind = if parts
            .iter()
            .any(|p| *p == "tests" || *p == "benches" || *p == "examples")
        {
            FileKind::TestLike
        } else if parts.contains(&"bin")
            || parts.last() == Some(&"main.rs")
            || parts.last() == Some(&"build.rs")
        {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        let crate_id = if parts.first() == Some(&"crates") && parts.len() > 1 {
            parts[1].to_string()
        } else {
            "miv".to_string()
        };
        let is_crate_root = rel_path == "src/lib.rs"
            || (parts.first() == Some(&"crates")
                && parts.get(2) == Some(&"src")
                && parts.get(3) == Some(&"lib.rs")
                && parts.len() == 4);
        FileContext {
            rel_path: rel_path.to_string(),
            kind,
            crate_id,
            is_crate_root,
        }
    }
}

/// A parsed `// miv-analyze: allow(rule, reason="...")` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule id being suppressed.
    pub rule: String,
    /// The mandatory human justification.
    pub reason: String,
    /// 1-based line the directive sits on.
    pub line: usize,
}

/// A directive that did not parse (missing reason, bad syntax). These
/// are themselves findings — an unexplained suppression is exactly the
/// kind of drift the analyzer exists to stop.
#[derive(Debug, Clone)]
pub struct BadDirective {
    /// 1-based line of the broken directive.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

/// A parsed `// miv-analyze: exhaustive` tag. The item model attaches
/// each tag to the next `enum` definition; `exhaustive-variant-match`
/// then requires every `match` over that enum to name every variant.
#[derive(Debug, Clone)]
pub struct ExhaustiveTag {
    /// Byte offset of the tag comment.
    pub pos: usize,
    /// 1-based line the tag sits on.
    pub line: usize,
}

/// A lexed file plus the derived views rules scope themselves with.
pub struct SourceFile<'a> {
    /// The raw source text.
    pub src: &'a str,
    /// The full lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant tokens (not whitespace,
    /// not comments).
    pub sig: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Parsed suppression directives.
    pub allows: Vec<Allow>,
    /// Malformed directives.
    pub bad_directives: Vec<BadDirective>,
    /// Parsed `exhaustive` enum tags, in byte order.
    pub exhaustive_tags: Vec<ExhaustiveTag>,
}

impl<'a> SourceFile<'a> {
    /// Lexes and pre-scans one file.
    pub fn new(src: &'a str) -> SourceFile<'a> {
        let tokens = lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let mut file = SourceFile {
            src,
            tokens,
            sig,
            test_spans: Vec::new(),
            allows: Vec::new(),
            bad_directives: Vec::new(),
            exhaustive_tags: Vec::new(),
        };
        file.test_spans = file.find_test_spans();
        file.parse_directives();
        file
    }

    /// The text of the `k`-th significant token, or `""` past the end.
    pub fn sig_text(&self, k: usize) -> &str {
        match self.sig.get(k) {
            Some(&i) => self.tokens[i].text(self.src),
            None => "",
        }
    }

    /// The kind of the `k`-th significant token.
    pub fn sig_kind(&self, k: usize) -> Option<TokenKind> {
        self.sig.get(k).map(|&i| self.tokens[i].kind)
    }

    /// Byte offset of the `k`-th significant token (or source length).
    pub fn sig_start(&self, k: usize) -> usize {
        match self.sig.get(k) {
            Some(&i) => self.tokens[i].start,
            None => self.src.len(),
        }
    }

    /// Byte offset one past the `k`-th significant token (or source
    /// length past the end) — item spans end here.
    pub fn token_end(&self, k: usize) -> usize {
        match self.sig.get(k) {
            Some(&i) => self.tokens[i].end,
            None => self.src.len(),
        }
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// Whether the significant tokens starting at `k` spell out `pat`
    /// (each element compared against one token's text).
    pub fn match_seq(&self, k: usize, pat: &[&str]) -> bool {
        pat.iter()
            .enumerate()
            .all(|(j, want)| self.sig_text(k + j) == *want)
    }

    /// Whether byte offset `pos` falls inside a test item.
    pub fn in_test_span(&self, pos: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// 1-based (line, col) of a byte offset.
    pub fn line_col(&self, pos: usize) -> (usize, usize) {
        line_col(self.src, pos)
    }

    /// Finds the significant-token index of the brace matching the `{`
    /// at significant index `open` (which must be a `{`). Returns the
    /// index one past the file if unbalanced.
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut k = open;
        while k < self.sig.len() {
            match self.sig_text(k) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        self.sig.len()
    }

    /// Scans for `#[cfg(test)]` / `#[test]` attributes and records the
    /// byte span of the item each one gates (through the item's closing
    /// brace, or its `;` for brace-less items).
    fn find_test_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut k = 0;
        while k + 1 < self.sig.len() {
            if self.sig_text(k) == "#" && self.sig_text(k + 1) == "[" {
                let attr_start_byte = self.sig_start(k);
                // Find the matching `]`, tracking bracket depth.
                let mut depth = 0usize;
                let mut j = k + 1;
                while j < self.sig.len() {
                    match self.sig_text(j) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let attr_idents: Vec<&str> = (k + 2..j)
                    .filter(|&m| self.sig_kind(m) == Some(TokenKind::Ident))
                    .map(|m| self.sig_text(m))
                    .collect();
                let is_test_attr = attr_idents.contains(&"test")
                    && (attr_idents.contains(&"cfg") || attr_idents == ["test"]);
                if is_test_attr {
                    if let Some(end_byte) = self.item_end_after(j + 1) {
                        spans.push((attr_start_byte, end_byte));
                    }
                    // Continue scanning after the gated item so nested
                    // attributes inside it are not double-counted.
                    k = j + 1;
                    continue;
                }
                k = j + 1;
                continue;
            }
            k += 1;
        }
        spans
    }

    /// The end byte of the item starting at significant index `k`
    /// (skipping any further attributes): through the matching `}` of
    /// its first `{`, or through a `;` if one comes first.
    fn item_end_after(&self, mut k: usize) -> Option<usize> {
        // Skip stacked attributes (#[...] #[...] item).
        while self.sig_text(k) == "#" && self.sig_text(k + 1) == "[" {
            let mut depth = 0usize;
            let mut j = k + 1;
            while j < self.sig.len() {
                match self.sig_text(j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            k = j + 1;
        }
        let mut j = k;
        while j < self.sig.len() {
            match self.sig_text(j) {
                "{" => {
                    let close = self.matching_brace(j);
                    return Some(match self.sig.get(close) {
                        Some(&i) => self.tokens[i].end,
                        None => self.src.len(),
                    });
                }
                ";" => {
                    return Some(self.sig_start(j) + 1);
                }
                _ => {}
            }
            j += 1;
        }
        Some(self.src.len())
    }

    /// Parses `miv-analyze: allow(rule, reason="...")` directives out
    /// of every *plain* comment token. Doc comments are skipped: they
    /// describe the directive syntax (as this crate's own docs do)
    /// rather than invoke it.
    fn parse_directives(&mut self) {
        const MARKER: &str = "miv-analyze:";
        for t in &self.tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let text = t.text(self.src);
            let is_doc = text.starts_with("///")
                || text.starts_with("//!")
                || text.starts_with("/**")
                || text.starts_with("/*!");
            if is_doc {
                continue;
            }
            let Some(at) = text.find(MARKER) else {
                continue;
            };
            let (line, _) = line_col(self.src, t.start);
            let rest = text[at + MARKER.len()..].trim_start();
            let rest_trimmed = rest.trim_end().trim_end_matches("*/").trim_end();
            if rest_trimmed == "exhaustive" {
                self.exhaustive_tags
                    .push(ExhaustiveTag { pos: t.start, line });
                continue;
            }
            match parse_allow(rest) {
                Ok((rule, reason)) => self.allows.push(Allow { rule, reason, line }),
                Err(message) => self.bad_directives.push(BadDirective { line, message }),
            }
        }
    }
}

/// Parses the body after `miv-analyze:`, expecting
/// `allow(rule-id, reason="non-empty text")`.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let body = rest.strip_prefix("allow(").ok_or_else(|| {
        "expected `allow(rule-id, reason=\"...\")` after `miv-analyze:`".to_string()
    })?;
    let comma = body
        .find(',')
        .ok_or_else(|| "missing `, reason=\"...\"` — justification is mandatory".to_string())?;
    let rule = body[..comma].trim();
    if rule.is_empty() {
        return Err("empty rule id".to_string());
    }
    let after = body[comma + 1..].trim_start();
    let reason_body = after
        .strip_prefix("reason=\"")
        .ok_or_else(|| "expected `reason=\"...\"` — justification is mandatory".to_string())?;
    let close = reason_body
        .find('"')
        .ok_or_else(|| "unterminated reason string".to_string())?;
    let reason = reason_body[..close].trim();
    if reason.is_empty() {
        return Err("empty reason — justification is mandatory".to_string());
    }
    if !reason_body[close + 1..].trim_start().starts_with(')') {
        return Err("expected `)` after the reason string".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_paths() {
        let c = FileContext::from_rel_path("crates/core/src/engine.rs");
        assert_eq!(c.kind, FileKind::Lib);
        assert_eq!(c.crate_id, "core");
        assert!(!c.is_crate_root);

        let c = FileContext::from_rel_path("crates/sim/src/bin/mivsim.rs");
        assert_eq!(c.kind, FileKind::Bin);

        let c = FileContext::from_rel_path("crates/core/tests/prop_core.rs");
        assert_eq!(c.kind, FileKind::TestLike);

        let c = FileContext::from_rel_path("src/lib.rs");
        assert_eq!(c.crate_id, "miv");
        assert!(c.is_crate_root);

        let c = FileContext::from_rel_path("crates/obs/src/lib.rs");
        assert!(c.is_crate_root);

        let c = FileContext::from_rel_path("examples/quickstart.rs");
        assert_eq!(c.kind, FileKind::TestLike);
    }

    #[test]
    fn finds_cfg_test_spans() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::new(src);
        assert_eq!(f.test_spans.len(), 1);
        let live_pos = src.find("live").unwrap();
        let t_pos = src.find("fn t").unwrap();
        let after_pos = src.find("after").unwrap();
        assert!(!f.in_test_span(live_pos));
        assert!(f.in_test_span(t_pos));
        assert!(!f.in_test_span(after_pos));
    }

    #[test]
    fn parses_allow_directive() {
        let src = "// miv-analyze: allow(no-wall-clock, reason=\"bench harness\")\nfn f() {}\n";
        let f = SourceFile::new(src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "no-wall-clock");
        assert_eq!(f.allows[0].reason, "bench harness");
        assert_eq!(f.allows[0].line, 1);
        assert!(f.bad_directives.is_empty());
    }

    #[test]
    fn rejects_reasonless_directive() {
        let src = "// miv-analyze: allow(no-wall-clock)\n";
        let f = SourceFile::new(src);
        assert!(f.allows.is_empty());
        assert_eq!(f.bad_directives.len(), 1);
    }
}
