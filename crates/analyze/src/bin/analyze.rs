//! `analyze` — run the miv static-analysis catalogue over the
//! workspace.
//!
//! ```text
//! cargo run -p miv-analyze --release -- --workspace [--json out.json] [--sarif out.sarif]
//! ```
//!
//! Exits 0 when the tree is clean, 1 on any unsuppressed finding, 2 on
//! usage or I/O errors. Findings print as clickable `file:line:col`
//! diagnostics; `--json` additionally writes the deterministic
//! `miv-findings-v2` report, `--sarif` a SARIF 2.1.0 log, and
//! `--suppressions` the line-number-free baseline CI gates on.

use std::path::PathBuf;
use std::process::ExitCode;

use miv_analyze::{
    analyze_workspace, discover_workspace_root, find_rule, findings_json, sarif_json, CATALOGUE,
};

const USAGE: &str = "\
usage: analyze [--workspace | --root PATH] [--json PATH] [--sarif PATH]
               [--suppressions PATH] [--list-rules] [--explain RULE]

  --workspace          analyze the enclosing cargo workspace (default)
  --root PATH          analyze the tree rooted at PATH instead
  --json PATH          also write the miv-findings-v2 report to PATH
  --sarif PATH         also write a SARIF 2.1.0 log to PATH
  --suppressions PATH  also write the suppression baseline to PATH
  --list-rules         print the rule catalogue (sorted by id) and exit
  --explain RULE       print a rule's doc, fixture and invariant row
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut suppressions_out: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut explain: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage_error("--json needs a path"),
            },
            "--sarif" => match args.next() {
                Some(p) => sarif_out = Some(PathBuf::from(p)),
                None => return usage_error("--sarif needs a path"),
            },
            "--suppressions" => match args.next() {
                Some(p) => suppressions_out = Some(PathBuf::from(p)),
                None => return usage_error("--suppressions needs a path"),
            },
            "--list-rules" => list_rules = true,
            "--explain" => match args.next() {
                Some(r) => explain = Some(r),
                None => return usage_error("--explain needs a rule id"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(id) = explain {
        let Some(rule) = find_rule(&id) else {
            eprintln!("analyze: unknown rule `{id}` (see --list-rules)");
            return ExitCode::from(2);
        };
        println!("rule:      {}", rule.id);
        println!("family:    {}", rule.family.label());
        println!("invariant: {}", rule.invariant);
        println!();
        println!("{}", rule.doc);
        println!();
        println!("fires on:");
        for line in rule.fixture.lines() {
            println!("    {line}");
        }
        return ExitCode::SUCCESS;
    }

    if list_rules {
        let mut sorted: Vec<&miv_analyze::Rule> = CATALOGUE.iter().collect();
        sorted.sort_by_key(|r| r.id);
        for rule in sorted {
            println!(
                "{:<28} {:<11} {}",
                rule.id,
                rule.family.label(),
                rule.summary
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("analyze: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match discover_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("analyze: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!(
            "{}:{}:{}: [{}] {}",
            f.path, f.line, f.col, f.rule, f.message
        );
        if !f.snippet.is_empty() {
            println!("    {}", f.snippet);
        }
    }

    if let Some(path) = json_out {
        let rendered = findings_json(&report).render_pretty() + "\n";
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = sarif_out {
        let rendered = sarif_json(&report).render_pretty() + "\n";
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = suppressions_out {
        if let Err(e) = std::fs::write(&path, report.suppressions_baseline()) {
            eprintln!("analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    println!(
        "miv-analyze: {} finding(s), {} suppressed, {} files scanned, {} items modeled",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned,
        report.counts.items
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("analyze: {msg}\n{USAGE}");
    ExitCode::from(2)
}
