//! `analyze` — run the miv static-analysis catalogue over the
//! workspace.
//!
//! ```text
//! cargo run -p miv-analyze --release -- --workspace [--json out.json]
//! ```
//!
//! Exits 0 when the tree is clean, 1 on any unsuppressed finding, 2 on
//! usage or I/O errors. Findings print as clickable `file:line:col`
//! diagnostics; `--json` additionally writes the deterministic
//! `miv-findings-v1` report.

use std::path::PathBuf;
use std::process::ExitCode;

use miv_analyze::{analyze_workspace, discover_workspace_root, findings_json, CATALOGUE};

const USAGE: &str = "\
usage: analyze [--workspace | --root PATH] [--json PATH] [--list-rules]

  --workspace    analyze the enclosing cargo workspace (default)
  --root PATH    analyze the tree rooted at PATH instead
  --json PATH    also write the miv-findings-v1 report to PATH
  --list-rules   print the rule catalogue and exit
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut list_rules = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage_error("--json needs a path"),
            },
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in CATALOGUE {
            println!("{:<26} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("analyze: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match discover_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("analyze: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!(
            "{}:{}:{}: [{}] {}",
            f.path, f.line, f.col, f.rule, f.message
        );
        if !f.snippet.is_empty() {
            println!("    {}", f.snippet);
        }
    }

    if let Some(path) = json_out {
        let rendered = findings_json(&report).render_pretty() + "\n";
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    println!(
        "miv-analyze: {} finding(s), {} suppressed, {} files scanned",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("analyze: {msg}\n{USAGE}");
    ExitCode::from(2)
}
