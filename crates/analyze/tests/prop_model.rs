//! Property checks for the item model: the structural pass must hold
//! its span invariants on *every* source file in the workspace (the
//! richest corpus we have), extract enum variants faithfully on a
//! hand-built corpus, and build byte-identically across runs.

use std::path::Path;

use miv_analyze::{collect_rs_files, FileModel, Item, SourceFile};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Every (path, source, model) triple in the workspace.
fn workspace_models() -> Vec<(String, String, FileModel)> {
    let root = workspace_root();
    let mut out = Vec::new();
    for rel in collect_rs_files(&root).expect("walk workspace") {
        let src = std::fs::read_to_string(root.join(&rel)).expect("read source");
        let model = FileModel::build(&SourceFile::new(&src));
        out.push((rel, src, model));
    }
    assert!(out.len() > 80, "corpus looks truncated: {}", out.len());
    out
}

/// Asserts the span invariants for a sibling list: sorted, disjoint,
/// inside `(lo, hi)`, head within the item, children recursively valid.
fn check_spans(path: &str, items: &[Item], lo: usize, hi: usize) {
    let mut cursor = lo;
    for it in items {
        assert!(
            it.start >= cursor,
            "{path}: item `{}` at {} overlaps its predecessor (cursor {cursor})",
            it.name,
            it.start
        );
        assert!(
            it.start < it.end && it.end <= hi,
            "{path}: item `{}` has degenerate span {}..{} (bound {hi})",
            it.name,
            it.start,
            it.end
        );
        assert!(
            (it.start..it.end).contains(&it.head),
            "{path}: item `{}` head {} outside {}..{}",
            it.name,
            it.head,
            it.start,
            it.end
        );
        check_spans(path, &it.children, it.start, it.end);
        cursor = it.end;
    }
}

#[test]
fn item_spans_are_sorted_disjoint_and_nested() {
    for (path, src, model) in workspace_models() {
        assert!(
            model.brace_errors.is_empty(),
            "{path}: workspace sources must be brace-balanced"
        );
        check_spans(&path, &model.items, 0, src.len());
    }
}

#[test]
fn census_matches_item_tree() {
    for (path, _, model) in workspace_models() {
        fn walk(items: &[Item], f: &mut impl FnMut(&Item)) {
            for it in items {
                f(it);
                walk(&it.children, f);
            }
        }
        let mut total = 0usize;
        let mut enums = 0usize;
        let mut variants = 0usize;
        walk(&model.items, &mut |it| {
            total += 1;
            if it.kind == miv_analyze::ItemKind::Enum {
                enums += 1;
                variants += it.variants.len();
            }
        });
        assert_eq!(model.counts.items, total, "{path}: item census drifted");
        assert_eq!(model.counts.enums, enums, "{path}: enum census drifted");
        assert_eq!(
            model.counts.enum_variants, variants,
            "{path}: variant census drifted"
        );
        assert_eq!(
            model.counts.matches,
            model.matches.len(),
            "{path}: match census drifted"
        );
    }
}

#[test]
fn model_build_is_deterministic() {
    for (path, src, model) in workspace_models() {
        let again = FileModel::build(&SourceFile::new(&src));
        assert_eq!(
            format!("{model:?}"),
            format!("{again:?}"),
            "{path}: model must build identically"
        );
    }
}

/// Hand-built corpus: tricky enum shapes the variant extractor must
/// read correctly (payloads, discriminants, generics, attributes).
#[test]
fn enum_variant_extraction_corpus() {
    let cases: &[(&str, &str, &[&str])] = &[
        ("unit variants", "enum E { A, B, C }", &["A", "B", "C"]),
        (
            "payload variants",
            "enum E { A(u32), B { x: u8, y: u8 }, C }",
            &["A", "B", "C"],
        ),
        (
            "discriminants",
            "enum E { A = 1, B = 2 + 3, C }",
            &["A", "B", "C"],
        ),
        (
            "generics and where clause",
            "enum E<T: Clone> where T: Copy { Only(T) }",
            &["Only"],
        ),
        (
            "attributed variants",
            "enum E { #[doc = \"a\"] A, #[non_exhaustive] B(Vec<u8>) }",
            &["A", "B"],
        ),
        (
            "nested angle brackets in payloads",
            "enum E { A(Result<Vec<u8>, Box<dyn std::error::Error>>), B }",
            &["A", "B"],
        ),
        ("trailing comma", "enum E { A, B, }", &["A", "B"]),
        ("empty enum", "enum Never {}", &[]),
    ];
    for (label, src, expected) in cases {
        let model = FileModel::build(&SourceFile::new(src));
        let enums = model.enums();
        assert_eq!(enums.len(), 1, "{label}: expected one enum");
        assert_eq!(
            enums[0].variants, *expected,
            "{label}: variant extraction mismatch"
        );
    }
}

/// The arm reader must treat payload patterns as opaque (no head path)
/// and classify binding idents as wildcards.
#[test]
fn match_arm_corpus() {
    let src = r#"
fn f(x: Option<E>, e: E) -> u32 {
    let a = match e {
        E::A | E::B => 1,
        E::C if cond() => 2,
        other => 3,
    };
    let b = match x {
        Some(E::A) => 4,
        None => 5,
        _ => 6,
    };
    a + b
}
"#;
    let model = FileModel::build(&SourceFile::new(src));
    assert_eq!(model.matches.len(), 2);
    let first = &model.matches[0];
    assert_eq!(first.arms.len(), 3);
    assert_eq!(
        first.arms[0].head_paths(),
        vec![
            ("E".to_string(), "A".to_string()),
            ("E".to_string(), "B".to_string())
        ]
    );
    assert!(first.arms[1].has_guard);
    assert!(first.arms[2].is_wildcard(), "binding ident is a wildcard");
    let second = &model.matches[1];
    // `Some(E::A)` is a payload pattern: no head path, so the match is
    // opaque to exhaustive-variant-match (by design — no false positives).
    assert!(second.arms[0].head_paths().is_empty());
    assert!(second.arms[2].is_wildcard());
    assert!(
        !second.arms[1].is_wildcard(),
        "None is a path, not a binding"
    );
}
