//! Negative fixture: a panicking constructor with no `try_new` sibling.
//!
//! `fallible-constructor-pairing` must fire on `Unit::new`.

/// A trivially small storage unit.
pub struct Unit {
    cells: usize,
}

impl Unit {
    /// Builds a unit with a positive cell count.
    pub fn new(cells: usize) -> Self {
        assert!(cells > 0, "cells must be positive");
        Unit { cells }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.cells
    }
}
