//! Negative fixture: a tagged enum matched with a wildcard arm.
//!
//! `exhaustive-variant-match` must fire on `label` — the wildcard hides
//! any variant added to `FixtureAlgo` later.

// miv-analyze: exhaustive
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixtureAlgo {
    /// First algorithm.
    Alpha,
    /// Second algorithm.
    Beta,
    /// Third algorithm.
    Gamma,
}

/// Names the algorithm — but hides future variants behind `_`.
pub fn label(a: FixtureAlgo) -> &'static str {
    match a {
        FixtureAlgo::Alpha => "alpha",
        _ => "other",
    }
}
