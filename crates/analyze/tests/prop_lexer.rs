//! Property tests for the lexer: tricky syntactic corners, randomized
//! token soup, and a byte-for-byte roundtrip over every `.rs` file in
//! the workspace.

use std::path::Path;

use miv_analyze::lexer::{lex, TokenKind};
use miv_obs::Rng;

fn roundtrip(src: &str) -> String {
    lex(src).iter().map(|t| t.text(src)).collect()
}

fn code_idents(src: &str) -> Vec<String> {
    lex(src)
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src).to_string())
        .collect()
}

#[test]
fn nested_block_comments() {
    let src = "a /* one /* two /* three */ two */ one */ b";
    assert_eq!(roundtrip(src), src);
    assert_eq!(code_idents(src), ["a", "b"]);

    // Unbalanced: the comment swallows the rest of the file.
    let src = "a /* open /* deep */ still open";
    assert_eq!(roundtrip(src), src);
    assert_eq!(code_idents(src), ["a"]);
}

#[test]
fn raw_strings_at_every_hash_depth() {
    let src = r####"let a = r"plain"; let b = r#"has "quotes""#; ident"####;
    assert_eq!(roundtrip(src), src);
    assert!(code_idents(src).contains(&"ident".to_string()));
    assert!(!code_idents(src).contains(&"quotes".to_string()));

    let src = "let s = r##\"inner \"# almost\"## done";
    assert_eq!(roundtrip(src), src);
    assert!(code_idents(src).contains(&"done".to_string()));
    assert!(!code_idents(src).contains(&"almost".to_string()));

    let src = "let b = br#\"bytes \" raw\"# after";
    assert_eq!(roundtrip(src), src);
    assert!(code_idents(src).contains(&"after".to_string()));
}

#[test]
fn char_literals_containing_quotes_and_slashes() {
    // '"' must not open a string; '/' must not start a comment; '\''
    // must terminate correctly.
    let src = r#"let q = '"'; let s = '/'; let e = '\''; let bs = '\\'; trailing"#;
    assert_eq!(roundtrip(src), src);
    let idents = code_idents(src);
    assert!(idents.contains(&"trailing".to_string()));

    // A string containing // and /* must stay a string.
    let src = r#"let s = "// not /* a comment"; real"#;
    assert_eq!(roundtrip(src), src);
    assert!(code_idents(src).contains(&"real".to_string()));

    // Lifetimes must not swallow the following token.
    let src = "fn f<'a>(x: &'a str, y: &'static u8) {}";
    assert_eq!(roundtrip(src), src);
    assert!(code_idents(src).contains(&"str".to_string()));
}

#[test]
fn doc_comments_are_comments() {
    let src = "/// Instant::now() example\n//! HashMap in crate docs\nfn ok() {}";
    assert_eq!(roundtrip(src), src);
    let idents = code_idents(src);
    assert_eq!(idents, ["fn", "ok"]);
}

/// Randomized "token soup": concatenate random fragments (including
/// pathological ones) and require the lossless-lex property to hold on
/// every composition.
#[test]
fn prop_random_fragment_soup_roundtrips() {
    const FRAGMENTS: &[&str] = &[
        "ident ",
        "x.unwrap()",
        "\"str with \\\" escape\"",
        "r#\"raw \" body\"#",
        "'c'",
        "'\\n'",
        "'a ",
        "&'static ",
        "// line comment\n",
        "/* block /* nested */ */",
        "0xff_u32 ",
        "3.25 ",
        "0..5 ",
        "b\"bytes\"",
        "b'q'",
        "::<>(){}[];,#!",
        "\n    ",
        "r#type ",
        "1e-9 ",
        "/* unbalanced",
        "\"unterminated",
    ];
    let mut rng = Rng::seed_from_u64(0x5eed_1ece);
    for _case in 0..500 {
        let n = 1 + (rng.next_u64() % 12) as usize;
        let mut src = String::new();
        for _ in 0..n {
            let pick = (rng.next_u64() % FRAGMENTS.len() as u64) as usize;
            src.push_str(FRAGMENTS[pick]);
        }
        assert_eq!(roundtrip(&src), src, "lossless lex of {src:?}");
    }
}

/// The headline property: every `.rs` file in the workspace lexes to a
/// token stream whose concatenated spans reproduce the file exactly.
#[test]
fn prop_workspace_sources_roundtrip() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let files = miv_analyze::collect_rs_files(&root).expect("walk workspace");
    assert!(
        files.len() > 80,
        "expected the whole workspace, found {} files",
        files.len()
    );
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel)).expect("read source");
        let rebuilt = roundtrip(&src);
        assert_eq!(rebuilt, src, "lossless lex of {rel}");
        // And the stream must be contiguous: each token starts where
        // the previous one ended.
        let toks = lex(&src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap in token stream of {rel}");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "token stream of {rel} ends early");
    }
}
