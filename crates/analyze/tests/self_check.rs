//! The analyzer must pass on the workspace that ships it — including
//! its own sources — and its reports must be deterministic.
//!
//! Also drives the compiled `analyze` binary against the negative
//! fixtures under `tests/fixtures/`: trees that *must* fail with a
//! specific rule, proving the cross-file rules actually fire (a rule
//! that never fires is indistinguishable from a no-op).

use std::path::Path;
use std::process::Command;

use miv_analyze::{analyze_workspace, findings_json, sarif_json};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn fixture_root(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

#[test]
fn workspace_is_clean() {
    let report = analyze_workspace(&workspace_root()).expect("analyze workspace");
    assert!(
        report.findings.is_empty(),
        "workspace has unsuppressed findings:\n{:#?}",
        report.findings
    );
    assert!(
        report.files_scanned > 80,
        "expected the whole workspace, scanned {}",
        report.files_scanned
    );
    // The item model actually modeled the tree, not just walked it.
    assert!(
        report.counts.items > 1000,
        "expected thousands of modeled items, got {}",
        report.counts.items
    );
    assert!(report.counts.enums > 10, "enum census looks empty");
    assert!(report.counts.matches > 50, "match census looks empty");
    // Every suppression that shipped carries a justification.
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
    // And every allow site survived the unused-suppression audit (a
    // stale allow would have surfaced as a finding above).
    assert_eq!(report.suppressed.len(), report.allow_sites.len());
}

#[test]
fn findings_json_is_deterministic() {
    let root = workspace_root();
    let a = findings_json(&analyze_workspace(&root).expect("first pass")).render_pretty();
    let b = findings_json(&analyze_workspace(&root).expect("second pass")).render_pretty();
    assert_eq!(a, b, "findings JSON must be byte-identical across runs");
    assert!(a.contains("\"schema\""), "report carries its schema tag");
    assert!(a.contains("miv-findings-v2"));
    assert!(a.contains("\"suppression_inventory\""));
    assert!(a.contains("\"family\""));
}

#[test]
fn sarif_is_deterministic_and_well_formed() {
    let root = workspace_root();
    let a = sarif_json(&analyze_workspace(&root).expect("first pass")).render_pretty();
    let b = sarif_json(&analyze_workspace(&root).expect("second pass")).render_pretty();
    assert_eq!(a, b, "SARIF must be byte-identical across runs");
    assert!(a.contains("\"version\": \"2.1.0\""));
    assert!(a.contains("\"miv-analyze\""));
    assert!(
        a.contains("exhaustive-variant-match"),
        "rules metadata present"
    );
}

#[test]
fn suppressions_baseline_matches_committed_file() {
    let report = analyze_workspace(&workspace_root()).expect("analyze workspace");
    let committed =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("suppressions.txt"))
            .expect("crates/analyze/suppressions.txt is committed");
    assert_eq!(
        report.suppressions_baseline(),
        committed,
        "suppression baseline drifted: rerun `analyze --workspace --suppressions \
         crates/analyze/suppressions.txt` and review the diff"
    );
}

#[test]
fn list_rules_is_sorted_with_family_column() {
    let out = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .arg("--list-rules")
        .output()
        .expect("run analyze --list-rules");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let ids: Vec<&str> = stdout
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    assert!(ids.len() >= 13, "catalogue shrank: {ids:?}");
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "--list-rules must print in id order");
    for new_rule in [
        "exhaustive-variant-match",
        "fallible-constructor-pairing",
        "plumbed-enum",
        "unused-suppression",
    ] {
        assert!(ids.contains(&new_rule), "missing {new_rule}");
    }
    // Every line carries the family column.
    for line in stdout.lines() {
        assert!(
            line.contains("structural") || line.contains("token"),
            "no family column in: {line}"
        );
    }
}

#[test]
fn explain_prints_rule_card() {
    let out = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(["--explain", "exhaustive-variant-match"])
        .output()
        .expect("run analyze --explain");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("rule:      exhaustive-variant-match"));
    assert!(stdout.contains("family:    structural"));
    assert!(stdout.contains("fires on:"));
    // Unknown rules are a usage error, not a crash.
    let bad = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(["--explain", "no-such-rule"])
        .output()
        .expect("run analyze --explain bad");
    assert_eq!(bad.status.code(), Some(2));
}

/// Runs the binary over a fixture tree; returns (exit code, stdout).
fn run_on_fixture(name: &str) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .arg("--root")
        .arg(fixture_root(name))
        .output()
        .expect("run analyze on fixture");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf-8"),
    )
}

#[test]
fn neg_wildcard_fixture_fails_exhaustive_variant_match() {
    let (code, stdout) = run_on_fixture("neg_wildcard");
    assert_eq!(code, 1, "wildcard over a tagged enum must fail:\n{stdout}");
    assert!(
        stdout.contains("[exhaustive-variant-match]"),
        "wrong rule fired:\n{stdout}"
    );
    assert!(stdout.contains("FixtureAlgo"), "names the enum:\n{stdout}");
}

#[test]
fn neg_missing_try_fixture_fails_constructor_pairing() {
    let (code, stdout) = run_on_fixture("neg_missing_try");
    assert_eq!(
        code, 1,
        "panicking new without try_new must fail:\n{stdout}"
    );
    assert!(
        stdout.contains("[fallible-constructor-pairing]"),
        "wrong rule fired:\n{stdout}"
    );
    assert!(
        stdout.contains("Unit::new"),
        "names the constructor:\n{stdout}"
    );
}
