//! The analyzer must pass on the workspace that ships it — including
//! its own sources — and its JSON report must be deterministic.

use std::path::Path;

use miv_analyze::{analyze_workspace, findings_json};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn workspace_is_clean() {
    let report = analyze_workspace(&workspace_root()).expect("analyze workspace");
    assert!(
        report.findings.is_empty(),
        "workspace has unsuppressed findings:\n{:#?}",
        report.findings
    );
    assert!(
        report.files_scanned > 80,
        "expected the whole workspace, scanned {}",
        report.files_scanned
    );
    // Every suppression that shipped carries a justification.
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
}

#[test]
fn findings_json_is_deterministic() {
    let root = workspace_root();
    let a = findings_json(&analyze_workspace(&root).expect("first pass")).render_pretty();
    let b = findings_json(&analyze_workspace(&root).expect("second pass")).render_pretty();
    assert_eq!(a, b, "findings JSON must be byte-identical across runs");
    assert!(a.contains("\"schema\""), "report carries its schema tag");
    assert!(a.contains("miv-findings-v1"));
}
