//! Regression tests for the rule engine: for every rule in the
//! catalogue, one fixture proving it fires and one proving a justified
//! `allow(rule, reason="...")` suppresses it — plus scope negatives
//! (test code, out-of-scope crates) and directive hygiene.

use miv_analyze::{analyze_sources, check_source, FileContext, FileReport, CATALOGUE};

const LIB: &str = "crates/sim/src/fixture.rs";
const CORE_LIB: &str = "crates/core/src/fixture.rs";

fn check(rel_path: &str, src: &str) -> FileReport {
    check_source(&FileContext::from_rel_path(rel_path), src)
}

fn fired(report: &FileReport) -> Vec<String> {
    report.findings.iter().map(|f| f.rule.clone()).collect()
}

/// Prepends an allow directive for `rule` to `line` and asserts the
/// fixture flips from firing to suppressed-with-reason.
fn assert_fires_and_suppresses(rel_path: &str, rule: &str, src: &str) {
    let report = check(rel_path, src);
    assert!(
        fired(&report).contains(&rule.to_string()),
        "{rule} should fire on {src:?}, got {:?}",
        report.findings
    );

    // Same source with a directive above every line: here we rebuild
    // the fixture with the allow comment attached to each line, which
    // must suppress every finding of this rule.
    let allowed: String = src
        .lines()
        .map(|l| format!("// miv-analyze: allow({rule}, reason=\"fixture\")\n{l}\n"))
        .collect();
    let report = check(rel_path, &allowed);
    assert!(
        !fired(&report).contains(&rule.to_string()),
        "{rule} should be suppressed in {allowed:?}, got {:?}",
        report.findings
    );
    assert!(
        report.suppressed.iter().any(|s| s.rule == rule),
        "{rule} suppression should be recorded"
    );
    assert!(
        report.suppressed.iter().all(|s| !s.reason.is_empty()),
        "suppressions carry their justification"
    );
}

#[test]
fn no_wall_clock_fires_and_suppresses() {
    assert_fires_and_suppresses(LIB, "no-wall-clock", "fn t() { let t0 = Instant::now(); }");
    assert_fires_and_suppresses(
        LIB,
        "no-wall-clock",
        "fn t() { let s = SystemTime::now(); }",
    );
}

#[test]
fn no_wall_clock_scope_negatives() {
    // Test files may use clocks.
    let r = check(
        "crates/sim/tests/fixture.rs",
        "fn t() { let t0 = Instant::now(); }",
    );
    assert!(fired(&r).is_empty());
    // #[cfg(test)] items may too.
    let r = check(
        LIB,
        "#[cfg(test)]\nmod tests {\n fn t() { let t0 = Instant::now(); } }\n",
    );
    assert!(fired(&r).is_empty());
    // Mentions in strings and docs are not code.
    let r = check(LIB, "/// Instant::now() is forbidden\nfn doc() {}\n");
    assert!(fired(&r).is_empty());
    let r = check(LIB, "fn f() -> &'static str { \"Instant::now\" }\n");
    assert!(fired(&r).is_empty());
}

#[test]
fn deterministic_iteration_fires_and_suppresses() {
    assert_fires_and_suppresses(
        LIB,
        "deterministic-iteration",
        "use std::collections::HashMap;",
    );
    assert_fires_and_suppresses(
        LIB,
        "deterministic-iteration",
        "fn f() { let s: HashSet<u64> = HashSet::new(); }",
    );
}

#[test]
fn deterministic_iteration_scope_negatives() {
    let r = check(LIB, "use std::collections::BTreeMap;\n");
    assert!(fired(&r).is_empty());
    let r = check(
        "crates/sim/benches/fixture.rs",
        "use std::collections::HashMap;\n",
    );
    assert!(fired(&r).is_empty());
}

#[test]
fn no_unwrap_in_lib_fires_and_suppresses() {
    assert_fires_and_suppresses(
        LIB,
        "no-unwrap-in-lib",
        "fn f(x: Option<u8>) { x.unwrap(); }",
    );
    assert_fires_and_suppresses(LIB, "no-unwrap-in-lib", "fn f() { panic!(\"boom\"); }");
    assert_fires_and_suppresses(LIB, "no-unwrap-in-lib", "fn f() { todo!(); }");
}

#[test]
fn no_unwrap_scope_negatives() {
    // .expect("message") is the sanctioned invariant form.
    let r = check(
        LIB,
        "fn f(x: Option<u8>) { x.expect(\"invariant holds\"); }",
    );
    assert!(fired(&r).is_empty());
    // unwrap_or and friends are fine.
    let r = check(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }");
    assert!(fired(&r).is_empty());
    // Binaries may unwrap (fn main reports errors by aborting).
    let r = check(
        "crates/sim/src/bin/fixture.rs",
        "fn main() { std::fs::read(\"x\").unwrap(); }",
    );
    assert!(fired(&r).is_empty());
    // Test modules may unwrap.
    let r = check(
        LIB,
        "#[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }",
    );
    assert!(fired(&r).is_empty());
}

#[test]
fn forbid_unsafe_header_fires_and_suppresses() {
    // A crate root without the header fires at line 1...
    let r = check("crates/sim/src/lib.rs", "//! Crate docs.\npub mod x;\n");
    assert_eq!(fired(&r), ["forbid-unsafe-header"]);
    assert_eq!(r.findings[0].line, 1);
    // ...and not at all when the header is present.
    let r = check(
        "crates/sim/src/lib.rs",
        "//! Crate docs.\n#![forbid(unsafe_code)]\npub mod x;\n",
    );
    assert!(fired(&r).is_empty());
    // Non-roots don't need the header.
    let r = check(LIB, "pub fn f() {}\n");
    assert!(fired(&r).is_empty());
    // File-scoped suppression: a directive anywhere in the file works.
    let r = check(
        "crates/sim/src/lib.rs",
        "//! Docs.\n// miv-analyze: allow(forbid-unsafe-header, reason=\"fixture\")\npub mod x;\n",
    );
    assert!(fired(&r).is_empty());
    assert_eq!(r.suppressed.len(), 1);
}

#[test]
fn no_truncating_cast_fires_and_suppresses() {
    assert_fires_and_suppresses(
        CORE_LIB,
        "no-truncating-cast",
        "fn f(x: u64) -> u32 { x as u32 }",
    );
    assert_fires_and_suppresses(
        CORE_LIB,
        "no-truncating-cast",
        "fn f(x: u64) -> u8 { (x % m()) as u8 }",
    );
}

#[test]
fn no_truncating_cast_scope_negatives() {
    // Literals and SCREAMING_CASE constants are in view — exempt.
    let r = check(CORE_LIB, "fn f() -> u32 { 64 as u32 }");
    assert!(fired(&r).is_empty());
    let r = check(CORE_LIB, "fn f() -> u32 { DIGEST_BYTES as u32 }");
    assert!(fired(&r).is_empty());
    // Widening is not narrowing.
    let r = check(CORE_LIB, "fn f(x: u32) -> u64 { x as u64 }");
    assert!(fired(&r).is_empty());
    // Out-of-scope crates (no address arithmetic) are exempt.
    let r = check(
        "crates/hash/src/fixture.rs",
        "fn f(x: u64) -> u32 { x as u32 }",
    );
    assert!(fired(&r).is_empty());
}

#[test]
fn reset_preserves_schedules_fires_and_suppresses() {
    assert_fires_and_suppresses(
        LIB,
        "reset-preserves-schedules",
        "impl C { fn reset_stats(&mut self) { self.bus_schedule.clear(); } }",
    );
    assert_fires_and_suppresses(
        LIB,
        "reset-preserves-schedules",
        "impl C { fn reset(&mut self) { self.sched.inner.clear(); } }",
    );
}

#[test]
fn reset_preserves_schedules_scope_negatives() {
    // Clearing non-schedule state in a reset is fine.
    let r = check(
        LIB,
        "impl C { fn reset_stats(&mut self) { self.counters.clear(); } }",
    );
    assert!(fired(&r).is_empty());
    // Clearing a schedule outside a reset method is fine (quiesce etc).
    let r = check(
        LIB,
        "impl C { fn rebuild(&mut self) { self.bus_schedule.clear(); } }",
    );
    assert!(fired(&r).is_empty());
    // Reading a schedule in a reset is fine.
    let r = check(
        LIB,
        "impl C { fn reset_stats(&mut self) { let n = self.bus_schedule.len(); } }",
    );
    assert!(fired(&r).is_empty());
}

#[test]
fn rc_not_sent_fires_and_suppresses() {
    assert_fires_and_suppresses(LIB, "rc-not-sent", "use std::rc::Rc;");
    assert_fires_and_suppresses(
        LIB,
        "rc-not-sent",
        "fn f() { let x = std::rc::Rc::new(1); }",
    );
}

#[test]
fn rc_not_sent_scope_negatives() {
    let r = check(LIB, "use std::sync::Arc;\n");
    assert!(fired(&r).is_empty());
    let r = check("crates/sim/tests/fixture.rs", "use std::rc::Rc;\n");
    assert!(fired(&r).is_empty());
}

const SERVE_LIB: &str = "crates/sim/src/serve.rs";

#[test]
fn rc_not_sent_serving_layer_fires_and_suppresses() {
    // In serve*.rs the bare `Rc`/`RefCell` idents fire even without an
    // `rc::` path in sight — the aliased-handle case the base rule
    // cannot see.
    assert_fires_and_suppresses(SERVE_LIB, "rc-not-sent", "fn f(shard: Rc<Shard>) {}");
    assert_fires_and_suppresses(
        SERVE_LIB,
        "rc-not-sent",
        "struct Task { state: RefCell<State> }",
    );
    assert_fires_and_suppresses(
        "crates/sim/src/serve_pool.rs",
        "rc-not-sent",
        "fn spawn() { let h = Rc::new(Pool::new()); }",
    );
}

#[test]
fn rc_not_sent_serving_layer_scope_negatives() {
    // The stricter check is path-scoped: a bare `Rc` ident elsewhere
    // (e.g. in a doc string or an unrelated type name) stays legal.
    let r = check(LIB, "fn f(shard: Rc<Shard>) {}\n");
    assert!(fired(&r).is_empty());
    // Plain Send data in the serving layer is fine.
    let r = check(
        SERVE_LIB,
        "fn f(spec: ShardSpec) -> ShardOutcome { run(spec) }\n",
    );
    assert!(fired(&r).is_empty());
    // Serving-layer test spans keep the usual exemption.
    let r = check(
        SERVE_LIB,
        "#[cfg(test)]\nmod tests {\n    fn t() { let x = Rc::new(1); }\n}\n",
    );
    assert!(fired(&r).is_empty());
}

#[test]
fn doc_comment_required_fires_and_suppresses() {
    assert_fires_and_suppresses(CORE_LIB, "doc-comment-required", "pub fn undocumented() {}");
    assert_fires_and_suppresses(
        CORE_LIB,
        "doc-comment-required",
        "pub struct Bare { x: u8 }",
    );
}

#[test]
fn doc_comment_required_scope_negatives() {
    // Documented items pass, attributes between doc and item are fine.
    let r = check(
        CORE_LIB,
        "/// Documented.\n#[derive(Debug)]\npub struct S { x: u8 }\n",
    );
    assert!(fired(&r).is_empty());
    // pub(crate) is internal API.
    let r = check(CORE_LIB, "pub(crate) fn internal() {}\n");
    assert!(fired(&r).is_empty());
    // pub use re-exports and pub mod declarations are exempt.
    let r = check(
        CORE_LIB,
        "pub use crate::engine::VerifiedMemory;\npub mod x;\n",
    );
    assert!(fired(&r).is_empty());
    // Out-of-scope crates are exempt.
    let r = check(LIB, "pub fn undocumented() {}\n");
    assert!(fired(&r).is_empty());
    // `pub const fn` is a fn, not an undocumented const.
    let r = check(CORE_LIB, "/// Doc.\npub const fn f() -> u8 { 0 }\n");
    assert!(fired(&r).is_empty());
}

#[test]
fn span_balance_fires_and_suppresses() {
    assert_fires_and_suppresses(
        LIB,
        "span-balance",
        "fn f(t: &SpanTracer) { t.span_enter(\"x\"); work(); t.span_exit(); }",
    );
    assert_fires_and_suppresses(
        LIB,
        "span-balance",
        "fn f(t: &SpanTracer) { t.span_exit(); }",
    );
}

#[test]
fn span_balance_scope_negatives() {
    // The RAII guard is the sanctioned form.
    let r = check(LIB, "fn f(t: &SpanTracer) { let _g = t.span(\"x\"); }");
    assert!(fired(&r).is_empty());
    // miv-obs defines the manual form; it may reference it freely.
    let r = check(
        "crates/obs/src/spans.rs",
        "pub fn span_enter(&self, name: &str) {}\n",
    );
    assert!(fired(&r).is_empty());
    // Test code may bracket manually.
    let r = check(
        "crates/sim/tests/fixture.rs",
        "fn t(s: &SpanTracer) { s.span_enter(\"x\"); }",
    );
    assert!(fired(&r).is_empty());
    let r = check(
        LIB,
        "#[cfg(test)]\nmod tests { fn t(s: &SpanTracer) { s.span_enter(\"x\"); } }",
    );
    assert!(fired(&r).is_empty());
    // Mentions in docs and strings are not code.
    let r = check(LIB, "/// span_enter is forbidden here\nfn doc() {}\n");
    assert!(fired(&r).is_empty());
}

#[test]
fn directive_hygiene() {
    // Reason-less allow: itself a finding.
    let r = check(LIB, "// miv-analyze: allow(no-wall-clock)\n");
    assert_eq!(fired(&r), ["directive"]);
    // Empty reason: rejected.
    let r = check(LIB, "// miv-analyze: allow(no-wall-clock, reason=\"\")\n");
    assert_eq!(fired(&r), ["directive"]);
    // Unknown rule id: rejected.
    let r = check(LIB, "// miv-analyze: allow(no-such-rule, reason=\"x\")\n");
    assert_eq!(fired(&r), ["directive"]);
    // A malformed directive does not suppress the finding it precedes.
    let r = check(
        LIB,
        "// miv-analyze: allow(no-wall-clock)\nfn f() { let t = Instant::now(); }\n",
    );
    let rules = fired(&r);
    assert!(rules.contains(&"directive".to_string()));
    assert!(rules.contains(&"no-wall-clock".to_string()));
}

const TAGGED_ENUM: &str = "\
// miv-analyze: exhaustive
enum Algo { A, B, C }
";

#[test]
fn exhaustive_variant_match_fires_and_suppresses() {
    // Wildcard arm over a tagged enum.
    assert_fires_and_suppresses(
        LIB,
        "exhaustive-variant-match",
        &format!("{TAGGED_ENUM}fn f(a: Algo) -> u8 {{ match a {{ Algo::A => 1, _ => 0 }} }}"),
    );
    // Binding ident is a wildcard too.
    assert_fires_and_suppresses(
        LIB,
        "exhaustive-variant-match",
        &format!("{TAGGED_ENUM}fn f(a: Algo) -> u8 {{ match a {{ Algo::A => 1, other => 0 }} }}"),
    );
    // Missing variant without a wildcard (non-compiling in rustc, but
    // the analyzer must still name what's absent).
    let r = check(
        LIB,
        &format!("{TAGGED_ENUM}fn f(a: Algo) -> u8 {{ match a {{ Algo::A => 1, Algo::B => 2 }} }}"),
    );
    assert!(fired(&r).contains(&"exhaustive-variant-match".to_string()));
    assert!(
        r.findings
            .iter()
            .any(|f| f.message.contains("Algo::C") || f.message.contains('C')),
        "finding names the missing variant: {:?}",
        r.findings
    );
}

#[test]
fn exhaustive_variant_match_scope_negatives() {
    // Untagged enums keep their wildcards.
    let r = check(
        LIB,
        "enum Algo { A, B }\nfn f(a: Algo) -> u8 { match a { Algo::A => 1, _ => 0 } }",
    );
    assert!(fired(&r).is_empty());
    // All variants named: clean, including or-patterns.
    let r = check(
        LIB,
        &format!(
            "{TAGGED_ENUM}fn f(a: Algo) -> u8 {{ match a {{ Algo::A | Algo::B => 1, Algo::C => 2 }} }}"
        ),
    );
    assert!(fired(&r).is_empty());
    // Payload patterns are opaque: `Some(Algo::A)` has no head path, so
    // the rule must not claim the match is about `Algo`.
    let r = check(
        LIB,
        &format!(
            "{TAGGED_ENUM}fn f(a: Option<Algo>) -> u8 {{ match a {{ Some(Algo::A) => 1, _ => 0 }} }}"
        ),
    );
    assert!(fired(&r).is_empty());
    // Test spans keep their wildcards.
    let r = check(
        LIB,
        &format!(
            "{TAGGED_ENUM}#[cfg(test)]\nmod tests {{\n  fn t(a: Algo) -> u8 {{ match a {{ Algo::A => 1, _ => 0 }} }}\n}}"
        ),
    );
    assert!(fired(&r).is_empty());
    // `Self::Variant` resolves through the enclosing impl.
    let r = check(
        LIB,
        &format!(
            "{TAGGED_ENUM}impl Algo {{ fn f(self) -> u8 {{ match self {{ Self::A => 1, _ => 0 }} }} }}"
        ),
    );
    assert!(fired(&r).contains(&"exhaustive-variant-match".to_string()));
}

const STORE_LIB: &str = "crates/store/src/fixture.rs";

#[test]
fn fallible_constructor_pairing_fires_and_suppresses() {
    // Panicking new without a try_new sibling.
    assert_fires_and_suppresses(
        STORE_LIB,
        "fallible-constructor-pairing",
        "impl Unit { pub fn new(n: usize) -> Self { assert!(n > 0); Unit { n } } }",
    );
    // try_new exists but new is not a thin wrapper over it.
    assert_fires_and_suppresses(
        STORE_LIB,
        "fallible-constructor-pairing",
        "impl Unit {\n  pub fn new(n: usize) -> Self { assert!(n > 0); Unit { n } }\n  pub fn try_new(n: usize) -> Result<Self, E> { Ok(Unit { n }) }\n}",
    );
}

#[test]
fn fallible_constructor_pairing_scope_negatives() {
    // The sanctioned thin-wrapper shape.
    let r = check(
        STORE_LIB,
        "impl Unit {\n  pub fn new(n: usize) -> Self { Self::try_new(n).expect(\"documented invariant\") }\n  pub fn try_new(n: usize) -> Result<Self, E> { Ok(Unit { n }) }\n}",
    );
    assert!(fired(&r).is_empty());
    // Infallible constructors need no sibling.
    let r = check(
        STORE_LIB,
        "impl Unit { pub fn new(n: usize) -> Self { Unit { n } } }",
    );
    assert!(fired(&r).is_empty());
    // debug_assert is stripped in release: exempt.
    let r = check(
        STORE_LIB,
        "impl Unit { pub fn new(n: usize) -> Self { debug_assert!(n > 0); Unit { n } } }",
    );
    assert!(fired(&r).is_empty());
    // Private constructors and out-of-scope crates are exempt.
    let r = check(
        STORE_LIB,
        "impl Unit { fn new(n: usize) -> Self { assert!(n > 0); Unit { n } } }",
    );
    assert!(fired(&r).is_empty());
    let r = check(
        LIB,
        "impl Unit { pub fn new(n: usize) -> Self { assert!(n > 0); Unit { n } } }",
    );
    assert!(fired(&r).is_empty());
    // Test-gated impls are exempt.
    let r = check(
        STORE_LIB,
        "#[cfg(test)]\nmod tests {\n  impl Unit { pub fn new(n: usize) -> Self { assert!(n > 0); Unit { n } } }\n}",
    );
    assert!(fired(&r).is_empty());
}

/// A minimal plumbed workspace: the manifest's `HashAlgo` entry wants a
/// carrier `ALL` in the defining file and `HashAlgo::ALL` references in
/// both dispatch files.
fn plumb_sources(carrier: &str, experiments: &str, cell: &str) -> Vec<(String, String)> {
    vec![
        (
            "crates/hash/src/digest.rs".to_string(),
            format!("enum HashAlgo {{ Md5, Sha1 }}\nimpl HashAlgo {{ {carrier} }}\n"),
        ),
        (
            "crates/sim/src/experiments.rs".to_string(),
            experiments.to_string(),
        ),
        ("crates/adversary/src/cell.rs".to_string(), cell.to_string()),
    ]
}

#[test]
fn plumbed_enum_cross_file_checks() {
    let full_carrier = "pub const ALL: [HashAlgo; 2] = [HashAlgo::Md5, HashAlgo::Sha1];";
    let dispatch = "fn sweep() { for a in HashAlgo::ALL { run(a); } }";
    // Fully plumbed: clean.
    let r = analyze_sources(&plumb_sources(full_carrier, dispatch, dispatch));
    assert!(r.findings.is_empty(), "clean plumb fired: {:?}", r.findings);
    // Carrier misses a variant: fires on the defining file.
    let r = analyze_sources(&plumb_sources(
        "pub const ALL: [HashAlgo; 1] = [HashAlgo::Md5];",
        dispatch,
        dispatch,
    ));
    assert!(r
        .findings
        .iter()
        .any(|f| f.rule == "plumbed-enum" && f.message.contains("Sha1")));
    // No carrier at all.
    let r = analyze_sources(&plumb_sources("", dispatch, dispatch));
    assert!(r
        .findings
        .iter()
        .any(|f| f.rule == "plumbed-enum" && f.message.contains("no carrier const")));
    // A dispatch file that stops referencing the carrier.
    let r = analyze_sources(&plumb_sources(full_carrier, "fn sweep() {}", dispatch));
    assert!(r
        .findings
        .iter()
        .any(|f| f.rule == "plumbed-enum" && f.message.contains("experiments.rs")));
}

#[test]
fn unused_suppression_fires_and_is_unsuppressible() {
    // An allow shielding nothing is itself a finding...
    let r = check(
        LIB,
        "// miv-analyze: allow(no-wall-clock, reason=\"stale\")\nfn f() {}\n",
    );
    assert_eq!(fired(&r), ["unused-suppression"]);
    assert!(r.suppressed.is_empty());
    // ...and allowing unused-suppression does not silence the audit.
    let r = check(
        LIB,
        "// miv-analyze: allow(unused-suppression, reason=\"nope\")\n\
         // miv-analyze: allow(no-wall-clock, reason=\"stale\")\nfn f() {}\n",
    );
    assert!(fired(&r).contains(&"unused-suppression".to_string()));
    // A live allow is not unused.
    let r = check(
        LIB,
        "// miv-analyze: allow(no-wall-clock, reason=\"fixture\")\nfn f() { let t = Instant::now(); }\n",
    );
    assert!(!fired(&r).contains(&"unused-suppression".to_string()));
}

#[test]
fn unbalanced_braces_are_a_directive_finding() {
    // Regression for the in_test_span fragility: a file whose braces do
    // not balance must say so loudly instead of silently mis-scoping
    // every span-sensitive rule.
    let r = check(LIB, "fn f() { if x { g(); }\n");
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == "directive" && f.message.contains("brace")),
        "expected a brace-balance finding, got {:?}",
        r.findings
    );
    // And it is unsuppressible.
    let r = check(
        LIB,
        "// miv-analyze: allow(directive, reason=\"nope\")\nfn f() { if x { g(); }\n",
    );
    assert!(r.findings.iter().any(|f| f.rule == "directive"));
}

#[test]
fn unattached_exhaustive_tag_is_a_directive_finding() {
    // A tag with no enum after it is dead weight: flag it.
    let r = check(LIB, "// miv-analyze: exhaustive\nfn not_an_enum() {}\n");
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == "directive" && f.message.contains("exhaustive")),
        "expected an unattached-tag finding, got {:?}",
        r.findings
    );
    // A tag followed (eventually) by its enum attaches fine.
    let r = check(LIB, TAGGED_ENUM);
    assert!(fired(&r).is_empty());
}

#[test]
fn catalogue_has_at_least_eight_rules_with_unique_ids() {
    assert!(
        CATALOGUE.len() >= 8,
        "catalogue shrank to {}",
        CATALOGUE.len()
    );
    let mut ids: Vec<&str> = CATALOGUE.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), CATALOGUE.len(), "duplicate rule ids");
}
