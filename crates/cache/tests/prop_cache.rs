//! Randomized property tests for the set-associative cache model,
//! driven by the workspace's deterministic PRNG (`miv_obs::rng`).
//!
//! These check structural invariants under arbitrary operation sequences:
//! no duplicate resident lines, capacity bounds per set, LRU correctness
//! against a reference model, stats bookkeeping, and stats merging.

use std::collections::VecDeque;

use miv_cache::{Cache, CacheConfig, CacheStats, KindStats, LineKind};
use miv_obs::rng::Rng;

/// A reference cache: per-set VecDeque of (tag, dirty), front = LRU.
struct RefCache {
    config: CacheConfig,
    sets: Vec<VecDeque<(u64, bool)>>,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        RefCache {
            config,
            sets: (0..config.sets()).map(|_| VecDeque::new()).collect(),
        }
    }

    fn lookup(&mut self, addr: u64, write: bool) -> bool {
        let tag = self.config.tag(addr);
        let set = &mut self.sets[self.config.set_index(addr) as usize];
        if let Some(pos) = set.iter().position(|(t, _)| *t == tag) {
            let (t, d) = set.remove(pos).unwrap();
            set.push_back((t, d || write));
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        let tag = self.config.tag(addr);
        let assoc = self.config.assoc as usize;
        let set = &mut self.sets[self.config.set_index(addr) as usize];
        let victim = if set.len() == assoc {
            set.pop_front().map(|(t, _)| t)
        } else {
            None
        };
        set.push_back((tag, dirty));
        victim
    }

    fn contains(&self, addr: u64) -> bool {
        let tag = self.config.tag(addr);
        self.sets[self.config.set_index(addr) as usize]
            .iter()
            .any(|(t, _)| *t == tag)
    }

    fn dirty(&self, addr: u64) -> Option<bool> {
        let tag = self.config.tag(addr);
        self.sets[self.config.set_index(addr) as usize]
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, d)| *d)
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access { addr: u64, write: bool },
    Invalidate { addr: u64 },
    MarkClean { addr: u64 },
}

/// Confine addresses to 16 lines' worth of space spread over a tiny
/// cache so sets collide heavily.
fn random_op(rng: &mut Rng) -> Op {
    let line = rng.gen_range_u64(0, 16);
    let addr = line * 64 + (line % 7);
    match rng.pick_weighted(&[4, 1, 1]) {
        0 => Op::Access {
            addr,
            write: rng.gen_bool(0.5),
        },
        1 => Op::Invalidate { addr },
        _ => Op::MarkClean { addr },
    }
}

/// The cache model agrees with a simple LRU reference on residency and
/// dirty state under arbitrary access/invalidate/clean sequences.
#[test]
fn matches_reference_lru() {
    let mut rng = Rng::seed_from_u64(0xcafe);
    for _case in 0..64 {
        let config = CacheConfig::new(256, 2, 64); // 2 sets × 2 ways
        let mut sut = Cache::new(config);
        let mut reference = RefCache::new(config);
        let ops = rng.gen_range_usize(1, 400);

        for _ in 0..ops {
            match random_op(&mut rng) {
                Op::Access { addr, write } => {
                    let hit = sut.lookup(addr, LineKind::Data, write).is_hit();
                    let ref_hit = reference.lookup(addr, write);
                    assert_eq!(hit, ref_hit, "hit mismatch at {addr:#x}");
                    if !hit {
                        let victim = sut.fill(addr, LineKind::Data, write);
                        let ref_victim = reference.fill(addr, write);
                        assert_eq!(victim.map(|v| v.addr), ref_victim);
                    }
                }
                Op::Invalidate { addr } => {
                    let got = sut.invalidate(addr).is_some();
                    let tag = config.tag(addr);
                    let set = &mut reference.sets[config.set_index(addr) as usize];
                    let expect = set
                        .iter()
                        .position(|(t, _)| *t == tag)
                        .map(|p| set.remove(p));
                    assert_eq!(got, expect.is_some());
                }
                Op::MarkClean { addr } => {
                    let got = sut.mark_clean(addr);
                    let tag = config.tag(addr);
                    let set = &mut reference.sets[config.set_index(addr) as usize];
                    let mut found = false;
                    for entry in set.iter_mut() {
                        if entry.0 == tag {
                            entry.1 = false;
                            found = true;
                        }
                    }
                    assert_eq!(got, found);
                }
            }
            // Residency & dirty state agree for every address in range.
            for line in 0..16u64 {
                let addr = line * 64;
                assert_eq!(sut.contains(addr), reference.contains(addr));
                assert_eq!(sut.dirty(addr), reference.dirty(addr));
            }
        }
    }
}

/// Hits + misses equals total accesses, and occupancy is bounded by
/// capacity.
#[test]
fn stats_and_occupancy_invariants() {
    let mut rng = Rng::seed_from_u64(0xbeef);
    for _case in 0..64 {
        let config = CacheConfig::new(512, 4, 32); // 4 sets × 4 ways, 32-B lines
        let mut c = Cache::new(config);
        let n = rng.gen_range_usize(1, 300);
        for _ in 0..n {
            let line = rng.gen_range_u64(0, 64);
            let write = rng.gen_bool(0.5);
            let addr = line * 32;
            let kind = if line.is_multiple_of(3) {
                LineKind::Hash
            } else {
                LineKind::Data
            };
            if c.lookup(addr, kind, write).is_miss() {
                c.fill(addr, kind, write);
            }
        }
        let s = *c.stats();
        assert_eq!(s.total_accesses(), n as u64);
        assert_eq!(s.data.hits() + s.data.misses(), s.data.accesses());
        assert_eq!(s.hash.hits() + s.hash.misses(), s.hash.accesses());
        let (d, h) = c.occupancy();
        assert!(d + h <= config.lines());
        // Fills = misses; evictions can't exceed fills.
        assert!(s.data.evictions + s.hash.evictions <= s.total_misses());
        assert!(s.data.dirty_evictions <= s.data.evictions);
        assert!(s.hash.dirty_evictions <= s.hash.evictions);
    }
}

/// After a flush the cache is empty and every previously-dirty line was
/// reported dirty.
#[test]
fn flush_reports_all_dirty_lines() {
    let mut rng = Rng::seed_from_u64(0xf00d);
    for _case in 0..64 {
        let config = CacheConfig::new(1024, 2, 64);
        let mut c = Cache::new(config);
        let mut dirty_now = std::collections::HashMap::new();
        let n = rng.gen_range_usize(1, 100);
        for _ in 0..n {
            let line = rng.gen_range_u64(0, 32);
            let write = rng.gen_bool(0.5);
            let addr = line * 64;
            if c.lookup(addr, LineKind::Data, write).is_miss() {
                if let Some(v) = c.fill(addr, LineKind::Data, write) {
                    dirty_now.remove(&v.addr);
                }
            }
            let e = dirty_now.entry(config.tag(addr)).or_insert(false);
            *e = *e || write;
        }
        let drained = c.flush();
        assert_eq!(drained.len(), dirty_now.len());
        for ev in drained {
            assert_eq!(ev.dirty, dirty_now[&ev.addr], "line {:#x}", ev.addr);
        }
        assert_eq!(c.occupancy(), (0, 0));
    }
}

fn random_kind_stats(rng: &mut Rng) -> KindStats {
    KindStats {
        read_hits: rng.gen_range_u64(0, 1000),
        read_misses: rng.gen_range_u64(0, 1000),
        write_hits: rng.gen_range_u64(0, 1000),
        write_misses: rng.gen_range_u64(0, 1000),
        evictions: rng.gen_range_u64(0, 1000),
        dirty_evictions: rng.gen_range_u64(0, 1000),
    }
}

/// `KindStats::merge` is associative and commutative, with the default
/// value as identity — so any segmentation of a run sums identically.
#[test]
fn kind_stats_merge_is_associative() {
    let mut rng = Rng::seed_from_u64(0x57a7);
    for _case in 0..200 {
        let a = random_kind_stats(&mut rng);
        let b = random_kind_stats(&mut rng);
        let c = random_kind_stats(&mut rng);

        // (a + b) + c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        // Commutativity.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Identity.
        let mut with_zero = a;
        with_zero.merge(&KindStats::default());
        assert_eq!(with_zero, a);

        // delta inverts merge.
        let mut sum = a;
        sum.merge(&b);
        assert_eq!(sum.delta(&a), b);
    }
}

/// Splitting a run's `CacheStats` at arbitrary points and merging the
/// segments reproduces the uninterrupted totals.
#[test]
fn segmented_cache_stats_sum_to_whole() {
    let mut rng = Rng::seed_from_u64(0x5e6);
    for _case in 0..32 {
        let config = CacheConfig::new(512, 4, 32);
        let mut c = Cache::new(config);
        let n = rng.gen_range_usize(10, 300);
        let cut = rng.gen_range_usize(1, n);
        let mut merged = CacheStats::default();
        let mut before_cut = CacheStats::default();
        for i in 0..n {
            if i == cut {
                before_cut = *c.stats();
                merged.merge(&before_cut);
            }
            let line = rng.gen_range_u64(0, 64);
            let kind = if line.is_multiple_of(3) {
                LineKind::Hash
            } else {
                LineKind::Data
            };
            let addr = line * 32;
            if c.lookup(addr, kind, rng.gen_bool(0.4)).is_miss() {
                c.fill(addr, kind, false);
            }
        }
        let whole = *c.stats();
        merged.merge(&whole.delta(&before_cut));
        assert_eq!(merged, whole);
    }
}
