//! Property-based tests for the set-associative cache model.
//!
//! These check structural invariants under arbitrary operation sequences:
//! no duplicate resident lines, capacity bounds per set, LRU correctness
//! against a reference model, and stats bookkeeping.

use std::collections::VecDeque;

use miv_cache::{Cache, CacheConfig, LineKind};
use proptest::prelude::*;

/// A reference cache: per-set VecDeque of (tag, dirty), front = LRU.
struct RefCache {
    config: CacheConfig,
    sets: Vec<VecDeque<(u64, bool)>>,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        RefCache { config, sets: (0..config.sets()).map(|_| VecDeque::new()).collect() }
    }

    fn lookup(&mut self, addr: u64, write: bool) -> bool {
        let tag = self.config.tag(addr);
        let set = &mut self.sets[self.config.set_index(addr) as usize];
        if let Some(pos) = set.iter().position(|(t, _)| *t == tag) {
            let (t, d) = set.remove(pos).unwrap();
            set.push_back((t, d || write));
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        let tag = self.config.tag(addr);
        let assoc = self.config.assoc as usize;
        let set = &mut self.sets[self.config.set_index(addr) as usize];
        let victim = if set.len() == assoc { set.pop_front().map(|(t, _)| t) } else { None };
        set.push_back((tag, dirty));
        victim
    }

    fn contains(&self, addr: u64) -> bool {
        let tag = self.config.tag(addr);
        self.sets[self.config.set_index(addr) as usize]
            .iter()
            .any(|(t, _)| *t == tag)
    }

    fn dirty(&self, addr: u64) -> Option<bool> {
        let tag = self.config.tag(addr);
        self.sets[self.config.set_index(addr) as usize]
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, d)| *d)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access { addr: u64, write: bool },
    Invalidate { addr: u64 },
    MarkClean { addr: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Confine addresses to 16 lines' worth of space spread over a tiny
    // cache so sets collide heavily.
    let addr = (0u64..16).prop_map(|line| line * 64 + (line % 7));
    prop_oneof![
        4 => (addr.clone(), any::<bool>()).prop_map(|(addr, write)| Op::Access { addr, write }),
        1 => addr.clone().prop_map(|addr| Op::Invalidate { addr }),
        1 => addr.prop_map(|addr| Op::MarkClean { addr }),
    ]
}

proptest! {
    /// The cache model agrees with a simple LRU reference on residency and
    /// dirty state under arbitrary access/invalidate/clean sequences.
    #[test]
    fn matches_reference_lru(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let config = CacheConfig::new(256, 2, 64); // 2 sets × 2 ways
        let mut sut = Cache::new(config);
        let mut reference = RefCache::new(config);

        for op in &ops {
            match *op {
                Op::Access { addr, write } => {
                    let hit = sut.lookup(addr, LineKind::Data, write).is_hit();
                    let ref_hit = reference.lookup(addr, write);
                    prop_assert_eq!(hit, ref_hit, "hit mismatch at {:#x}", addr);
                    if !hit {
                        let victim = sut.fill(addr, LineKind::Data, write);
                        let ref_victim = reference.fill(addr, write);
                        prop_assert_eq!(victim.map(|v| v.addr), ref_victim);
                    }
                }
                Op::Invalidate { addr } => {
                    let got = sut.invalidate(addr).is_some();
                    let tag = config.tag(addr);
                    let set = &mut reference.sets[config.set_index(addr) as usize];
                    let expect = set.iter().position(|(t, _)| *t == tag).map(|p| set.remove(p));
                    prop_assert_eq!(got, expect.is_some());
                }
                Op::MarkClean { addr } => {
                    let got = sut.mark_clean(addr);
                    let tag = config.tag(addr);
                    let set = &mut reference.sets[config.set_index(addr) as usize];
                    let mut found = false;
                    for entry in set.iter_mut() {
                        if entry.0 == tag {
                            entry.1 = false;
                            found = true;
                        }
                    }
                    prop_assert_eq!(got, found);
                }
            }
            // Residency & dirty state agree for every address in range.
            for line in 0..16u64 {
                let addr = line * 64;
                prop_assert_eq!(sut.contains(addr), reference.contains(addr));
                prop_assert_eq!(sut.dirty(addr), reference.dirty(addr));
            }
        }
    }

    /// Hits + misses equals total accesses, and occupancy is bounded by
    /// capacity.
    #[test]
    fn stats_and_occupancy_invariants(
        addrs in proptest::collection::vec((0u64..64, any::<bool>()), 1..300)
    ) {
        let config = CacheConfig::new(512, 4, 32); // 4 sets × 4 ways, 32-B lines
        let mut c = Cache::new(config);
        for &(line, write) in &addrs {
            let addr = line * 32;
            let kind = if line % 3 == 0 { LineKind::Hash } else { LineKind::Data };
            if c.lookup(addr, kind, write).is_miss() {
                c.fill(addr, kind, write);
            }
        }
        let s = *c.stats();
        prop_assert_eq!(s.total_accesses(), addrs.len() as u64);
        prop_assert_eq!(s.data.hits() + s.data.misses(), s.data.accesses());
        prop_assert_eq!(s.hash.hits() + s.hash.misses(), s.hash.accesses());
        let (d, h) = c.occupancy();
        prop_assert!(d + h <= config.lines());
        // Fills = misses; evictions can't exceed fills.
        prop_assert!(s.data.evictions + s.hash.evictions <= s.total_misses());
        prop_assert!(s.data.dirty_evictions <= s.data.evictions);
        prop_assert!(s.hash.dirty_evictions <= s.hash.evictions);
    }

    /// After a flush the cache is empty and every previously-dirty line was
    /// reported dirty.
    #[test]
    fn flush_reports_all_dirty_lines(lines in proptest::collection::vec((0u64..32, any::<bool>()), 1..100)) {
        let config = CacheConfig::new(1024, 2, 64);
        let mut c = Cache::new(config);
        let mut dirty_now = std::collections::HashMap::new();
        for &(line, write) in &lines {
            let addr = line * 64;
            if c.lookup(addr, LineKind::Data, write).is_miss() {
                if let Some(v) = c.fill(addr, LineKind::Data, write) {
                    dirty_now.remove(&v.addr);
                }
            }
            let e = dirty_now.entry(config.tag(addr)).or_insert(false);
            *e = *e || write;
        }
        let drained = c.flush();
        prop_assert_eq!(drained.len(), dirty_now.len());
        for ev in drained {
            prop_assert_eq!(ev.dirty, dirty_now[&ev.addr], "line {:#x}", ev.addr);
        }
        prop_assert_eq!(c.occupancy(), (0, 0));
    }
}
