//! The set-associative cache state machine.

use crate::config::CacheConfig;
use crate::observe::CacheObserver;
use crate::policy::ReplacementPolicy;
use crate::stats::{CacheStats, LineKind};

/// One tag-array entry.
#[derive(Debug, Clone, Copy)]
struct Line {
    /// Line-aligned address (tag); meaningless when `!valid`.
    tag: u64,
    kind: LineKind,
    valid: bool,
    dirty: bool,
    /// Monotonic LRU stamp; larger = more recently used.
    lru: u64,
}

impl Line {
    fn empty() -> Self {
        Line {
            tag: 0,
            kind: LineKind::Data,
            valid: false,
            dirty: false,
            lru: 0,
        }
    }
}

/// A line evicted by [`Cache::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub addr: u64,
    /// What the victim held.
    pub kind: LineKind,
    /// Whether the victim was dirty (needs a write-back).
    pub dirty: bool,
}

/// Outcome of a [`Cache::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The line was present; LRU updated, dirty bit set if a write.
    Hit,
    /// The line was absent. The cache state is unchanged; call
    /// [`Cache::fill`] once the data arrives.
    Miss,
}

impl LookupResult {
    /// Returns `true` for [`LookupResult::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, LookupResult::Hit)
    }

    /// Returns `true` for [`LookupResult::Miss`].
    pub fn is_miss(&self) -> bool {
        matches!(self, LookupResult::Miss)
    }
}

/// A set-associative, write-back, write-allocate cache model with true-LRU
/// replacement and per-kind (data/hash) statistics.
///
/// The model is timing-free: it answers "hit or miss", tracks dirty state
/// and produces victims; the surrounding simulator assigns latencies.
///
/// # Examples
///
/// ```
/// use miv_cache::{Cache, CacheConfig, LineKind};
///
/// let mut c = Cache::new(CacheConfig::new(256, 2, 64)); // 2 sets × 2 ways
/// c.fill(0x000, LineKind::Data, false);
/// c.fill(0x100, LineKind::Data, false); // same set as 0x000
/// c.fill(0x200, LineKind::Hash, true);  // evicts LRU of that set
/// let v = c.fill(0x300, LineKind::Data, false).unwrap();
/// assert_eq!(v.addr, 0x100);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    policy: ReplacementPolicy,
    sets: Vec<Vec<Line>>,
    clock: u64,
    /// Xorshift state for [`ReplacementPolicy::Random`].
    rng_state: u64,
    stats: CacheStats,
    obs: CacheObserver,
}

impl Cache {
    /// Creates an empty LRU cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    pub fn with_policy(config: CacheConfig, policy: ReplacementPolicy) -> Self {
        let sets = (0..config.sets())
            .map(|_| vec![Line::empty(); config.assoc as usize])
            .collect();
        Cache {
            config,
            policy,
            sets,
            clock: 0,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            stats: CacheStats::default(),
            obs: CacheObserver::default(),
        }
    }

    /// Attaches registry-backed telemetry counters. The default observer
    /// is disabled and free; see [`CacheObserver::for_registry`].
    pub fn set_observer(&mut self, obs: CacheObserver) {
        self.obs = obs;
    }

    /// The replacement policy in effect.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics (but not cache contents), e.g. after warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Looks up `addr`, counting the access against `kind`.
    ///
    /// On a hit the LRU state is refreshed and, if `write`, the line is
    /// marked dirty. On a miss nothing changes; the caller fetches the
    /// line and calls [`fill`](Cache::fill).
    pub fn lookup(&mut self, addr: u64, kind: LineKind, write: bool) -> LookupResult {
        self.clock += 1;
        let tag = self.config.tag(addr);
        let set = self.config.set_index(addr) as usize;
        let clock = self.clock;
        let stats = self.stats.kind_mut(kind);
        let counters = self.obs.kind(kind);
        let refresh = self.policy == ReplacementPolicy::Lru;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                if refresh {
                    line.lru = clock;
                }
                if write {
                    line.dirty = true;
                    stats.write_hits += 1;
                    counters.write_hits.inc();
                } else {
                    stats.read_hits += 1;
                    counters.read_hits.inc();
                }
                return LookupResult::Hit;
            }
        }
        if write {
            stats.write_misses += 1;
            counters.write_misses.inc();
        } else {
            stats.read_misses += 1;
            counters.read_misses.inc();
        }
        LookupResult::Miss
    }

    /// Checks for presence without perturbing LRU or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let tag = self.config.tag(addr);
        let set = self.config.set_index(addr) as usize;
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Returns the dirty bit of a resident line, or `None` if absent.
    pub fn dirty(&self, addr: u64) -> Option<bool> {
        let tag = self.config.tag(addr);
        let set = self.config.set_index(addr) as usize;
        self.sets[set]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| l.dirty)
    }

    /// Inserts the line for `addr`, returning the eviction it displaced
    /// (if any). Does not touch hit/miss counters — pair it with a prior
    /// [`lookup`](Cache::lookup).
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident (double fill indicates a
    /// controller bug).
    pub fn fill(&mut self, addr: u64, kind: LineKind, dirty: bool) -> Option<Eviction> {
        self.clock += 1;
        let tag = self.config.tag(addr);
        let set = self.config.set_index(addr) as usize;
        assert!(
            !self.sets[set].iter().any(|l| l.valid && l.tag == tag),
            "fill of already-resident line {tag:#x}"
        );
        // Prefer an invalid way; otherwise pick a victim per policy
        // (under FIFO the stamp is insertion time — lookups don't refresh
        // it — so min-stamp doubles as oldest-inserted).
        let way = match self.sets[set].iter().position(|l| !l.valid) {
            Some(w) => w,
            None => match self.policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                    let (w, _) = self.sets[set]
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.lru)
                        .expect("associativity >= 1");
                    w
                }
                ReplacementPolicy::Random => {
                    // Deterministic xorshift64*.
                    self.rng_state ^= self.rng_state << 13;
                    self.rng_state ^= self.rng_state >> 7;
                    self.rng_state ^= self.rng_state << 17;
                    (self.rng_state % self.config.assoc as u64) as usize
                }
            },
        };
        let victim = {
            let old = self.sets[set][way];
            if old.valid {
                let vstats = self.stats.kind_mut(old.kind);
                let vcounters = self.obs.kind(old.kind);
                vstats.evictions += 1;
                vcounters.evictions.inc();
                if old.dirty {
                    vstats.dirty_evictions += 1;
                    vcounters.dirty_evictions.inc();
                }
                Some(Eviction {
                    addr: old.tag,
                    kind: old.kind,
                    dirty: old.dirty,
                })
            } else {
                None
            }
        };
        self.sets[set][way] = Line {
            tag,
            kind,
            valid: true,
            dirty,
            lru: self.clock,
        };
        victim
    }

    /// Marks a resident line clean (after its write-back completes).
    ///
    /// Returns `true` if the line was present.
    pub fn mark_clean(&mut self, addr: u64) -> bool {
        let tag = self.config.tag(addr);
        let set = self.config.set_index(addr) as usize;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.dirty = false;
                return true;
            }
        }
        false
    }

    /// Marks a resident line dirty without counting an access (used when a
    /// background hash store updates a cached chunk).
    ///
    /// Returns `true` if the line was present.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let tag = self.config.tag(addr);
        let set = self.config.set_index(addr) as usize;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Removes the line for `addr`, returning its eviction record.
    pub fn invalidate(&mut self, addr: u64) -> Option<Eviction> {
        let tag = self.config.tag(addr);
        let set = self.config.set_index(addr) as usize;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.valid = false;
                return Some(Eviction {
                    addr: line.tag,
                    kind: line.kind,
                    dirty: line.dirty,
                });
            }
        }
        None
    }

    /// Drains every valid line, clearing the cache; dirty lines are
    /// returned first-set-first. Models the initialization cache flush
    /// (§5.6.2).
    pub fn flush(&mut self) -> Vec<Eviction> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for line in set {
                if line.valid {
                    out.push(Eviction {
                        addr: line.tag,
                        kind: line.kind,
                        dirty: line.dirty,
                    });
                    line.valid = false;
                    line.dirty = false;
                }
            }
        }
        out
    }

    /// Number of valid lines of each kind `(data, hash)` — the occupancy
    /// split used in pollution analyses.
    pub fn occupancy(&self) -> (u64, u64) {
        let mut data = 0;
        let mut hash = 0;
        for set in &self.sets {
            for line in set {
                if line.valid {
                    match line.kind {
                        LineKind::Data => data += 1,
                        LineKind::Hash => hash += 1,
                    }
                }
            }
        }
        (data, hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets, 2 ways, 64-B lines.
        Cache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(c.lookup(0x40, LineKind::Data, false).is_miss());
        assert!(c.fill(0x40, LineKind::Data, false).is_none());
        assert!(c.lookup(0x40, LineKind::Data, false).is_hit());
        assert!(
            c.lookup(0x7f, LineKind::Data, false).is_hit(),
            "same line, different offset"
        );
        assert_eq!(c.stats().data.read_hits, 2);
        assert_eq!(c.stats().data.read_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines 0x000 and 0x100 (stride = sets*line = 128).
        c.fill(0x000, LineKind::Data, false);
        c.fill(0x100, LineKind::Data, false);
        // Touch 0x000 so 0x100 becomes LRU.
        assert!(c.lookup(0x000, LineKind::Data, false).is_hit());
        let v = c.fill(0x200, LineKind::Data, false).unwrap();
        assert_eq!(v.addr, 0x100);
        assert!(c.contains(0x000));
        assert!(!c.contains(0x100));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        c.fill(0x000, LineKind::Data, false);
        c.fill(0x100, LineKind::Data, false);
        // Write-hit 0x000: now dirty and MRU; 0x100 is LRU.
        assert!(c.lookup(0x000, LineKind::Data, true).is_hit());
        assert_eq!(c.dirty(0x000), Some(true));
        let v = c.fill(0x200, LineKind::Data, false).unwrap();
        assert_eq!(v.addr, 0x100);
        assert!(!v.dirty);
        let v2 = c.fill(0x300, LineKind::Data, false).unwrap();
        assert_eq!(v2.addr, 0x000);
        assert!(v2.dirty);
        assert_eq!(c.stats().data.dirty_evictions, 1);
        assert_eq!(c.stats().data.evictions, 2);
    }

    #[test]
    fn write_miss_counts_and_fill_dirty() {
        let mut c = small();
        assert!(c.lookup(0x40, LineKind::Data, true).is_miss());
        c.fill(0x40, LineKind::Data, true);
        assert_eq!(c.dirty(0x40), Some(true));
        assert_eq!(c.stats().data.write_misses, 1);
    }

    #[test]
    fn kinds_are_tracked_separately() {
        let mut c = small();
        c.lookup(0x40, LineKind::Hash, false);
        c.fill(0x40, LineKind::Hash, false);
        c.lookup(0x40, LineKind::Hash, false);
        assert_eq!(c.stats().hash.read_hits, 1);
        assert_eq!(c.stats().hash.read_misses, 1);
        assert_eq!(c.stats().data.accesses(), 0);
        assert_eq!(c.occupancy(), (0, 1));
    }

    #[test]
    fn mark_clean_and_dirty() {
        let mut c = small();
        c.fill(0x40, LineKind::Data, true);
        assert!(c.mark_clean(0x40));
        assert_eq!(c.dirty(0x40), Some(false));
        assert!(c.mark_dirty(0x40));
        assert_eq!(c.dirty(0x40), Some(true));
        assert!(!c.mark_clean(0xdead00));
        assert!(!c.mark_dirty(0xdead00));
        assert_eq!(c.dirty(0xdead00), None);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(0x40, LineKind::Data, true);
        let e = c.invalidate(0x40).unwrap();
        assert!(e.dirty);
        assert!(!c.contains(0x40));
        assert!(c.invalidate(0x40).is_none());
    }

    #[test]
    fn flush_drains_everything() {
        let mut c = small();
        c.fill(0x000, LineKind::Data, true);
        c.fill(0x040, LineKind::Hash, false);
        c.fill(0x100, LineKind::Data, false);
        let drained = c.flush();
        assert_eq!(drained.len(), 3);
        assert_eq!(c.occupancy(), (0, 0));
        assert!(!c.contains(0x000));
        assert_eq!(drained.iter().filter(|e| e.dirty).count(), 1);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut c = Cache::with_policy(
            CacheConfig::new(256, 2, 64),
            crate::policy::ReplacementPolicy::Fifo,
        );
        c.fill(0x000, LineKind::Data, false);
        c.fill(0x100, LineKind::Data, false);
        // Touch the older line: under LRU this would save it; FIFO evicts
        // it anyway (oldest insertion).
        assert!(c.lookup(0x000, LineKind::Data, false).is_hit());
        let v = c.fill(0x200, LineKind::Data, false).unwrap();
        assert_eq!(v.addr, 0x000);
        assert_eq!(c.policy(), crate::policy::ReplacementPolicy::Fifo);
    }

    #[test]
    fn random_policy_is_deterministic_and_valid() {
        let run = || {
            let mut c = Cache::with_policy(
                CacheConfig::new(256, 2, 64),
                crate::policy::ReplacementPolicy::Random,
            );
            let mut victims = Vec::new();
            for i in 0..32u64 {
                if let Some(v) = c.fill(i * 64, LineKind::Data, false) {
                    victims.push(v.addr);
                }
            }
            victims
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same victims");
        assert!(!a.is_empty());
        let (d, h) = {
            let mut c = Cache::with_policy(
                CacheConfig::new(256, 2, 64),
                crate::policy::ReplacementPolicy::Random,
            );
            for i in 0..64u64 {
                c.fill(i * 64, LineKind::Data, false);
            }
            c.occupancy()
        };
        assert_eq!(d + h, 4, "never exceeds capacity");
    }

    #[test]
    #[should_panic(expected = "already-resident")]
    fn double_fill_panics() {
        let mut c = small();
        c.fill(0x40, LineKind::Data, false);
        c.fill(0x40, LineKind::Data, false);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = small();
        for i in 0..64u64 {
            let addr = i * 64;
            if !c.contains(addr) {
                c.fill(addr, LineKind::Data, false);
            }
        }
        let (d, h) = c.occupancy();
        assert_eq!(d + h, 4, "4 lines total capacity");
    }
}
