//! Replacement policies.
//!
//! The paper's caches are LRU; [`ReplacementPolicy`] adds FIFO and a
//! deterministic pseudo-random policy so the `ablation_replacement`
//! benchmark can quantify how sensitive the chash results are to that
//! assumption (hash-line residency — and therefore the verification
//! amortization — depends on the policy keeping recently-used tree nodes
//! around).

/// How a victim way is chosen on a fill into a full set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently *used* line (lookups refresh recency).
    #[default]
    Lru,
    /// Evict the oldest *inserted* line (lookups do not refresh).
    Fifo,
    /// Evict a pseudo-random line (deterministic xorshift sequence, so
    /// simulations stay reproducible).
    Random,
}

impl ReplacementPolicy {
    /// All policies, for sweeps.
    pub const ALL: [ReplacementPolicy; 3] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Random => "random",
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
        assert_eq!(ReplacementPolicy::Fifo.to_string(), "fifo");
        assert_eq!(ReplacementPolicy::ALL.len(), 3);
    }
}
