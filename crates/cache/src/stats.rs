//! Cache statistics, split by line kind (program data vs hash chunks).

use std::fmt;

/// What a cache line holds.
///
/// The *chash*/*mhash*/*ihash* schemes store hash-tree chunks in the same
/// L2 as program data; keeping the kinds distinct in tag state and
/// statistics is what lets the harness measure cache pollution (Figure 4)
/// and hash hit rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineKind {
    /// A program data (or instruction) line.
    Data,
    /// A hash-tree chunk line (digests or MACs).
    Hash,
}

impl fmt::Display for LineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineKind::Data => f.write_str("data"),
            LineKind::Hash => f.write_str("hash"),
        }
    }
}

/// Hit/miss/eviction counters for one [`LineKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Read lookups that hit.
    pub read_hits: u64,
    /// Read lookups that missed.
    pub read_misses: u64,
    /// Write lookups that hit.
    pub write_hits: u64,
    /// Write lookups that missed.
    pub write_misses: u64,
    /// Lines of this kind evicted.
    pub evictions: u64,
    /// Dirty lines of this kind evicted (write-backs generated).
    pub dirty_evictions: u64,
}

impl KindStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Miss rate in [0, 1]; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self`. Merging is commutative and
    /// associative, so per-segment stats sum to the whole-run totals.
    pub fn merge(&mut self, other: &KindStats) {
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.evictions += other.evictions;
        self.dirty_evictions += other.dirty_evictions;
    }

    /// The component-wise difference `self - earlier`, for interval
    /// sampling over cumulative counters.
    pub fn delta(&self, earlier: &KindStats) -> KindStats {
        KindStats {
            read_hits: self.read_hits - earlier.read_hits,
            read_misses: self.read_misses - earlier.read_misses,
            write_hits: self.write_hits - earlier.write_hits,
            write_misses: self.write_misses - earlier.write_misses,
            evictions: self.evictions - earlier.evictions,
            dirty_evictions: self.dirty_evictions - earlier.dirty_evictions,
        }
    }
}

/// Full statistics for a cache: per-kind counters plus occupancy tracking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Counters for program data lines.
    pub data: KindStats,
    /// Counters for hash-chunk lines.
    pub hash: KindStats,
}

impl CacheStats {
    /// Counters for the given kind.
    pub fn kind(&self, kind: LineKind) -> &KindStats {
        match kind {
            LineKind::Data => &self.data,
            LineKind::Hash => &self.hash,
        }
    }

    /// Mutable counters for the given kind.
    pub fn kind_mut(&mut self, kind: LineKind) -> &mut KindStats {
        match kind {
            LineKind::Data => &mut self.data,
            LineKind::Hash => &mut self.hash,
        }
    }

    /// Combined miss count over both kinds.
    pub fn total_misses(&self) -> u64 {
        self.data.misses() + self.hash.misses()
    }

    /// Combined access count over both kinds.
    pub fn total_accesses(&self) -> u64 {
        self.data.accesses() + self.hash.accesses()
    }

    /// Accumulates `other` into `self`, kind by kind.
    pub fn merge(&mut self, other: &CacheStats) {
        self.data.merge(&other.data);
        self.hash.merge(&other.hash);
    }

    /// The component-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            data: self.data.delta(&earlier.data),
            hash: self.hash.delta(&earlier.hash),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero_accesses() {
        assert_eq!(KindStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn miss_rate_arithmetic() {
        let s = KindStats {
            read_hits: 6,
            read_misses: 2,
            write_hits: 1,
            write_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 10);
        assert_eq!(s.misses(), 3);
        assert_eq!(s.hits(), 7);
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn kind_accessors() {
        let mut s = CacheStats::default();
        s.kind_mut(LineKind::Hash).read_misses = 5;
        assert_eq!(s.kind(LineKind::Hash).read_misses, 5);
        assert_eq!(s.kind(LineKind::Data).read_misses, 0);
        assert_eq!(s.total_misses(), 5);
        assert_eq!(
            format!("{}/{}", LineKind::Data, LineKind::Hash),
            "data/hash"
        );
    }
}
