//! Telemetry hooks: per-[`LineKind`] counters recorded into a
//! `miv-obs` [`Registry`].
//!
//! The observer is a bundle of pre-registered counter handles, so the
//! cache hot path never performs a name lookup. A default-constructed
//! observer is disabled: every recording call is a single branch.

use miv_obs::{Counter, Registry};

use crate::stats::LineKind;

/// Counter handles for one line kind.
#[derive(Debug, Clone, Default)]
pub struct KindCounters {
    /// Read hits.
    pub read_hits: Counter,
    /// Read misses.
    pub read_misses: Counter,
    /// Write hits.
    pub write_hits: Counter,
    /// Write misses.
    pub write_misses: Counter,
    /// Lines evicted.
    pub evictions: Counter,
    /// Dirty lines evicted (write-backs caused).
    pub dirty_evictions: Counter,
}

impl KindCounters {
    fn for_registry(registry: &Registry, prefix: &str) -> Self {
        let name = |field: &str| format!("{prefix}.{field}");
        KindCounters {
            read_hits: registry.counter(&name("read_hits")),
            read_misses: registry.counter(&name("read_misses")),
            write_hits: registry.counter(&name("write_hits")),
            write_misses: registry.counter(&name("write_misses")),
            evictions: registry.counter(&name("evictions")),
            dirty_evictions: registry.counter(&name("dirty_evictions")),
        }
    }
}

/// Per-kind cache telemetry. Attach with
/// [`Cache::set_observer`](crate::Cache::set_observer).
#[derive(Debug, Clone, Default)]
pub struct CacheObserver {
    /// Counters for data lines.
    pub data: KindCounters,
    /// Counters for hash lines.
    pub hash: KindCounters,
}

impl CacheObserver {
    /// A no-op observer (the default).
    pub fn disabled() -> Self {
        CacheObserver::default()
    }

    /// Registers counters named `{prefix}.{data|hash}.{event}` (e.g.
    /// `l2.hash.read_misses`) and returns the live handles.
    pub fn for_registry(registry: &Registry, prefix: &str) -> Self {
        CacheObserver {
            data: KindCounters::for_registry(registry, &format!("{prefix}.data")),
            hash: KindCounters::for_registry(registry, &format!("{prefix}.hash")),
        }
    }

    /// The counter bundle for `kind`.
    #[inline]
    pub fn kind(&self, kind: LineKind) -> &KindCounters {
        match kind {
            LineKind::Data => &self.data,
            LineKind::Hash => &self.hash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_under_prefix() {
        let reg = Registry::new();
        let obs = CacheObserver::for_registry(&reg, "l2");
        obs.kind(LineKind::Hash).read_misses.inc();
        obs.kind(LineKind::Data).write_hits.add(2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["l2.hash.read_misses"], 1);
        assert_eq!(snap.counters["l2.data.write_hits"], 2);
        assert_eq!(snap.counters["l2.data.read_misses"], 0);
    }

    #[test]
    fn default_is_disabled() {
        let obs = CacheObserver::default();
        obs.kind(LineKind::Data).read_hits.inc();
        assert!(!obs.data.read_hits.is_enabled());
        assert_eq!(obs.data.read_hits.get(), 0);
    }
}
