//! Cache geometry configuration.

/// Geometry of a set-associative cache.
///
/// All three parameters must be powers of two and consistent
/// (`size_bytes = sets × assoc × line_bytes` with at least one set).
///
/// # Examples
///
/// ```
/// use miv_cache::CacheConfig;
///
/// let cfg = CacheConfig::l2(1 << 20, 64); // 1 MB, 4-way, 64-B lines
/// assert_eq!(cfg.sets(), 4096);
/// assert_eq!(cfg.lines(), 16384);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line (block) size in bytes.
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Creates a configuration, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or not a power of two, if the line
    /// size exceeds the capacity, or if the geometry yields zero sets.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            assoc.is_power_of_two(),
            "associativity must be a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = size_bytes / line_bytes as u64;
        assert!(
            lines >= assoc as u64,
            "cache too small for its associativity"
        );
        CacheConfig {
            size_bytes,
            assoc,
            line_bytes,
        }
    }

    /// The paper's L1 geometry: 64 KB, 2-way, 32-byte lines (Table 1).
    pub fn l1() -> Self {
        CacheConfig::new(64 * 1024, 2, 32)
    }

    /// The paper's unified L2 geometry: 4-way with the given capacity and
    /// line size (Table 1 / Figure 3 sweeps capacity and line size).
    pub fn l2(size_bytes: u64, line_bytes: u32) -> Self {
        CacheConfig::new(size_bytes, 4, line_bytes)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.line_bytes as u64)
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64
    }

    /// The line-aligned base address of the line containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }

    /// The set index for `addr`.
    pub fn set_index(&self, addr: u64) -> u64 {
        (addr / self.line_bytes as u64) % self.sets()
    }

    /// The tag for `addr` (the line address, which is unambiguous).
    pub fn tag(&self, addr: u64) -> u64 {
        self.line_addr(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometries() {
        let l1 = CacheConfig::l1();
        assert_eq!(l1.sets(), 1024);
        let l2 = CacheConfig::l2(256 * 1024, 64);
        assert_eq!(l2.sets(), 1024);
        let l2b = CacheConfig::l2(4 << 20, 128);
        assert_eq!(l2b.sets(), 8192);
    }

    #[test]
    fn line_addr_masks_offset() {
        let cfg = CacheConfig::l2(1 << 20, 64);
        assert_eq!(cfg.line_addr(0x12345), 0x12340);
        assert_eq!(cfg.line_addr(0x12340), 0x12340);
        assert_eq!(cfg.line_addr(0x1237f), 0x12340);
    }

    #[test]
    fn set_index_wraps() {
        let cfg = CacheConfig::new(1024, 2, 64); // 8 sets
        assert_eq!(cfg.sets(), 8);
        assert_eq!(cfg.set_index(0), 0);
        assert_eq!(cfg.set_index(64), 1);
        assert_eq!(cfg.set_index(64 * 8), 0);
        assert_eq!(cfg.set_index(64 * 9 + 13), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = CacheConfig::new(1000, 2, 64);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_degenerate_geometry() {
        let _ = CacheConfig::new(64, 4, 64);
    }
}
