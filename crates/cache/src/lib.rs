//! Set-associative cache models for the memory integrity simulator.
//!
//! The paper's machine (Table 1) has split 64 KB 2-way L1 I/D caches with
//! 32-byte lines and a unified L2 (256 KB–4 MB, 4-way, 64- or 128-byte
//! lines). The *chash* scheme stores hash-tree chunks **in the L2** along
//! with program data, so the L2 model tags every line with a
//! [`LineKind`] (data vs hash) and keeps separate statistics — this is
//! what lets the harness reproduce Figure 4 (cache pollution) and the
//! occupancy analyses.
//!
//! The cache is a pure state machine: `lookup` / `fill` / `invalidate`
//! mutate tag state and statistics but carry no timing. Timing (hit
//! latencies, bus occupancy, verification) is composed around it by
//! `miv-sim`.
//!
//! # Examples
//!
//! ```
//! use miv_cache::{Cache, CacheConfig, LineKind};
//!
//! let mut l2 = Cache::new(CacheConfig::l2(1 << 20, 64));
//! assert!(l2.lookup(0x4000, LineKind::Data, false).is_miss());
//! l2.fill(0x4000, LineKind::Data, false);
//! assert!(l2.lookup(0x4000, LineKind::Data, false).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod observe;
mod policy;
mod set_assoc;
mod stats;

pub use config::CacheConfig;
pub use observe::{CacheObserver, KindCounters};
pub use policy::ReplacementPolicy;
pub use set_assoc::{Cache, Eviction, LookupResult};
pub use stats::{CacheStats, KindStats, LineKind};
