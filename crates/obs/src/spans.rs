//! Hierarchical cycle-attribution spans.
//!
//! A [`SpanTracer`] owns a tree of named spans and a current-position
//! stack. Simulation code opens a span with the RAII guard form
//! ([`SpanTracer::span`]) and attributes *simulated cycles* — never
//! wall-clock time — to the innermost open span with
//! [`SpanTracer::attribute`]. Resource-occupancy accounting that is not
//! nested under the current access (hash-unit busy windows, bus
//! transfers) goes through [`SpanTracer::attribute_path`], which
//! addresses a leaf by absolute path without touching the stack.
//!
//! Like the PR-1 metric recorders, a disabled tracer holds `None`: every
//! operation is a single branch that allocates nothing, so span calls
//! can live permanently in the verification hot path. And like
//! [`Registry::absorb`](crate::Registry::absorb), the tracer never
//! crosses threads itself — workers return a plain-data
//! [`ProfileSnapshot`] which the aggregator folds in request order, so
//! merged profiles are byte-identical at any `--jobs` count.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
// miv-analyze: allow(rc-not-sent, reason="span tracers are deliberately non-Send like the metric recorders; parallel sweeps cross threads via plain-data ProfileSnapshot merge")
use std::rc::Rc;

use crate::json::JsonValue;

/// One node in the span tree: a name, its attributed self-cycles, and
/// how many times it was entered (or directly attributed via path).
#[derive(Debug)]
struct SpanNode {
    name: String,
    children: Vec<usize>,
    cycles: u64,
    count: u64,
}

#[derive(Debug)]
struct TracerInner {
    /// Arena of nodes; index 0 is the unnamed root sentinel.
    nodes: Vec<SpanNode>,
    /// Indices of currently open spans, innermost last.
    stack: Vec<usize>,
}

impl TracerInner {
    fn new() -> Self {
        TracerInner {
            nodes: vec![SpanNode {
                name: String::new(),
                children: Vec::new(),
                cycles: 0,
                count: 0,
            }],
            stack: Vec::new(),
        }
    }

    /// Finds or creates the child of `parent` named `name`.
    fn child(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&idx) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode {
            name: name.to_string(),
            children: Vec::new(),
            cycles: 0,
            count: 0,
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    fn enter(&mut self, name: &str) {
        let parent = self.stack.last().copied().unwrap_or(0);
        let idx = self.child(parent, name);
        self.nodes[idx].count += 1;
        self.stack.push(idx);
    }

    fn exit(&mut self) {
        self.stack.pop();
    }

    fn attribute(&mut self, cycles: u64) {
        let idx = match self.stack.last().copied() {
            Some(idx) => idx,
            // Attribution outside any open span is kept visible rather
            // than dropped: it lands under a sentinel leaf.
            None => self.child(0, "(unattributed)"),
        };
        self.nodes[idx].cycles += cycles;
    }

    fn add_path(&mut self, path: &[&str], cycles: u64, count: u64) {
        let mut idx = 0;
        for name in path {
            idx = self.child(idx, name);
        }
        if idx != 0 {
            self.nodes[idx].cycles += cycles;
            self.nodes[idx].count += count;
        }
    }

    fn collect(&self, idx: usize, path: &mut Vec<String>, out: &mut Vec<SpanSnapshot>) {
        for &c in &self.nodes[idx].children {
            let node = &self.nodes[c];
            path.push(node.name.clone());
            if node.cycles > 0 || node.count > 0 {
                out.push(SpanSnapshot {
                    path: path.clone(),
                    cycles: node.cycles,
                    count: node.count,
                });
            }
            self.collect(c, path, out);
            path.pop();
        }
    }
}

/// A handle to a span tree. Cheap to clone (clones share the tree);
/// `Default` is disabled, exactly like [`Counter`](crate::Counter).
#[derive(Debug, Clone, Default)]
pub struct SpanTracer(Option<Rc<RefCell<TracerInner>>>);

impl SpanTracer {
    /// A no-op tracer: every operation is a single branch, zero
    /// allocations (asserted by `miv-bench`'s counting-allocator test).
    pub const fn disabled() -> Self {
        SpanTracer(None)
    }

    /// A live tracer with an empty span tree.
    pub fn enabled() -> Self {
        SpanTracer(Some(Rc::new(RefCell::new(TracerInner::new()))))
    }

    /// Whether the tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a child span of the innermost open span and returns a guard
    /// that closes it on drop. This is the only sanctioned way to open a
    /// span in library code — the `span-balance` analyze rule rejects
    /// manual [`span_enter`](Self::span_enter)/[`span_exit`](Self::span_exit)
    /// pairs, which silently corrupt the whole tree if one side is
    /// missed on an early return.
    #[inline]
    #[must_use = "dropping the guard closes the span immediately"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().enter(name);
            SpanGuard(Some(Rc::clone(inner)))
        } else {
            SpanGuard(None)
        }
    }

    /// Manually opens a span. Prefer [`span`](Self::span); this exists
    /// for callers whose enter/exit sites cannot share a scope (and is
    /// what the guard uses internally).
    #[inline]
    pub fn span_enter(&self, name: &str) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().enter(name);
        }
    }

    /// Manually closes the innermost open span (no-op when none is open).
    #[inline]
    pub fn span_exit(&self) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().exit();
        }
    }

    /// Attributes `cycles` simulated cycles to the innermost open span.
    /// With no span open, the cycles land under an `(unattributed)`
    /// sentinel leaf so conservation checks can still see them.
    #[inline]
    pub fn attribute(&self, cycles: u64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().attribute(cycles);
        }
    }

    /// Attributes `cycles` to the leaf addressed by `path` from the
    /// root, independent of the open-span stack, and bumps its count by
    /// one. Used for resource-occupancy domains (hash unit, bus) that
    /// overlap the access being serviced rather than nesting inside it.
    #[inline]
    pub fn attribute_path(&self, path: &[&str], cycles: u64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().add_path(path, cycles, 1);
        }
    }

    /// Copies the span tree out as plain owned data, paths sorted.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut spans = Vec::new();
        if let Some(inner) = &self.0 {
            let inner = inner.borrow();
            inner.collect(0, &mut Vec::new(), &mut spans);
        }
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        ProfileSnapshot { spans }
    }

    /// Folds a snapshot back into this live tree (cycles and counts
    /// add). This is the worker-merge path, mirroring
    /// [`Registry::absorb`](crate::Registry::absorb): absorbing worker
    /// snapshots in request order makes the merged profile independent
    /// of the worker count.
    pub fn absorb(&self, snap: &ProfileSnapshot) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            for span in &snap.spans {
                let path: Vec<&str> = span.path.iter().map(String::as_str).collect();
                inner.add_path(&path, span.cycles, span.count);
            }
        }
    }
}

/// RAII guard returned by [`SpanTracer::span`]; closes the span when
/// dropped. Holds a clone of the tracer handle, never a borrow, so the
/// tracer stays usable while guards are open.
#[derive(Debug)]
#[must_use = "dropping the guard closes the span immediately"]
pub struct SpanGuard(Option<Rc<RefCell<TracerInner>>>);

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().exit();
        }
    }
}

/// One span's aggregate in a [`ProfileSnapshot`]: its full path from
/// the root, self-attributed cycles, and enter/attribution count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Names from the root to this span, outermost first.
    pub path: Vec<String>,
    /// Simulated cycles attributed directly to this span (children not
    /// included — subtree totals are derived, e.g. by
    /// [`ProfileSnapshot::cycles_under`]).
    pub cycles: u64,
    /// Number of times the span was entered or path-attributed.
    pub count: u64,
}

/// An owned, `Send` copy of a tracer's span tree, sorted by path.
/// Produced by [`SpanTracer::snapshot`] in a worker, merged with
/// [`ProfileSnapshot::merge`] or [`SpanTracer::absorb`] on the
/// aggregating side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Every span with a nonzero cycle or count total, sorted by path.
    pub spans: Vec<SpanSnapshot>,
}

impl ProfileSnapshot {
    /// Accumulates `other` into `self`: cycles and counts add per path;
    /// the result stays sorted. Order-independent, so merging worker
    /// snapshots in request order is deterministic at any worker count.
    pub fn merge(&mut self, other: &ProfileSnapshot) {
        let mut by_path: BTreeMap<Vec<String>, (u64, u64)> = self
            .spans
            .drain(..)
            .map(|s| (s.path, (s.cycles, s.count)))
            .collect();
        for span in &other.spans {
            let slot = by_path.entry(span.path.clone()).or_insert((0, 0));
            slot.0 += span.cycles;
            slot.1 += span.count;
        }
        self.spans = by_path
            .into_iter()
            .map(|(path, (cycles, count))| SpanSnapshot {
                path,
                cycles,
                count,
            })
            .collect();
    }

    /// Total self-cycles across every span (all attribution is
    /// self-attribution, so this is the grand total).
    pub fn total_cycles(&self) -> u64 {
        self.spans.iter().map(|s| s.cycles).sum()
    }

    /// Total cycles attributed anywhere under the top-level span named
    /// `root` (the span itself included).
    pub fn cycles_under(&self, root: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.path.first().is_some_and(|n| n == root))
            .map(|s| s.cycles)
            .sum()
    }

    /// JSON form: a sorted array of `{"path": "a;b;c", "cycles": n,
    /// "count": m}` objects. Deterministic byte-for-byte.
    pub fn to_json(&self) -> JsonValue {
        self.spans
            .iter()
            .map(|s| {
                let mut o = JsonValue::obj();
                o.push("path", s.path.join(";"));
                o.push("cycles", s.cycles);
                o.push("count", s.count);
                o
            })
            .collect::<Vec<_>>()
            .into()
    }

    /// Flamegraph-compatible folded stacks: one `a;b;c cycles` line per
    /// span with nonzero self-cycles, sorted by path. Feed directly to
    /// `flamegraph.pl` or any folded-stack consumer.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            if s.cycles > 0 {
                let _ = writeln!(out, "{} {}", s.path.join(";"), s.cycles);
            }
        }
        out
    }

    /// Renders an indented attribution tree with subtree totals and
    /// percentages of the grand total. Deterministic.
    pub fn render_tree(&self) -> String {
        let mut totals: BTreeMap<Vec<String>, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            for depth in 1..=s.path.len() {
                let slot = totals.entry(s.path[..depth].to_vec()).or_insert((0, 0));
                slot.0 += s.cycles;
                if depth == s.path.len() {
                    slot.1 = s.count;
                }
            }
        }
        let grand = self.total_cycles().max(1);
        let width = totals
            .keys()
            .map(|p| 2 * (p.len() - 1) + p.last().map_or(0, String::len))
            .max()
            .unwrap_or(0)
            .max(12);
        let mut out = String::new();
        for (path, (cycles, count)) in &totals {
            let indent = "  ".repeat(path.len() - 1);
            let name = path.last().map_or("", String::as_str);
            let label = format!("{indent}{name}");
            let pct = 100.0 * *cycles as f64 / grand as f64;
            let _ = writeln!(
                out,
                "{label:<width$}  {cycles:>14} cyc  {pct:>5.1}%  x{count}"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = SpanTracer::disabled();
        assert!(!t.is_enabled());
        {
            let _g = t.span("a");
            t.attribute(10);
        }
        t.attribute_path(&["x", "y"], 5);
        assert_eq!(t.snapshot(), ProfileSnapshot::default());
    }

    #[test]
    fn guard_nesting_builds_paths() {
        let t = SpanTracer::enabled();
        {
            let _a = t.span("access");
            {
                let _b = t.span("l2");
                t.attribute(3);
            }
            {
                let _b = t.span("bus");
                t.attribute(7);
                t.attribute(2);
            }
        }
        {
            let _a = t.span("access");
            let _b = t.span("l2");
            t.attribute(1);
        }
        let snap = t.snapshot();
        let paths: Vec<String> = snap.spans.iter().map(|s| s.path.join(";")).collect();
        assert_eq!(paths, ["access", "access;bus", "access;l2"]);
        assert_eq!(snap.spans[2].cycles, 4);
        assert_eq!(snap.spans[2].count, 2);
        assert_eq!(snap.spans[0].cycles, 0);
        assert_eq!(snap.spans[0].count, 2);
        assert_eq!(snap.total_cycles(), 13);
        assert_eq!(snap.cycles_under("access"), 13);
        assert_eq!(snap.cycles_under("other"), 0);
    }

    #[test]
    fn attribute_path_ignores_open_stack() {
        let t = SpanTracer::enabled();
        let _g = t.span("access");
        t.attribute_path(&["background", "bus"], 40);
        t.attribute_path(&["background", "bus"], 2);
        drop(_g);
        let snap = t.snapshot();
        assert_eq!(snap.cycles_under("background"), 42);
        assert_eq!(snap.cycles_under("access"), 0);
        let bus = snap
            .spans
            .iter()
            .find(|s| s.path == ["background", "bus"])
            .expect("bus span");
        assert_eq!(bus.count, 2);
    }

    #[test]
    fn unattributed_cycles_stay_visible() {
        let t = SpanTracer::enabled();
        t.attribute(9);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].path, ["(unattributed)"]);
        assert_eq!(snap.total_cycles(), 9);
    }

    #[test]
    fn merge_and_absorb_match_single_recorder() {
        let record = |pairs: &[(&[&str], u64)]| {
            let t = SpanTracer::enabled();
            for (path, cycles) in pairs {
                t.attribute_path(path, *cycles);
            }
            t.snapshot()
        };
        let whole = record(&[
            (&["a", "b"], 10),
            (&["a", "c"], 5),
            (&["a", "b"], 1),
            (&["d"], 7),
        ]);
        let mut merged = record(&[(&["a", "b"], 10), (&["a", "c"], 5)]);
        merged.merge(&record(&[(&["a", "b"], 1), (&["d"], 7)]));
        assert_eq!(merged, whole);

        let agg = SpanTracer::enabled();
        agg.absorb(&record(&[(&["a", "b"], 10), (&["a", "c"], 5)]));
        agg.absorb(&record(&[(&["a", "b"], 1), (&["d"], 7)]));
        assert_eq!(agg.snapshot(), whole);
    }

    #[test]
    fn merge_is_order_independent() {
        let t = SpanTracer::enabled();
        t.attribute_path(&["x"], 3);
        let a = t.snapshot();
        let u = SpanTracer::enabled();
        u.attribute_path(&["y", "z"], 4);
        let b = u.snapshot();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_cycles(), 7);
    }

    #[test]
    fn folded_and_json_are_sorted_and_stable() {
        let t = SpanTracer::enabled();
        t.attribute_path(&["b", "leaf"], 2);
        t.attribute_path(&["a"], 1);
        let snap = t.snapshot();
        assert_eq!(snap.to_folded(), "a 1\nb;leaf 2\n");
        let json = snap.to_json().render_pretty();
        let reparsed = JsonValue::parse(&json).expect("round-trips");
        let arr = reparsed.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("path").and_then(JsonValue::as_str), Some("a"));
        assert_eq!(arr[1].get("cycles").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn tree_render_includes_interior_totals() {
        let t = SpanTracer::enabled();
        t.attribute_path(&["root", "a"], 30);
        t.attribute_path(&["root", "b"], 70);
        let tree = t.snapshot().render_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].contains("root") && lines[0].contains("100"),
            "{tree}"
        );
        assert!(
            lines[1].contains("a") && lines[1].contains("30.0%"),
            "{tree}"
        );
        assert!(
            lines[2].contains("b") && lines[2].contains("70.0%"),
            "{tree}"
        );
    }

    #[test]
    fn guard_closes_on_early_drop() {
        let t = SpanTracer::enabled();
        let g = t.span("outer");
        drop(g);
        {
            let _g = t.span("sibling");
            t.attribute(5);
        }
        let snap = t.snapshot();
        assert_eq!(snap.cycles_under("sibling"), 5);
        assert_eq!(snap.cycles_under("outer"), 0);
    }
}
