//! A hand-rolled JSON value type with an emitter and a parser.
//!
//! The workspace must stay buildable offline, so machine-readable export
//! (`--metrics-out`, `--trace-events`, `figures export`) cannot pull in
//! `serde_json`. This module implements the small subset we need:
//! insertion-ordered objects, pretty and compact rendering, and a strict
//! recursive-descent parser used by tests to validate emitted files.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (used for negative numbers).
    Int(i64),
    /// An unsigned integer (counters, cycles, byte counts).
    UInt(u64),
    /// A floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::push`].
    pub fn obj() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Appends a key/value pair to an object. Panics on non-objects.
    pub fn push(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value.into())),
            // miv-analyze: allow(no-unwrap-in-lib, reason="documented '# Panics' contract: pushing onto a non-object is a programming error, never data-dependent")
            other => panic!("push on non-object JsonValue: {other:?}"),
        }
        self
    }

    /// Looks up a key in an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, coercing integer variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Int(i) => Some(i as f64),
            JsonValue::UInt(u) => Some(u as f64),
            JsonValue::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(u) => Some(u),
            JsonValue::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                                char::from_u32(combined).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or("truncated \\u escape")?;
            self.pos += 1;
            v = v * 16
                + match b {
                    b'0'..=b'9' => (b - b'0') as u32,
                    b'a'..=b'f' => (b - b'a' + 10) as u32,
                    b'A'..=b'F' => (b - b'A' + 10) as u32,
                    _ => return Err("bad hex digit".to_string()),
                };
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number".to_string())?;
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|e| e.to_string())
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(JsonValue::UInt(u))
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let mut doc = JsonValue::obj();
        doc.push("name", "mivsim \"quoted\" \\ path\nnewline");
        doc.push("count", 42u64);
        doc.push("neg", -7i64);
        doc.push("ratio", 0.25);
        doc.push("flag", true);
        doc.push("nothing", JsonValue::Null);
        doc.push(
            "items",
            vec![
                JsonValue::UInt(1),
                JsonValue::Str("two".into()),
                JsonValue::Float(3.5),
            ],
        );
        for text in [doc.render(), doc.render_pretty()] {
            let back = JsonValue::parse(&text).unwrap();
            assert_eq!(back, doc, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\":1} extra").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = JsonValue::parse(r#""aé\n😀b""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aé\n😀b");
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn accessors() {
        let doc = JsonValue::parse(r#"{"a": {"b": [1, 2.5, "x"]}}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
    }
}
