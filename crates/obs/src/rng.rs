//! A small deterministic PRNG (xoshiro256++ seeded via splitmix64).
//!
//! Used by the synthetic trace generators and the randomized property
//! tests so the workspace needs no external `rand` dependency. Not
//! cryptographic — the security primitives live in `miv-hash`.

/// xoshiro256++ generator. Identical seeds yield identical streams on
/// every platform.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// splitmix64 so similar seeds give unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[lo, hi)`. Panics when the range is empty.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire); the retry loop is entered
        // with negligible probability for the spans the simulator uses.
        loop {
            let x = self.next_u64();
            let (hi128, lo128) = {
                let wide = (x as u128) * (span as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo128 >= span || lo128 >= span.wrapping_neg() % span {
                return lo + hi128;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.gen_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A random byte.
    pub fn gen_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Picks an index in `[0, weights.len())` with probability
    /// proportional to its weight. Panics if all weights are zero.
    pub fn pick_weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "all weights zero");
        let mut roll = self.gen_range_u64(0, total);
        for (i, &w) in weights.iter().enumerate() {
            if roll < w as u64 {
                return i;
            }
            roll -= w as u64;
        }
        unreachable!()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_hold() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range_u64(10, 17);
            assert!((10..17).contains(&v));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = Rng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range_usize(0, 8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = Rng::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn weighted_pick_tracks_weights() {
        let mut rng = Rng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..90_000 {
            counts[rng.pick_weighted(&[1, 2, 6])] += 1;
        }
        assert!((8_000..12_000).contains(&counts[0]), "{counts:?}");
        assert!((18_000..22_000).contains(&counts[1]), "{counts:?}");
        assert!((58_000..62_000).contains(&counts[2]), "{counts:?}");
    }
}
