//! `miv-obs` — the unified observability layer for the memory integrity
//! verification workspace.
//!
//! Every other crate in the workspace measures *something* — cache hits,
//! bus bytes, hash-unit occupancy — but before this crate each subsystem
//! kept its own ad-hoc counter struct with no common export path. This
//! crate provides the shared vocabulary:
//!
//! * [`metrics`] — a [`Registry`] of named monotonic [`Counter`]s,
//!   [`Gauge`]s and log2-bucketed [`Histogram`]s (with p50/p90/p99
//!   estimation). Handles are enum-gated: a disabled handle is a `None`
//!   and every operation on it is a single branch, so instrumented hot
//!   paths cost nothing when telemetry is off.
//! * [`events`] — a bounded ring buffer of typed simulation events
//!   ([`SimEvent`]): L2 misses, tree-walk start/termination with the
//!   depth reached, hash-unit enqueue/dequeue with queue latency,
//!   write-backs and integrity violations.
//!
//! Handles are deliberately `Rc`-based — recording is a cell write with
//! no atomics — so a registry or event ring never crosses a thread
//! boundary. Parallel aggregation instead goes through the snapshot
//! types ([`MetricsSnapshot`], [`EventTraceSnapshot`]), which are plain
//! owned data: each worker snapshots its recorders, sends the snapshots
//! back, and the aggregator folds them in with [`Registry::absorb`] /
//! [`EventTrace::absorb`]. Absorbing in a fixed order makes the merged
//! result deterministic at any worker count.
//! * [`spans`] — hierarchical cycle-attribution spans ([`SpanTracer`])
//!   keyed on simulated cycles, with the same disabled-is-a-branch hot
//!   path and the same plain-data snapshot merge ([`ProfileSnapshot`])
//!   so profiled sweeps stay deterministic at any worker count.
//! * [`json`] — a hand-rolled JSON value type, emitter and parser so the
//!   workspace stays buildable offline with zero external dependencies.
//! * [`rng`] — a small deterministic xoshiro256++ PRNG used by the trace
//!   generators and the randomized property tests.
//!
//! The crate deliberately depends on nothing (not even other `miv-*`
//! crates) so every layer of the stack can use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod metrics;
pub mod rng;
pub mod spans;

pub use events::{EventRecord, EventSink, EventTrace, EventTraceSnapshot, LineClass, SimEvent};
pub use json::JsonValue;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use rng::Rng;
pub use spans::{ProfileSnapshot, SpanGuard, SpanSnapshot, SpanTracer};
