//! Metrics registry: named counters, gauges and log2-bucketed histograms.
//!
//! The simulator is single-threaded, so handles are `Rc<Cell<..>>` shared
//! with the registry — recording is a cell write, never a map lookup.
//! A *disabled* handle holds `None`; every operation on it is a single
//! branch and touches no memory, which keeps instrumented hot paths free
//! when telemetry is off (verified by `miv-bench`'s `obs_overhead`
//! comparison and an allocation-counting test).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
// miv-analyze: allow(rc-not-sent, reason="recorders are deliberately non-Send (zero-overhead when disabled); the sweep crosses threads via plain-data TelemetrySnapshot absorb")
use std::rc::Rc;

use crate::json::JsonValue;

/// A monotonic counter handle. Cheap to clone; `Default` is disabled.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Rc<Cell<u64>>>);

impl Counter {
    /// A no-op handle: `inc`/`add` are single branches.
    pub const fn disabled() -> Self {
        Counter(None)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.set(cell.get().wrapping_add(n));
        }
    }

    /// The current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }

    /// Whether the handle is wired to a registry.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// A gauge handle holding the latest value of a measurement.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Rc<Cell<f64>>>);

impl Gauge {
    /// A no-op handle.
    pub const fn disabled() -> Self {
        Gauge(None)
    }

    /// Replaces the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.set(v);
        }
    }

    /// The current value (0 when disabled).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.get())
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, up to `u64::MAX` in bucket 64.
const BUCKETS: usize = 65;

#[derive(Debug, Clone)]
pub(crate) struct HistInner {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl HistInner {
    fn new() -> Self {
        HistInner {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Folds a snapshot's distribution into this live histogram.
    fn absorb(&mut self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        self.count += snap.count;
        self.sum = self.sum.saturating_add(snap.sum);
        self.min = self.min.min(snap.min);
        self.max = self.max.max(snap.max);
        for &(i, n) in &snap.buckets {
            self.buckets[i as usize] += n;
        }
    }
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive value range covered by a bucket. The top bucket (64) is
/// saturated: it covers `[2^63, u64::MAX]` — note `saturating_mul(2)`
/// on `2^63` already yields `u64::MAX`, so subtracting 1 afterwards
/// would wrongly exclude `u64::MAX` from its own bucket.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= BUCKETS - 1 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// A histogram handle recording a distribution in log2 buckets.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Rc<RefCell<HistInner>>>);

impl Histogram {
    /// A no-op handle.
    pub const fn disabled() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().record(v);
        }
    }

    /// Folds a snapshot's distribution into this histogram (no-op when
    /// disabled).
    fn absorb(&self, snap: &HistogramSnapshot) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().absorb(snap);
        }
    }

    /// Snapshot of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            Some(inner) => HistogramSnapshot::from_inner(&inner.borrow()),
            None => HistogramSnapshot::default(),
        }
    }
}

/// An immutable copy of a histogram's state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Occupied log2 buckets as `(bucket_index, count)` pairs.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    fn from_inner(inner: &HistInner) -> Self {
        HistogramSnapshot {
            count: inner.count,
            sum: inner.sum,
            min: if inner.count == 0 { 0 } else { inner.min },
            max: inner.max,
            buckets: inner
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u32, n))
                .collect(),
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `p`-quantile (`p` in `[0, 1]`) by linear
    /// interpolation inside the containing log2 bucket, clamped to the
    /// observed `[min, max]`.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(i as usize);
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return est.clamp(self.min as f64, self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }

    /// Merges another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(i, n) in &other.buckets {
            *merged.entry(i).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// JSON form: count/sum/min/max/mean/p50/p90/p99 plus raw buckets.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::obj();
        o.push("count", self.count);
        o.push("sum", self.sum);
        o.push("min", self.min);
        o.push("max", self.max);
        o.push("mean", self.mean());
        o.push("p50", self.quantile(0.50));
        o.push("p90", self.quantile(0.90));
        o.push("p99", self.quantile(0.99));
        o.push(
            "buckets",
            self.buckets
                .iter()
                .map(|&(i, n)| JsonValue::Array(vec![i.into(), n.into()]))
                .collect::<Vec<_>>(),
        );
        o
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Rc<Cell<u64>>>,
    gauges: BTreeMap<String, Rc<Cell<f64>>>,
    histograms: BTreeMap<String, Rc<RefCell<HistInner>>>,
}

/// A registry of named metrics. Clones share the same underlying store.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns (creating if needed) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.borrow_mut();
        let cell = inner.counters.entry(name.to_string()).or_default();
        Counter(Some(Rc::clone(cell)))
    }

    /// Returns (creating if needed) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.borrow_mut();
        let cell = inner.gauges.entry(name.to_string()).or_default();
        Gauge(Some(Rc::clone(cell)))
    }

    /// Returns (creating if needed) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.borrow_mut();
        let cell = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Rc::new(RefCell::new(HistInner::new())));
        Histogram(Some(Rc::clone(cell)))
    }

    /// Copies out every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), HistogramSnapshot::from_inner(&v.borrow())))
                .collect(),
        }
    }

    /// Accumulates a snapshot into this registry's live metrics:
    /// counters add, gauges take the snapshot's (latest-wins) value, and
    /// histograms merge bucket-wise. Missing metrics are created;
    /// outstanding handles stay valid.
    ///
    /// This is the merge path for parallel sweeps: each worker records
    /// into its own cheap `Rc`-shared registry, snapshots it (a
    /// [`MetricsSnapshot`] is plain owned data and crosses threads
    /// freely), and the aggregator absorbs the snapshots in run order.
    /// Counter and histogram aggregation are order-independent; gauges
    /// are latest-wins, so absorbing in a fixed (request) order keeps
    /// the merged document deterministic at any worker count.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for (name, v) in &snap.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(name).set(*v);
        }
        for (name, h) in &snap.histograms {
            self.histogram(name).absorb(h);
        }
    }

    /// Zeroes every metric without invalidating outstanding handles.
    pub fn reset(&self) {
        let inner = self.inner.borrow();
        for cell in inner.counters.values() {
            cell.set(0);
        }
        for cell in inner.gauges.values() {
            cell.set(0.0);
        }
        for cell in inner.histograms.values() {
            *cell.borrow_mut() = HistInner::new();
        }
    }
}

/// A point-in-time copy of a registry's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Accumulates `other` into `self`: counters and histogram buckets
    /// add; gauges take `other`'s (latest-wins) value.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// JSON form: `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> JsonValue {
        let mut counters = JsonValue::obj();
        for (name, v) in &self.counters {
            counters.push(name, *v);
        }
        let mut gauges = JsonValue::obj();
        for (name, v) in &self.gauges {
            gauges.push(name, *v);
        }
        let mut histograms = JsonValue::obj();
        for (name, h) in &self.histograms {
            histograms.push(name, h.to_json());
        }
        let mut o = JsonValue::obj();
        o.push("counters", counters);
        o.push("gauges", gauges);
        o.push("histograms", histograms);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
        let g = Gauge::disabled();
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::disabled();
        h.record(7);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counters["x"], 3);
    }

    #[test]
    fn reset_keeps_handles_live() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        c.add(5);
        h.record(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        h.record(2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 1);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn bucket_index_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's bounds — including the saturated top bucket —
        // must map back to the same bucket index.
        for i in 1..=64 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn singleton_histogram_quantiles_are_exact() {
        // One observation: every quantile must return exactly that value
        // (the [min, max] clamp pins the in-bucket interpolation).
        for v in [0u64, 1, 2, 3, 64, 1000, u64::MAX] {
            let reg = Registry::new();
            let h = reg.histogram("one");
            h.record(v);
            let snap = h.snapshot();
            for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(snap.quantile(p), v as f64, "v={v} p={p}");
            }
        }
    }

    #[test]
    fn all_in_one_bucket_quantiles_stay_in_observed_range() {
        // Many identical observations deep inside one bucket: the
        // estimate must not leak past the observed min/max even though
        // the bucket spans [64, 127].
        let reg = Registry::new();
        let h = reg.histogram("same");
        for _ in 0..1000 {
            h.record(100);
        }
        let snap = h.snapshot();
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(p), 100.0, "p={p}");
        }
        // Mixed values in the same bucket: estimates stay inside
        // [min, max] and are monotone in p.
        let reg = Registry::new();
        let h = reg.histogram("mixed");
        for v in [64u64, 80, 127, 127] {
            h.record(v);
        }
        let snap = h.snapshot();
        let (p50, p99) = (snap.quantile(0.5), snap.quantile(0.99));
        assert!((64.0..=127.0).contains(&p50), "p50 {p50}");
        assert!((64.0..=127.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn saturated_top_bucket_quantiles() {
        // Values in bucket 64 ([2^63, u64::MAX]): before the bounds fix
        // the bucket's upper bound excluded u64::MAX itself.
        let reg = Registry::new();
        let h = reg.histogram("top");
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1u64 << 63);
        let snap = h.snapshot();
        assert_eq!(snap.min, 1u64 << 63);
        assert_eq!(snap.max, u64::MAX);
        let p99 = snap.quantile(0.99);
        assert_eq!(p99, u64::MAX as f64, "p99 must reach the top value");
        assert!(snap.quantile(0.0) >= (1u64 << 63) as f64);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_correct() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        let p50 = snap.quantile(0.5);
        let p99 = snap.quantile(0.99);
        // Log2 buckets give coarse estimates; require the right ballpark.
        assert!((256.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!(p99 > p50, "p99 {p99} <= p50 {p50}");
        assert!((400.0..=1001.0).contains(&p99), "p99 {p99}");
        assert_eq!(snap.mean(), 500.5);
    }

    #[test]
    fn snapshot_merge_matches_uninterrupted() {
        let run = |vals: &[u64]| {
            let reg = Registry::new();
            let c = reg.counter("n");
            let h = reg.histogram("v");
            for &v in vals {
                c.inc();
                h.record(v);
            }
            reg.snapshot()
        };
        let all = [3u64, 0, 17, 9, 1024, 8, 8, 2];
        let whole = run(&all);
        let mut merged = run(&all[..3]);
        merged.merge(&run(&all[3..]));
        assert_eq!(merged, whole);
    }

    #[test]
    fn absorb_matches_recording_directly() {
        // Recording into two registries and absorbing the second's
        // snapshot must be indistinguishable from recording everything
        // into one registry.
        let record = |reg: &Registry, vals: &[u64], gauge: f64| {
            let c = reg.counter("ops");
            let h = reg.histogram("lat");
            for &v in vals {
                c.inc();
                h.record(v);
            }
            reg.gauge("level").set(gauge);
        };
        let whole = Registry::new();
        record(&whole, &[3, 0, 1024, 9], 0.25);
        record(&whole, &[7, 7, 2], 0.75);

        let main = Registry::new();
        record(&main, &[3, 0, 1024, 9], 0.25);
        let worker = Registry::new();
        record(&worker, &[7, 7, 2], 0.75);
        main.absorb(&worker.snapshot());
        assert_eq!(main.snapshot(), whole.snapshot());
        // Absorb creates missing metrics without touching live handles.
        let other = Registry::new();
        other.counter("extra").add(2);
        main.absorb(&other.snapshot());
        assert_eq!(main.snapshot().counters["extra"], 2);
    }

    #[test]
    fn histogram_json_shape() {
        let reg = Registry::new();
        let h = reg.histogram("x");
        h.record(5);
        h.record(64);
        let j = h.snapshot().to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("sum").unwrap().as_u64(), Some(69));
        assert!(j.get("p50").unwrap().as_f64().is_some());
        assert_eq!(j.get("buckets").unwrap().as_array().unwrap().len(), 2);
    }
}
