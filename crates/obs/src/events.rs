//! Structured event tracing: a bounded ring buffer of typed simulation
//! events with a cheap, enum-gated recording handle.
//!
//! Producers hold an [`EventSink`]; the owner (the simulator harness)
//! holds the [`EventTrace`] and drains it to JSONL at the end of a run.
//! When the ring fills, the oldest events are dropped and counted, so a
//! long run keeps its tail — the part that explains steady-state
//! behaviour — without unbounded memory.

use std::cell::RefCell;
use std::collections::VecDeque;
// miv-analyze: allow(rc-not-sent, reason="recorders are deliberately non-Send (zero-overhead when disabled); the sweep crosses threads via plain-data EventTraceSnapshot absorb")
use std::rc::Rc;

use crate::json::JsonValue;

/// Which kind of line an event concerns (mirrors `miv-cache`'s
/// `LineKind` without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineClass {
    /// Ordinary program data.
    Data,
    /// Hash-tree (or MAC) metadata.
    Hash,
}

impl LineClass {
    /// Stable lowercase label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            LineClass::Data => "data",
            LineClass::Hash => "hash",
        }
    }
}

/// A typed simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// The L2 missed on `addr`.
    L2Miss {
        /// Line kind that missed.
        class: LineClass,
        /// Whether the access was a store.
        write: bool,
        /// Byte address of the access.
        addr: u64,
    },
    /// A hash-tree walk began for `chunk`.
    WalkStart {
        /// Chunk index whose ancestors are being fetched.
        chunk: u64,
    },
    /// A hash-tree walk terminated.
    WalkEnd {
        /// Chunk index the walk was for.
        chunk: u64,
        /// Number of tree levels actually fetched from memory.
        depth: u32,
        /// `true` if the walk climbed all the way to the secure root;
        /// `false` if it terminated early at a cached ancestor.
        reached_root: bool,
    },
    /// Work entered the hash-unit queue.
    HashEnqueue {
        /// Bytes to digest.
        bytes: u32,
    },
    /// Work left the hash-unit queue and started digesting.
    HashDequeue {
        /// Cycles spent waiting in the queue.
        wait: u64,
    },
    /// A dirty line was written back to memory.
    WriteBack {
        /// Line kind written back.
        class: LineClass,
        /// Byte address of the line.
        addr: u64,
    },
    /// The checker detected tampering.
    IntegrityViolation {
        /// Byte address implicated by the failed check.
        addr: u64,
        /// Chunk whose verification failed.
        chunk: u64,
        /// Stable label of the scheme that detected the violation.
        scheme: &'static str,
    },
}

impl SimEvent {
    /// Stable snake_case type tag used in JSON output.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::L2Miss { .. } => "l2_miss",
            SimEvent::WalkStart { .. } => "walk_start",
            SimEvent::WalkEnd { .. } => "walk_end",
            SimEvent::HashEnqueue { .. } => "hash_enqueue",
            SimEvent::HashDequeue { .. } => "hash_dequeue",
            SimEvent::WriteBack { .. } => "write_back",
            SimEvent::IntegrityViolation { .. } => "integrity_violation",
        }
    }
}

/// One recorded event with its timestamp (cycle for timing models,
/// operation index for the functional engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// When the event happened.
    pub cycle: u64,
    /// What happened.
    pub event: SimEvent,
}

impl EventRecord {
    /// One-line JSON object (JSONL row).
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::obj();
        o.push("cycle", self.cycle);
        o.push("type", self.event.kind());
        match self.event {
            SimEvent::L2Miss { class, write, addr } => {
                o.push("class", class.label());
                o.push("write", write);
                o.push("addr", addr);
            }
            SimEvent::WalkStart { chunk } => {
                o.push("chunk", chunk);
            }
            SimEvent::WalkEnd {
                chunk,
                depth,
                reached_root,
            } => {
                o.push("chunk", chunk);
                o.push("depth", depth);
                o.push("reached_root", reached_root);
            }
            SimEvent::HashEnqueue { bytes } => {
                o.push("bytes", bytes);
            }
            SimEvent::HashDequeue { wait } => {
                o.push("wait", wait);
            }
            SimEvent::WriteBack { class, addr } => {
                o.push("class", class.label());
                o.push("addr", addr);
            }
            SimEvent::IntegrityViolation {
                addr,
                chunk,
                scheme,
            } => {
                o.push("addr", addr);
                o.push("chunk", chunk);
                o.push("scheme", scheme);
            }
        }
        o
    }
}

#[derive(Debug)]
struct Ring {
    capacity: usize,
    buf: VecDeque<EventRecord>,
    recorded: u64,
    dropped: u64,
}

/// Owner handle over a bounded event ring.
#[derive(Debug, Clone)]
pub struct EventTrace {
    ring: Rc<RefCell<Ring>>,
}

impl EventTrace {
    /// A ring holding at most `capacity` events (oldest dropped first).
    pub fn bounded(capacity: usize) -> Self {
        EventTrace {
            ring: Rc::new(RefCell::new(Ring {
                capacity: capacity.max(1),
                buf: VecDeque::new(),
                recorded: 0,
                dropped: 0,
            })),
        }
    }

    /// A recording handle for producers.
    pub fn sink(&self) -> EventSink {
        EventSink(Some(Rc::clone(&self.ring)))
    }

    /// Events currently buffered (oldest first).
    pub fn records(&self) -> Vec<EventRecord> {
        self.ring.borrow().buf.iter().copied().collect()
    }

    /// Total events ever recorded (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.ring.borrow().recorded
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.borrow().dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.borrow().capacity
    }

    /// Clears the buffer and zeroes the recorded/dropped counts.
    pub fn reset(&self) {
        let mut ring = self.ring.borrow_mut();
        ring.buf.clear();
        ring.recorded = 0;
        ring.dropped = 0;
    }

    /// Renders every buffered event as one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.ring.borrow().buf.iter() {
            out.push_str(&record.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Copies out the ring's state as an owned, `Send` value that can
    /// cross a thread boundary (the ring itself is `Rc`-shared and
    /// cannot).
    pub fn snapshot(&self) -> EventTraceSnapshot {
        let ring = self.ring.borrow();
        EventTraceSnapshot {
            records: ring.buf.iter().copied().collect(),
            recorded: ring.recorded,
            dropped: ring.dropped,
        }
    }

    /// Appends another ring's events to this one, oldest first, evicting
    /// this ring's oldest events once full and accumulating the
    /// recorded/dropped totals.
    ///
    /// This is the merge path for parallel sweeps: each worker records
    /// into its own cheap `Rc` ring, snapshots it, and the aggregator
    /// absorbs the snapshots *in run order*. Because an event evicted
    /// from a per-run ring of capacity `C` is more than `C` events from
    /// the end of that run's stream — and therefore could never survive
    /// in a shared ring of the same capacity either — absorbing
    /// equal-capacity per-run rings in run order reproduces, byte for
    /// byte, the ring a single sequential run sharing one `EventTrace`
    /// would have produced.
    pub fn absorb(&self, snap: &EventTraceSnapshot) {
        let mut ring = self.ring.borrow_mut();
        ring.recorded += snap.recorded;
        ring.dropped += snap.dropped;
        for &record in &snap.records {
            if ring.buf.len() == ring.capacity {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(record);
        }
    }
}

/// An owned, thread-transferable copy of an [`EventTrace`]'s state,
/// produced by [`EventTrace::snapshot`] and consumed by
/// [`EventTrace::absorb`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventTraceSnapshot {
    /// Buffered events, oldest first.
    pub records: Vec<EventRecord>,
    /// Total events ever recorded into the source ring.
    pub recorded: u64,
    /// Events the source ring evicted because it was full.
    pub dropped: u64,
}

/// Producer handle. `Default` is disabled: recording is a single branch.
#[derive(Debug, Clone, Default)]
pub struct EventSink(Option<Rc<RefCell<Ring>>>);

impl EventSink {
    /// A no-op sink.
    pub const fn disabled() -> Self {
        EventSink(None)
    }

    /// Whether events are actually being captured.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records an event at `cycle`.
    #[inline]
    pub fn record(&self, cycle: u64, event: SimEvent) {
        if let Some(ring) = &self.0 {
            let mut ring = ring.borrow_mut();
            ring.recorded += 1;
            if ring.buf.len() == ring.capacity {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(EventRecord { cycle, event });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = EventSink::disabled();
        sink.record(1, SimEvent::WalkStart { chunk: 0 });
        assert!(!sink.is_enabled());
    }

    #[test]
    fn ring_drops_oldest() {
        let trace = EventTrace::bounded(2);
        let sink = trace.sink();
        for i in 0..5 {
            sink.record(i, SimEvent::HashDequeue { wait: i });
        }
        assert_eq!(trace.recorded(), 5);
        assert_eq!(trace.dropped(), 3);
        let records: Vec<u64> = trace.records().iter().map(|r| r.cycle).collect();
        assert_eq!(records, vec![3, 4]);
    }

    #[test]
    fn jsonl_rows_parse() {
        let trace = EventTrace::bounded(16);
        let sink = trace.sink();
        sink.record(
            7,
            SimEvent::L2Miss {
                class: LineClass::Hash,
                write: true,
                addr: 0x40,
            },
        );
        sink.record(
            9,
            SimEvent::WalkEnd {
                chunk: 3,
                depth: 2,
                reached_root: false,
            },
        );
        let jsonl = trace.to_jsonl();
        let rows: Vec<&str> = jsonl.lines().collect();
        assert_eq!(rows.len(), 2);
        let first = JsonValue::parse(rows[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("l2_miss"));
        assert_eq!(first.get("class").unwrap().as_str(), Some("hash"));
        assert_eq!(first.get("cycle").unwrap().as_u64(), Some(7));
        let second = JsonValue::parse(rows[1]).unwrap();
        assert_eq!(second.get("depth").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn absorb_in_order_matches_shared_ring() {
        // Three "runs" of very different lengths, recorded (a) into one
        // shared ring sequentially and (b) into per-run rings that are
        // then absorbed in run order. Same capacity everywhere — the
        // final ring contents and counts must match exactly.
        let runs: [&[u64]; 3] = [&[1, 2, 3, 4, 5, 6, 7, 8, 9], &[10], &[11, 12]];
        let shared = EventTrace::bounded(4);
        for run in runs {
            let sink = shared.sink();
            for &c in run {
                sink.record(c, SimEvent::WalkStart { chunk: c });
            }
        }
        let merged = EventTrace::bounded(4);
        for run in runs {
            let per_run = EventTrace::bounded(4);
            let sink = per_run.sink();
            for &c in run {
                sink.record(c, SimEvent::WalkStart { chunk: c });
            }
            merged.absorb(&per_run.snapshot());
        }
        assert_eq!(merged.records(), shared.records());
        assert_eq!(merged.recorded(), shared.recorded());
        assert_eq!(merged.dropped(), shared.dropped());
        assert_eq!(merged.to_jsonl(), shared.to_jsonl());
    }

    #[test]
    fn snapshot_round_trips() {
        let trace = EventTrace::bounded(2);
        let sink = trace.sink();
        for i in 0..3 {
            sink.record(i, SimEvent::HashEnqueue { bytes: 64 });
        }
        let snap = trace.snapshot();
        assert_eq!(snap.recorded, 3);
        assert_eq!(snap.dropped, 1);
        assert_eq!(snap.records.len(), 2);
        let copy = EventTrace::bounded(2);
        copy.absorb(&snap);
        assert_eq!(copy.records(), trace.records());
        assert_eq!(copy.recorded(), 3);
        assert_eq!(copy.dropped(), 1);
    }

    #[test]
    fn reset_clears_counts() {
        let trace = EventTrace::bounded(4);
        trace.sink().record(1, SimEvent::WalkStart { chunk: 1 });
        trace.reset();
        assert_eq!(trace.recorded(), 0);
        assert!(trace.records().is_empty());
    }
}
